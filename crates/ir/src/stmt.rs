//! Statement AST for the loop-level IR (Stage II/III of SparseTIR).

use crate::buffer::{Buffer, BufferRegion};
use crate::expr::{Expr, Var};
use std::rc::Rc;

/// GPU thread axes a loop can be bound to by the `bind` schedule primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreadAxis {
    /// `blockIdx.x`
    BlockIdxX,
    /// `blockIdx.y`
    BlockIdxY,
    /// `blockIdx.z`
    BlockIdxZ,
    /// `threadIdx.x`
    ThreadIdxX,
    /// `threadIdx.y`
    ThreadIdxY,
    /// `threadIdx.z`
    ThreadIdxZ,
}

impl ThreadAxis {
    /// CUDA spelling of the axis.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ThreadAxis::BlockIdxX => "blockIdx.x",
            ThreadAxis::BlockIdxY => "blockIdx.y",
            ThreadAxis::BlockIdxZ => "blockIdx.z",
            ThreadAxis::ThreadIdxX => "threadIdx.x",
            ThreadAxis::ThreadIdxY => "threadIdx.y",
            ThreadAxis::ThreadIdxZ => "threadIdx.z",
        }
    }

    /// True for the block (grid) axes.
    #[must_use]
    pub fn is_block(self) -> bool {
        matches!(self, ThreadAxis::BlockIdxX | ThreadAxis::BlockIdxY | ThreadAxis::BlockIdxZ)
    }
}

/// Execution kind of a `for` loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ForKind {
    /// Ordinary sequential loop.
    #[default]
    Serial,
    /// CPU-parallel loop (used by host-side reference kernels).
    Parallel,
    /// Vectorized loop (`float4`-style wide load/store).
    Vectorized,
    /// Fully unrolled loop.
    Unrolled,
    /// Loop bound to a GPU thread axis.
    ThreadBinding(ThreadAxis),
}

/// Iteration semantics of a block iterator variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IterKind {
    /// Spatial ("S") — parallelizable, each value writes disjoint output.
    Spatial,
    /// Reduction ("R") — values combine into the same output element.
    Reduce,
}

/// A block iterator variable: the block-local variable, its semantics and
/// the expression binding it to enclosing loop variables.
#[derive(Debug, Clone, PartialEq)]
pub struct IterVar {
    /// Block-local variable.
    pub var: Var,
    /// Spatial or reduction.
    pub kind: IterKind,
    /// Value in terms of enclosing loop variables.
    pub binding: Expr,
}

impl IterVar {
    /// Spatial iterator bound to `binding`.
    pub fn spatial(var: Var, binding: impl Into<Expr>) -> Self {
        IterVar { var, kind: IterKind::Spatial, binding: binding.into() }
    }

    /// Reduction iterator bound to `binding`.
    pub fn reduce(var: Var, binding: impl Into<Expr>) -> Self {
        IterVar { var, kind: IterKind::Reduce, binding: binding.into() }
    }
}

/// A TensorIR-style block: an isolation boundary for scheduling carrying
/// iteration semantics and read/write regions (paper §3.3.1 step 2 and the
/// region-analysis step).
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Block name, referenced by schedule primitives.
    pub name: Rc<str>,
    /// Iterator variables with semantics and bindings.
    pub iter_vars: Vec<IterVar>,
    /// Buffer regions read by the body.
    pub reads: Vec<BufferRegion>,
    /// Buffer regions written by the body.
    pub writes: Vec<BufferRegion>,
    /// Initialization statement, executed before the first reduction step
    /// of each spatial point.
    pub init: Option<Box<Stmt>>,
    /// Block body.
    pub body: Box<Stmt>,
}

/// A 2-D tile of a buffer used by the tensor-core intrinsic: element
/// `(r, c)` of the tile is `buffer[row0 + r, col0 + c]` (or the flattened
/// equivalent for 1-D buffers via `row_stride`).
#[derive(Debug, Clone, PartialEq)]
pub struct TensorTile {
    /// Underlying buffer.
    pub buffer: Buffer,
    /// Flat offset of element (0, 0).
    pub offset: Expr,
    /// Stride between consecutive tile rows.
    pub row_stride: Expr,
}

/// Statement node.
// `MmaSync` (three inline tiles) dwarfs the other variants, but it is the
// seed's public AST shape and is matched across six modules; boxing it
// buys little since `Stmt` trees are clone-heavy regardless.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `for var in 0..extent { body }` — all loops are normalized to start
    /// at zero (offsets live in the body, as in Figure 9 of the paper).
    For {
        /// Loop variable.
        var: Var,
        /// Trip count (loops start at 0).
        extent: Expr,
        /// Execution kind (serial / vectorized / thread-bound / …).
        kind: ForKind,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// Scheduling block.
    Block(Block),
    /// `buffer[indices...] = value`.
    BufferStore {
        /// Target buffer.
        buffer: Buffer,
        /// Per-dimension indices.
        indices: Vec<Expr>,
        /// Stored value.
        value: Expr,
    },
    /// Statement sequence.
    Seq(Vec<Stmt>),
    /// Conditional.
    IfThenElse {
        /// Predicate.
        cond: Expr,
        /// Taken branch.
        then_branch: Box<Stmt>,
        /// Optional fallback branch.
        else_branch: Option<Box<Stmt>>,
    },
    /// `let var = value in body`.
    Let {
        /// Bound variable.
        var: Var,
        /// Bound value.
        value: Expr,
        /// Scope of the binding.
        body: Box<Stmt>,
    },
    /// Scoped allocation of a non-global buffer (shared/local staging).
    Allocate {
        /// The staging buffer (non-global scope).
        buffer: Buffer,
        /// Scope of the allocation.
        body: Box<Stmt>,
    },
    /// Expression evaluated for effect.
    Evaluate(Expr),
    /// Tensor-core matrix-multiply-accumulate:
    /// `C[m,n] += A[m,k] * B[k,n]` over `m × n × k` tiles. Produced by the
    /// `tensorize` schedule primitive; executed functionally by the
    /// interpreter and costed as MMA ops by the simulator.
    MmaSync {
        /// Accumulator tile.
        c: TensorTile,
        /// Left operand tile.
        a: TensorTile,
        /// Right operand tile.
        b: TensorTile,
        /// Tile rows of `C`.
        m: usize,
        /// Tile columns of `C`.
        n: usize,
        /// Reduction depth.
        k: usize,
    },
}

impl Stmt {
    /// Empty statement.
    #[must_use]
    pub fn nop() -> Stmt {
        Stmt::Seq(Vec::new())
    }

    /// Sequence two statements, flattening nested sequences.
    #[must_use]
    pub fn then(self, next: Stmt) -> Stmt {
        match (self, next) {
            (Stmt::Seq(mut a), Stmt::Seq(b)) => {
                a.extend(b);
                Stmt::Seq(a)
            }
            (Stmt::Seq(mut a), b) => {
                a.push(b);
                Stmt::Seq(a)
            }
            (a, Stmt::Seq(mut b)) => {
                b.insert(0, a);
                Stmt::Seq(b)
            }
            (a, b) => Stmt::Seq(vec![a, b]),
        }
    }

    /// Serial `for` loop helper.
    pub fn for_serial(var: Var, extent: impl Into<Expr>, body: Stmt) -> Stmt {
        Stmt::For { var, extent: extent.into(), kind: ForKind::Serial, body: Box::new(body) }
    }

    /// Substitute variable `var` with expression `with` everywhere.
    #[must_use]
    pub fn substitute(&self, var: &Var, with: &Expr) -> Stmt {
        match self {
            Stmt::For { var: v, extent, kind, body } => {
                if v == var {
                    // Shadowed; extent still sees the outer binding.
                    Stmt::For {
                        var: v.clone(),
                        extent: extent.substitute(var, with),
                        kind: *kind,
                        body: body.clone(),
                    }
                } else {
                    Stmt::For {
                        var: v.clone(),
                        extent: extent.substitute(var, with),
                        kind: *kind,
                        body: Box::new(body.substitute(var, with)),
                    }
                }
            }
            Stmt::Block(b) => {
                let iter_vars = b
                    .iter_vars
                    .iter()
                    .map(|iv| IterVar {
                        var: iv.var.clone(),
                        kind: iv.kind,
                        binding: iv.binding.substitute(var, with),
                    })
                    .collect();
                // Block-local iter vars shadow; body untouched if shadowed.
                let shadowed = b.iter_vars.iter().any(|iv| &iv.var == var);
                let sub_stmt =
                    |s: &Stmt| if shadowed { s.clone() } else { s.substitute(var, with) };
                Stmt::Block(Block {
                    name: b.name.clone(),
                    iter_vars,
                    reads: b.reads.clone(),
                    writes: b.writes.clone(),
                    init: b.init.as_ref().map(|s| Box::new(sub_stmt(s))),
                    body: Box::new(sub_stmt(&b.body)),
                })
            }
            Stmt::BufferStore { buffer, indices, value } => Stmt::BufferStore {
                buffer: buffer.clone(),
                indices: indices.iter().map(|e| e.substitute(var, with)).collect(),
                value: value.substitute(var, with),
            },
            Stmt::Seq(stmts) => Stmt::Seq(stmts.iter().map(|s| s.substitute(var, with)).collect()),
            Stmt::IfThenElse { cond, then_branch, else_branch } => Stmt::IfThenElse {
                cond: cond.substitute(var, with),
                then_branch: Box::new(then_branch.substitute(var, with)),
                else_branch: else_branch.as_ref().map(|s| Box::new(s.substitute(var, with))),
            },
            Stmt::Let { var: v, value, body } => {
                let value = value.substitute(var, with);
                if v == var {
                    Stmt::Let { var: v.clone(), value, body: body.clone() }
                } else {
                    Stmt::Let { var: v.clone(), value, body: Box::new(body.substitute(var, with)) }
                }
            }
            Stmt::Allocate { buffer, body } => Stmt::Allocate {
                buffer: buffer.clone(),
                body: Box::new(body.substitute(var, with)),
            },
            Stmt::Evaluate(e) => Stmt::Evaluate(e.substitute(var, with)),
            Stmt::MmaSync { c, a, b, m, n, k } => {
                let sub_tile = |t: &TensorTile| TensorTile {
                    buffer: t.buffer.clone(),
                    offset: t.offset.substitute(var, with),
                    row_stride: t.row_stride.substitute(var, with),
                };
                Stmt::MmaSync {
                    c: sub_tile(c),
                    a: sub_tile(a),
                    b: sub_tile(b),
                    m: *m,
                    n: *n,
                    k: *k,
                }
            }
        }
    }

    /// Visit every statement node (pre-order).
    pub fn walk(&self, f: &mut impl FnMut(&Stmt)) {
        f(self);
        match self {
            Stmt::For { body, .. } | Stmt::Allocate { body, .. } | Stmt::Let { body, .. } => {
                body.walk(f);
            }
            Stmt::Block(b) => {
                if let Some(init) = &b.init {
                    init.walk(f);
                }
                b.body.walk(f);
            }
            Stmt::Seq(stmts) => {
                for s in stmts {
                    s.walk(f);
                }
            }
            Stmt::IfThenElse { then_branch, else_branch, .. } => {
                then_branch.walk(f);
                if let Some(e) = else_branch {
                    e.walk(f);
                }
            }
            Stmt::BufferStore { .. } | Stmt::Evaluate(_) | Stmt::MmaSync { .. } => {}
        }
    }

    /// Visit every expression in the statement tree.
    pub fn walk_exprs(&self, f: &mut impl FnMut(&Expr)) {
        self.walk(&mut |s| match s {
            Stmt::For { extent, .. } => f(extent),
            Stmt::Block(b) => {
                for iv in &b.iter_vars {
                    f(&iv.binding);
                }
            }
            Stmt::BufferStore { indices, value, .. } => {
                for i in indices {
                    f(i);
                }
                f(value);
            }
            Stmt::IfThenElse { cond, .. } => f(cond),
            Stmt::Let { value, .. } => f(value),
            Stmt::Evaluate(e) => f(e),
            Stmt::MmaSync { c, a, b, .. } => {
                f(&c.offset);
                f(&c.row_stride);
                f(&a.offset);
                f(&a.row_stride);
                f(&b.offset);
                f(&b.row_stride);
            }
            Stmt::Seq(_) | Stmt::Allocate { .. } => {}
        });
    }

    /// Rewrite statements bottom-up with `f` applied after children.
    #[must_use]
    pub fn transform(&self, f: &impl Fn(Stmt) -> Stmt) -> Stmt {
        let rebuilt = match self {
            Stmt::For { var, extent, kind, body } => Stmt::For {
                var: var.clone(),
                extent: extent.clone(),
                kind: *kind,
                body: Box::new(body.transform(f)),
            },
            Stmt::Block(b) => Stmt::Block(Block {
                name: b.name.clone(),
                iter_vars: b.iter_vars.clone(),
                reads: b.reads.clone(),
                writes: b.writes.clone(),
                init: b.init.as_ref().map(|s| Box::new(s.transform(f))),
                body: Box::new(b.body.transform(f)),
            }),
            Stmt::Seq(stmts) => Stmt::Seq(stmts.iter().map(|s| s.transform(f)).collect()),
            Stmt::IfThenElse { cond, then_branch, else_branch } => Stmt::IfThenElse {
                cond: cond.clone(),
                then_branch: Box::new(then_branch.transform(f)),
                else_branch: else_branch.as_ref().map(|s| Box::new(s.transform(f))),
            },
            Stmt::Let { var, value, body } => Stmt::Let {
                var: var.clone(),
                value: value.clone(),
                body: Box::new(body.transform(f)),
            },
            Stmt::Allocate { buffer, body } => {
                Stmt::Allocate { buffer: buffer.clone(), body: Box::new(body.transform(f)) }
            }
            s => s.clone(),
        };
        f(rebuilt)
    }

    /// Find the first block with the given name.
    #[must_use]
    pub fn find_block(&self, name: &str) -> Option<Block> {
        let mut found = None;
        self.walk(&mut |s| {
            if found.is_none() {
                if let Stmt::Block(b) = s {
                    if &*b.name == name {
                        found = Some(b.clone());
                    }
                }
            }
        });
        found
    }

    /// Collect the chain of loop variables (outer→inner) leading to the
    /// named block, considering only loops on the path.
    #[must_use]
    pub fn loops_of_block(&self, name: &str) -> Option<Vec<(Var, Expr, ForKind)>> {
        fn go(s: &Stmt, name: &str, path: &mut Vec<(Var, Expr, ForKind)>) -> bool {
            match s {
                Stmt::For { var, extent, kind, body } => {
                    path.push((var.clone(), extent.clone(), *kind));
                    if go(body, name, path) {
                        return true;
                    }
                    path.pop();
                    false
                }
                Stmt::Block(b) => {
                    if &*b.name == name {
                        return true;
                    }
                    b.body.walk(&mut |_| {});
                    go(&b.body, name, path)
                }
                Stmt::Seq(stmts) => stmts.iter().any(|s| go(s, name, path)),
                Stmt::IfThenElse { then_branch, else_branch, .. } => {
                    go(then_branch, name, path)
                        || else_branch.as_ref().is_some_and(|e| go(e, name, path))
                }
                Stmt::Let { body, .. } | Stmt::Allocate { body, .. } => go(body, name, path),
                _ => false,
            }
        }
        let mut path = Vec::new();
        if go(self, name, &mut path) {
            Some(path)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Scope;
    use crate::dtype::DType;

    fn sample_loop() -> Stmt {
        let i = Var::i32("i");
        let j = Var::i32("j");
        let a = Buffer::new("A", DType::F32, vec![Expr::i32(8), Expr::i32(8)], Scope::Global);
        Stmt::for_serial(
            i.clone(),
            8,
            Stmt::for_serial(
                j.clone(),
                8,
                Stmt::BufferStore {
                    buffer: a,
                    indices: vec![Expr::var(&i), Expr::var(&j)],
                    value: Expr::f32(1.0),
                },
            ),
        )
    }

    #[test]
    fn then_flattens_sequences() {
        let s = Stmt::nop().then(Stmt::nop()).then(Stmt::Evaluate(Expr::i32(1)));
        match s {
            Stmt::Seq(v) => assert_eq!(v.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn walk_visits_all_nodes() {
        let mut count = 0;
        sample_loop().walk(&mut |_| count += 1);
        assert_eq!(count, 3); // two fors + store
    }

    #[test]
    fn substitute_respects_shadowing() {
        let i = Var::i32("i");
        let inner = Stmt::for_serial(i.clone(), 4, Stmt::Evaluate(Expr::var(&i)));
        let subbed = inner.substitute(&i, &Expr::i32(7));
        // The loop variable shadows: body unchanged.
        match subbed {
            Stmt::For { body, .. } => match *body {
                Stmt::Evaluate(Expr::Var(v)) => assert_eq!(&*v.name, "i"),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn loops_of_block_returns_path() {
        let i = Var::i32("i");
        let blk = Stmt::Block(Block {
            name: "b".into(),
            iter_vars: vec![],
            reads: vec![],
            writes: vec![],
            init: None,
            body: Box::new(Stmt::nop()),
        });
        let s = Stmt::for_serial(i.clone(), 4, blk);
        let loops = s.loops_of_block("b").unwrap();
        assert_eq!(loops.len(), 1);
        assert_eq!(&*loops[0].0.name, "i");
        assert!(s.loops_of_block("missing").is_none());
    }

    #[test]
    fn transform_rewrites_bottom_up() {
        let rewritten = sample_loop().transform(&|s| match s {
            Stmt::For { var, extent, body, .. } => {
                Stmt::For { var, extent, kind: ForKind::Unrolled, body }
            }
            s => s,
        });
        let mut unrolled = 0;
        rewritten.walk(&mut |s| {
            if let Stmt::For { kind: ForKind::Unrolled, .. } = s {
                unrolled += 1;
            }
        });
        assert_eq!(unrolled, 2);
    }
}
