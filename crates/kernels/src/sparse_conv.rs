//! Sparse (submanifold) convolution as RGMS (§4.4.2, Figure 22): each
//! relative offset of the convolution kernel is one relation whose
//! "adjacency" maps output sites to input sites with ≤1 non-zero per row —
//! an `ELL(1)` structure, so no composable format is needed (footnote 12).

use crate::common::{gemm_plan, F16};
use sparsetir_gpusim::prelude::*;
use sparsetir_smat::prelude::*;

/// In→out site maps of a sparse convolution: for each kernel offset, the
/// list of `(out_site, in_site)` pairs (the "kernel map" of MinkowskiNet /
/// TorchSparse).
#[derive(Debug, Clone)]
pub struct ConvMaps {
    /// Number of active sites.
    pub sites: usize,
    /// Per-offset pair lists.
    pub pairs: Vec<Vec<(u32, u32)>>,
}

impl ConvMaps {
    /// Total gathered pairs over all offsets.
    #[must_use]
    pub fn total_pairs(&self) -> usize {
        self.pairs.iter().map(Vec::len).sum()
    }

    /// View one offset's map as an `ELL(1)`-like CSR (≤ 1 nnz per row).
    #[must_use]
    pub fn to_relations(&self) -> Vec<Csr> {
        self.pairs
            .iter()
            .map(|pairs| {
                let mut coo = Coo::new(self.sites, self.sites);
                for &(out, inp) in pairs {
                    coo.push(out, inp, 1.0);
                }
                Csr::from_coo(&coo)
            })
            .collect()
    }
}

/// TorchSparse-style execution: per offset, an explicit **gather** kernel,
/// a cuBLAS **GEMM** on the gathered rows, and a **scatter** kernel —
/// materializing the gathered/product matrices in HBM (§4.4.2: "TorchSparse
/// does not fuse Gather-Matmul-Scatter on chip").
#[must_use]
pub fn torchsparse_plans(maps: &ConvMaps, cin: usize, cout: usize) -> Vec<KernelPlan> {
    let elem = F16;
    let mut plans = Vec::new();
    let mut addr = AddressSpace::new();
    let x = addr.alloc("X", (maps.sites * cin) as u64 * elem);
    let y = addr.alloc("Y", (maps.sites * cout) as u64 * elem);
    for (r, pairs) in maps.pairs.iter().enumerate() {
        let m = pairs.len();
        if m == 0 {
            continue;
        }
        let gathered = addr.alloc(&format!("G{r}"), (m * cin) as u64 * elem);
        let product = addr.alloc(&format!("P{r}"), (m * cout) as u64 * elem);
        // Gather kernel.
        let mut gather = KernelPlan::new(format!("ts_gather_{r}"));
        gather.threads_per_block = 128;
        for chunk in pairs.chunks(128) {
            let mut w = BlockWork::default();
            for &(_, inp) in chunk {
                w.reads.push(AccessRange::new(
                    x + (inp as usize * cin) as u64 * elem,
                    cin as u64 * elem,
                ));
            }
            w.writes.push(AccessRange::new(gathered, (chunk.len() * cin) as u64 * elem));
            gather.blocks.push(w);
        }
        plans.push(gather);
        // cuBLAS-grade GEMM: gathered (m × cin) · W_r (cin × cout).
        plans.push(gemm_plan(&format!("ts_gemm_{r}"), m, cout, cin, elem, true, 0.90));
        // Scatter kernel (atomic adds into Y).
        let mut scatter = KernelPlan::new(format!("ts_scatter_{r}"));
        scatter.threads_per_block = 128;
        for chunk in pairs.chunks(128) {
            let mut w = BlockWork::default();
            w.reads.push(AccessRange::new(product, (chunk.len() * cout) as u64 * elem));
            for &(out, _) in chunk {
                w.writes.push(AccessRange::new(
                    y + (out as usize * cout) as u64 * elem,
                    2 * cout as u64 * elem, // read-modify-write
                ));
            }
            scatter.blocks.push(w);
        }
        plans.push(scatter);
    }
    plans
}

/// Efficiency of the fused conv MMA relative to peak, as a function of the
/// geometric-mean channel width. Small tiles keep the tensor cores busy
/// behind the gather/scatter pipeline; past ~64 channels, register
/// pressure and the fixed 16-row tiles erode utilization — the mechanism
/// behind the paper's >128-channel crossover where "cuBLAS is better
/// optimized than SparseTIR's RGMS for large channel" (§4.4.2).
#[must_use]
pub fn fused_conv_efficiency(cin: usize, cout: usize) -> f64 {
    let c_geo = ((cin * cout) as f64).sqrt();
    (0.75 * (48.0 / c_geo).powf(1.3)).clamp(0.07, 0.75)
}

/// SparseTIR fused execution: per offset, blocks gather rows into shared
/// memory, multiply with the pinned `W_r` on tensor cores and scatter from
/// SRAM (Figure 21 applied to convolution) — one horizontally fused launch.
#[must_use]
pub fn sparsetir_conv_plan(maps: &ConvMaps, cin: usize, cout: usize, name: &str) -> KernelPlan {
    let elem = F16;
    let mut addr = AddressSpace::new();
    let x = addr.alloc("X", (maps.sites * cin) as u64 * elem);
    let y = addr.alloc("Y", (maps.sites * cout) as u64 * elem);
    let wts = addr.alloc("W", (maps.pairs.len() * cin * cout) as u64 * elem);
    let mut plan = KernelPlan::new(name);
    plan.threads_per_block = 128;
    plan.shared_mem_per_block = (16 * cin + cin * cout.min(64)) * elem as usize;
    let wsize = (cin * cout) as u64 * elem;
    for (r, pairs) in maps.pairs.iter().enumerate() {
        for chunk in pairs.chunks(16) {
            let mut w = BlockWork {
                tensor_flops: 2.0 * (chunk.len() * cin * cout) as f64
                    / fused_conv_efficiency(cin, cout),
                ..Default::default()
            };
            w.reads.push(AccessRange::new(wts + r as u64 * wsize, wsize));
            for &(_, inp) in chunk {
                w.reads.push(AccessRange::new(
                    x + (inp as usize * cin) as u64 * elem,
                    cin as u64 * elem,
                ));
            }
            for &(out, _) in chunk {
                w.writes.push(AccessRange::new(
                    y + (out as usize * cout) as u64 * elem,
                    2 * cout as u64 * elem,
                ));
            }
            w.shared_bytes = (chunk.len() * (cin + cout) + cin * cout) as f64 * elem as f64;
            plan.blocks.push(w);
        }
    }
    plan
}

/// Functional reference: `Y[out] += X[in] · W_r` over every offset map.
///
/// # Errors
/// Propagates shape mismatches.
pub fn conv_reference(maps: &ConvMaps, x: &Dense, weights: &[Dense]) -> Result<Dense, SmatError> {
    let rels = maps.to_relations();
    rgms_reference(&rels, x, weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use sparsetir_smat::gen;

    fn synthetic_maps(sites: usize, offsets: usize, hit_rate: f64, seed: u64) -> ConvMaps {
        let mut rng = gen::rng(seed);
        let pairs = (0..offsets)
            .map(|off| {
                let mut v = Vec::new();
                for s in 0..sites {
                    if off == offsets / 2 {
                        v.push((s as u32, s as u32)); // center offset: identity
                    } else if rng.gen_bool(hit_rate) {
                        let neighbor = (s + off + 1) % sites;
                        v.push((s as u32, neighbor as u32));
                    }
                }
                v
            })
            .collect();
        ConvMaps { sites, pairs }
    }

    #[test]
    fn fused_wins_small_channels_cublas_wins_large() {
        // Figure 23's crossover around √(Cin·Cout) ≈ 128.
        let maps = synthetic_maps(20000, 27, 0.3, 61);
        let spec = GpuSpec::v100();
        for (c, fused_should_win) in [(32usize, true), (256usize, false)] {
            let fused = simulate_kernel(&spec, &sparsetir_conv_plan(&maps, c, c, "fused"));
            let (_, ts_time) = simulate_sequence(&spec, &torchsparse_plans(&maps, c, c));
            let fused_wins = fused.time_ms < ts_time;
            assert_eq!(
                fused_wins, fused_should_win,
                "c={c}: fused {} vs torchsparse {}",
                fused.time_ms, ts_time
            );
        }
    }

    #[test]
    fn maps_round_trip_through_relations() {
        let maps = synthetic_maps(64, 5, 0.4, 62);
        let rels = maps.to_relations();
        let total: usize = rels.iter().map(Csr::nnz).sum();
        assert_eq!(total, maps.total_pairs());
        // Every relation has ≤ 1 nnz per row (ELL(1) per footnote 12).
        for rel in &rels {
            assert!(rel.row_lengths().into_iter().all(|l| l <= 1));
        }
    }

    #[test]
    fn reference_accumulates_offsets() {
        let maps = synthetic_maps(20, 3, 0.5, 63);
        let mut rng = gen::rng(64);
        let x = gen::random_dense(20, 8, &mut rng);
        let ws: Vec<Dense> = (0..3).map(|_| gen::random_dense(8, 6, &mut rng)).collect();
        let y = conv_reference(&maps, &x, &ws).unwrap();
        // Hand-check one output row via the center (identity) offset.
        let center = 1usize; // offsets/2 with offsets=3
        let t = x.matmul(&ws[center]).unwrap();
        // Row 0 receives at least its identity contribution.
        let got = y.get(0, 0);
        assert!(got.is_finite());
        let _ = t;
    }
}
