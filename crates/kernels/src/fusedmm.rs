//! FusedMM (§5, Rahman et al.): the fused SDDMM→SpMM operator at the heart
//! of attention-style GNN layers — `Y = (A ⊙ (X·Zᵀ)) · Z`. The paper lists
//! it as directly expressible in SparseTIR ("FusedMM can be described and
//! optimized in SparseTIR"); this module implements it as the extension:
//! one kernel computes each non-zero's score and immediately consumes it,
//! never materializing the scored matrix in HBM.

use crate::common::{SpmmLayout, F32};
use sparsetir_gpusim::prelude::*;
use sparsetir_smat::prelude::*;

/// Functional reference: `Y = (A ⊙ (X·Zᵀ)) · Z` composed from the two
/// reference operators (materializing the intermediate).
///
/// # Errors
/// Propagates shape mismatches.
pub fn fusedmm_reference(a: &Csr, x: &Dense, z: &Dense) -> Result<Dense, SmatError> {
    // SDDMM expects Y as d × n; Zᵀ supplies it.
    let scored = a.sddmm(x, &z.transpose())?;
    scored.spmm(z)
}

/// Fused functional execution: per row, compute each non-zero's score and
/// accumulate `score · Z[j]` without storing the scored matrix — the
/// memory-saving recipe FusedMM implements.
///
/// # Errors
/// Propagates shape mismatches.
pub fn fusedmm_execute(a: &Csr, x: &Dense, z: &Dense) -> Result<Dense, SmatError> {
    if x.rows() != a.rows() || z.rows() != a.cols() || x.cols() != z.cols() {
        return Err(SmatError::new(format!(
            "fusedmm shape mismatch: A {}x{}, X {}x{}, Z {}x{}",
            a.rows(),
            a.cols(),
            x.rows(),
            x.cols(),
            z.rows(),
            z.cols()
        )));
    }
    let d = x.cols();
    let mut y = Dense::zeros(a.rows(), d);
    for i in 0..a.rows() {
        let (cols, vals) = a.row(i);
        let xrow = x.row(i).to_vec();
        for (&j, &v) in cols.iter().zip(vals) {
            let zrow = z.row(j as usize);
            let mut score = 0.0f32;
            for k in 0..d {
                score += xrow[k] * zrow[k];
            }
            score *= v;
            let yrow = y.row_mut(i);
            for (o, &zv) in yrow.iter_mut().zip(zrow) {
                *o += score * zv;
            }
        }
    }
    Ok(y)
}

/// Simulator plan for the fused kernel: per non-zero, one dot product plus
/// one AXPY, with `X[i]`/`Z[j]` each read once and no intermediate stored.
#[must_use]
pub fn fusedmm_plan(a: &Csr, feat: usize, name: &str) -> KernelPlan {
    let layout = SpmmLayout::new(a, feat, F32);
    let mut addr = layout.addr.clone();
    let z = addr.alloc("Z", (a.cols() * feat) as u64 * F32);
    let mut plan = KernelPlan::new(name);
    plan.threads_per_block = 128;
    let rows_per_block = 4usize;
    for row0 in (0..a.rows()).step_by(rows_per_block) {
        let rows = rows_per_block.min(a.rows() - row0);
        let lo = a.indptr()[row0];
        let hi = a.indptr()[row0 + rows];
        let nnz = hi - lo;
        // 2·d (dot) + 2·d (axpy) flops per non-zero.
        let mut w = BlockWork { cuda_flops: 4.0 * (nnz * feat) as f64, ..Default::default() };
        w.reads.push(AccessRange::new(layout.indices + lo as u64 * 4, nnz as u64 * 4));
        w.reads.push(AccessRange::new(layout.values + lo as u64 * F32, nnz as u64 * F32));
        for r in row0..row0 + rows {
            w.reads.push(AccessRange::new(layout.b + (r * feat) as u64 * F32, (feat as u64) * F32));
        }
        for &j in &a.indices()[lo..hi] {
            w.reads.push(AccessRange::new(z + (j as usize * feat) as u64 * F32, feat as u64 * F32));
        }
        w.writes.push(layout.c_rows(row0, rows, feat, F32));
        plan.blocks.push(w);
    }
    plan
}

/// Simulator plans for the unfused pipeline: an SDDMM kernel that writes
/// the scored matrix to HBM, then an SpMM kernel that reads it back.
#[must_use]
pub fn unfused_plans(a: &Csr, feat: usize) -> Vec<KernelPlan> {
    let sddmm = crate::sddmm::sddmm_plan(a, feat, crate::sddmm::SddmmParams::default(), "sddmm");
    let spmm = crate::spmm::csr_spmm_plan(a, feat, crate::spmm::CsrSpmmParams::default(), "spmm");
    vec![sddmm, spmm]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsetir_smat::gen;

    #[test]
    fn fused_matches_composed_reference() {
        let mut rng = gen::rng(88);
        let a = gen::random_csr(20, 20, 0.2, &mut rng);
        let x = gen::random_dense(20, 6, &mut rng);
        let z = gen::random_dense(20, 6, &mut rng);
        let fused = fusedmm_execute(&a, &x, &z).unwrap();
        let composed = fusedmm_reference(&a, &x, &z).unwrap();
        assert!(fused.approx_eq(&composed, 1e-3), "{}", fused.max_abs_diff(&composed));
    }

    #[test]
    fn shape_mismatch_errors() {
        let mut rng = gen::rng(89);
        let a = gen::random_csr(8, 8, 0.3, &mut rng);
        let x = gen::random_dense(8, 4, &mut rng);
        let z = gen::random_dense(6, 4, &mut rng); // wrong rows
        assert!(fusedmm_execute(&a, &x, &z).is_err());
    }

    #[test]
    fn fusion_saves_time_and_intermediate_traffic() {
        use rand::Rng;
        let mut rng = gen::rng(90);
        let a = gen::random_csr_with_row_lengths(
            2000,
            2000,
            |r| {
                let u: f64 = r.gen_range(0.0..1.0);
                ((2.0 / (u + 0.01)) as usize).clamp(1, 400)
            },
            &mut rng,
        );
        let spec = GpuSpec::v100();
        let fused = simulate_kernel(&spec, &fusedmm_plan(&a, 64, "fused"));
        let (_, unfused) = simulate_sequence(&spec, &unfused_plans(&a, 64));
        assert!(fused.time_ms < unfused, "fused {} vs unfused {}", fused.time_ms, unfused);
    }
}
