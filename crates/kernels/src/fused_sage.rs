//! Cross-op fused GraphSAGE layer step: neighbor gather → degree
//! normalization → feature matmul, compiled into **one** kernel — the
//! same fusion shape as [`crate::fused_attention`], applied to the GNN
//! inference path (see [`sparsetir_core::fused::fused_sage_program`]).
//!
//! The gather pass walks the adjacency's non-zero range once with the
//! fused binary-searched row recovery, accumulating `Agg[i] = Σ_{j∈N(i)}
//! X[j]` (the mean aggregator ignores edge values — it is purely
//! structural, so any CSR with the right pattern drives it); the matmul
//! pass then computes `H1 = (Agg · diag(Dinv)) · W` with the per-row
//! inverse degree folded in as a lane-invariant coefficient of the
//! `AxpyLanes` feature loop. Empty rows have `Dinv = 0` and aggregate
//! to zero.
//!
//! Fused vs two-launch pipeline is bit-identical (same pass bodies, same
//! order, same executor rounding points); against a per-edge-weighted
//! reference like [`sparsetir_smat::csr::Csr::spmm`] on a `1/deg`-valued
//! adjacency the grouping differs (`Σ (x/deg)` vs `(Σ x)/deg`), so that
//! comparison is relative-epsilon, not bit equality.

use sparsetir_core::prelude::*;
use sparsetir_ir::prelude::*;
use sparsetir_smat::prelude::*;
use std::collections::HashMap;

type KernelResult<T> = Result<T, Box<dyn std::error::Error>>;

/// Per-row inverse degrees of `a` (`0` for empty rows), the `Dinv`
/// operand of the fused SAGE kernel.
#[must_use]
pub fn inverse_degrees(a: &Csr) -> Vec<f32> {
    (0..a.rows())
        .map(|r| {
            let d = a.row_nnz(r);
            if d == 0 {
                0.0
            } else {
                1.0 / d as f32
            }
        })
        .collect()
}

/// Lower the gather → normalize → matmul step to one `PrimFunc` (two
/// passes, one kernel; the gather pass `sparse_fuse`d on `(I, J)`).
///
/// # Errors
/// Propagates lowering/scheduling errors.
pub fn fused_sage_ir(a: &Csr, feat: usize, hidden: usize) -> KernelResult<PrimFunc> {
    let mut program = fused_sage_program(a.rows(), a.cols(), a.nnz(), feat, hidden);
    sparse_fuse(&mut program, "gather", &["I", "J"])?;
    Ok(lower(&program)?)
}

fn check_shapes(a: &Csr, x: &Dense, w: &Dense) -> KernelResult<()> {
    if x.rows() != a.cols() || w.rows() != x.cols() {
        return Err(format!(
            "fused sage: operand shapes x {}x{}, w {}x{} vs adjacency {}x{}",
            x.rows(),
            x.cols(),
            w.rows(),
            w.cols(),
            a.rows(),
            a.cols()
        )
        .into());
    }
    Ok(())
}

/// Run the fused SAGE layer step as **one** kernel launch:
/// `H1 = (A_structural · X / deg) · W`.
///
/// # Errors
/// Returns an error on operand-shape mismatches and propagates
/// lowering/execution errors.
pub fn fused_sage_launch(rt: &Runtime, a: &Csr, x: &Dense, w: &Dense) -> KernelResult<Dense> {
    check_shapes(a, x, w)?;
    let (feat, hidden) = (x.cols(), w.cols());
    let f = fused_sage_ir(a, feat, hidden)?;
    let mut bindings = Bindings::new();
    bind_csr(&mut bindings, "A", "J", a);
    bind_dense(&mut bindings, "X", x);
    bind_dense(&mut bindings, "W", w);
    bindings.insert("Dinv".to_string(), TensorData::from(inverse_degrees(a)));
    bind_zeros(&mut bindings, "Agg", a.rows() * feat);
    bind_zeros(&mut bindings, "H1", a.rows() * hidden);
    rt.compile(&f)?.run(&HashMap::new(), &mut bindings)?;
    Ok(read_dense(&bindings, "H1", a.rows(), hidden))
}

/// Run the same layer step as the two-launch pipeline (gather kernel,
/// then normalize+matmul kernel) — the `SPARSETIR_NO_FUSE` fallback and
/// the fused kernel's bit-identity oracle.
///
/// # Errors
/// Returns an error on operand-shape mismatches and propagates
/// lowering/execution errors.
pub fn fused_sage_pipeline_launch(
    rt: &Runtime,
    a: &Csr,
    x: &Dense,
    w: &Dense,
) -> KernelResult<Dense> {
    check_shapes(a, x, w)?;
    let (feat, hidden) = (x.cols(), w.cols());

    let mut gather = sage_gather_program(a.rows(), a.cols(), a.nnz(), feat);
    sparse_fuse(&mut gather, "gather", &["I", "J"])?;
    let gather = lower(&gather)?;
    let mut b1 = Bindings::new();
    bind_csr(&mut b1, "A", "J", a);
    bind_dense(&mut b1, "X", x);
    bind_zeros(&mut b1, "Agg", a.rows() * feat);
    rt.compile(&gather)?.run(&HashMap::new(), &mut b1)?;
    let agg = b1["Agg"].as_f32().to_vec();

    let matmul = lower(&sage_matmul_program(a.rows(), feat, hidden))?;
    let mut b2 = Bindings::new();
    b2.insert("Agg".to_string(), TensorData::from(agg));
    b2.insert("Dinv".to_string(), TensorData::from(inverse_degrees(a)));
    bind_dense(&mut b2, "W", w);
    bind_zeros(&mut b2, "H1", a.rows() * hidden);
    rt.compile(&matmul)?.run(&HashMap::new(), &mut b2)?;
    Ok(read_dense(&b2, "H1", a.rows(), hidden))
}

/// Serve the fused SAGE layer step through `rt`, routing on the
/// runtime's fusion flag (the `SPARSETIR_NO_FUSE` kill switch falls back
/// to the two-launch pipeline). Both paths are bit-identical.
///
/// # Errors
/// Returns an error on operand-shape mismatches and propagates
/// lowering/execution errors.
pub fn fused_sage_execute_on(rt: &Runtime, a: &Csr, x: &Dense, w: &Dense) -> KernelResult<Dense> {
    if rt.fusion() {
        fused_sage_launch(rt, a, x, w)
    } else {
        fused_sage_pipeline_launch(rt, a, x, w)
    }
}

/// Pure-Rust f64 reference for relative-epsilon validation: mean-of-
/// neighbors aggregation followed by the dense feature transform.
#[must_use]
pub fn fused_sage_reference(a: &Csr, x: &Dense, w: &Dense) -> Dense {
    let (feat, hidden) = (x.cols(), w.cols());
    let dinv = inverse_degrees(a);
    let mut out = Dense::zeros(a.rows(), hidden);
    for (i, &di) in dinv.iter().enumerate() {
        let mut agg = vec![0.0f64; feat];
        for e in a.indptr()[i]..a.indptr()[i + 1] {
            let j = a.indices()[e] as usize;
            for (k, slot) in agg.iter_mut().enumerate() {
                *slot += f64::from(x.get(j, k));
            }
        }
        for o in 0..hidden {
            let mut acc = 0.0f64;
            for (k, &v) in agg.iter().enumerate() {
                acc += v * f64::from(di) * f64::from(w.get(k, o));
            }
            out.set(i, o, acc as f32);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsetir_smat::gen;

    fn bit_eq(a: &Dense, b: &Dense) -> bool {
        a.rows() == b.rows()
            && a.cols() == b.cols()
            && a.data().iter().zip(b.data()).all(|(x, y)| x.to_bits() == y.to_bits())
    }

    #[test]
    fn fused_matches_reference_and_pipeline() {
        let mut rng = gen::rng(50);
        let a = gen::random_csr_with_row_lengths(
            16,
            14,
            |r| {
                use rand::Rng;
                r.gen_range(0..5)
            },
            &mut rng,
        );
        let x = gen::random_dense(14, 6, &mut rng);
        let w = gen::random_dense(6, 4, &mut rng);
        let rt = Runtime::new();
        let fused = fused_sage_launch(&rt, &a, &x, &w).unwrap();
        let pipeline = fused_sage_pipeline_launch(&rt, &a, &x, &w).unwrap();
        assert!(bit_eq(&fused, &pipeline), "fused vs pipeline must be bit-identical");
        let reference = fused_sage_reference(&a, &x, &w);
        assert!(fused.approx_eq(&reference, 1e-4), "max |Δ| = {}", fused.max_abs_diff(&reference));
        for r in 0..a.rows() {
            if a.row_nnz(r) == 0 {
                assert!(fused.row(r).iter().all(|&v| v == 0.0), "empty row {r} must stay zero");
            }
        }
    }

    #[test]
    fn kill_switch_routes_to_the_pipeline() {
        let mut rng = gen::rng(51);
        let a = gen::random_csr(10, 10, 0.3, &mut rng);
        let x = gen::random_dense(10, 4, &mut rng);
        let w = gen::random_dense(4, 3, &mut rng);
        let on = Runtime::with_fusion(true);
        let off = Runtime::with_fusion(false);
        let yes = fused_sage_execute_on(&on, &a, &x, &w).unwrap();
        let no = fused_sage_execute_on(&off, &a, &x, &w).unwrap();
        assert_eq!(on.cached(), 1, "fused path is one kernel");
        assert_eq!(off.cached(), 2, "pipeline path is two kernels");
        assert!(bit_eq(&yes, &no));
    }

    #[test]
    fn gather_pass_hits_axpy_lanes() {
        let mut rng = gen::rng(52);
        let a = gen::random_csr(10, 10, 0.3, &mut rng);
        let f = fused_sage_ir(&a, 8, 4).unwrap();
        let kernel = Runtime::new().compile(&f).unwrap();
        let kinds = kernel.fused_kinds();
        assert!(
            kinds.iter().filter(|k| **k == "AxpyLanes").count() >= 2,
            "gather and matmul passes should both axpy over lanes: {kinds:?}"
        );
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let mut rng = gen::rng(53);
        let a = gen::random_csr(8, 8, 0.3, &mut rng);
        let x = gen::random_dense(7, 4, &mut rng);
        let w = gen::random_dense(4, 3, &mut rng);
        assert!(fused_sage_launch(&Runtime::new(), &a, &x, &w).is_err());
    }
}
