//! Shared plan-building helpers: buffer address layout and the block-work
//! cost knobs that schedules control.
//!
//! Every kernel plan is parameterized by the same schedule-visible knobs
//! the IR schedules manipulate, so autotuning over plans explores the same
//! space as scheduling over the IR:
//!
//! * `rows_per_block` / bucketing — block decomposition (split + bind),
//! * `vec_width` — `vectorize` (float4-style wide loads),
//! * `register_cache` — `cache_write` of the output accumulator
//!   (without it, every non-zero contribution writes through to global),
//! * `use_shared` — `cache_read` staging into shared memory,
//! * tensor-core usage — `tensorize`.

use sparsetir_gpusim::prelude::*;
use sparsetir_smat::prelude::*;

/// Bytes per element for single precision.
pub const F32: u64 = 4;
/// Bytes per element for half precision (tensor-core kernels).
pub const F16: u64 = 2;

/// Standard buffer layout for an SpMM-like kernel over one sparse matrix.
#[derive(Debug, Clone)]
pub struct SpmmLayout {
    /// Shared address space (reuse it across kernels of one operator so
    /// the cache simulation sees true reuse).
    pub addr: AddressSpace,
    /// Base of the `indptr` array.
    pub indptr: u64,
    /// Base of the `indices` array.
    pub indices: u64,
    /// Base of the non-zero values array.
    pub values: u64,
    /// Base of the dense input `B` (`cols × feat`).
    pub b: u64,
    /// Base of the dense output `C` (`rows × feat`).
    pub c: u64,
}

impl SpmmLayout {
    /// Allocate the standard layout for matrix `a` and feature width
    /// `feat`, with `elem` bytes per value element.
    #[must_use]
    pub fn new(a: &Csr, feat: usize, elem: u64) -> SpmmLayout {
        let mut addr = AddressSpace::new();
        let indptr = addr.alloc("indptr", (a.rows() as u64 + 1) * 4);
        let indices = addr.alloc("indices", a.nnz() as u64 * 4);
        let values = addr.alloc("values", a.nnz() as u64 * elem);
        let b = addr.alloc("B", a.cols() as u64 * feat as u64 * elem);
        let c = addr.alloc("C", a.rows() as u64 * feat as u64 * elem);
        SpmmLayout { addr, indptr, indices, values, b, c }
    }

    /// Access range of `B`'s row `col` (`feat` elements of `elem` bytes).
    #[must_use]
    pub fn b_row(&self, col: u32, feat: usize, elem: u64) -> AccessRange {
        AccessRange::new(self.b + u64::from(col) * feat as u64 * elem, feat as u64 * elem)
    }

    /// Access range of `C` rows `[row, row + nrows)`.
    #[must_use]
    pub fn c_rows(&self, row: usize, nrows: usize, feat: usize, elem: u64) -> AccessRange {
        AccessRange::new(self.c + row as u64 * feat as u64 * elem, (nrows * feat) as u64 * elem)
    }
}

/// Cost knobs for one SpMM-style block over `nnz` non-zeros × `feat`
/// features.
#[derive(Debug, Clone, Copy)]
pub struct SpmmCost {
    /// Non-zeros handled by the block.
    pub nnz: usize,
    /// Feature width.
    pub feat: usize,
    /// Wide-load width from `vectorize` (1 = scalar).
    pub vec_width: usize,
    /// Whether partial sums live in registers (`cache_write`); when false
    /// every contribution writes through to global memory.
    pub register_cache: bool,
    /// Threads cooperating in the block.
    pub threads: usize,
}

impl SpmmCost {
    /// CUDA-core FLOPs (multiply-add per element).
    #[must_use]
    pub fn flops(&self) -> f64 {
        2.0 * self.nnz as f64 * self.feat as f64
    }

    /// Per-block serialized instruction estimate: index bookkeeping plus
    /// load issue, divided over the block's threads.
    #[must_use]
    pub fn serial_insts(&self) -> f64 {
        let loads = self.nnz as f64 * self.feat as f64 / self.vec_width as f64;
        let bookkeeping = 4.0 * self.nnz as f64;
        (loads + bookkeeping) / self.threads as f64 * 4.0
    }

    /// Extra global write traffic when the accumulator is not cached in
    /// registers (`bytes` per element).
    #[must_use]
    pub fn writeback_penalty_bytes(&self, elem: u64) -> u64 {
        if self.register_cache {
            0
        } else {
            // Read-modify-write per contribution.
            2 * self.nnz as u64 * self.feat as u64 * elem
        }
    }
}

/// Dense GEMM plan (`m×k · k×n`), the cuBLAS-like building block.
/// `efficiency` discounts the peak rate (0.85–0.9 for cuBLAS-class code).
#[must_use]
pub fn gemm_plan(
    name: &str,
    m: usize,
    n: usize,
    k: usize,
    elem: u64,
    tensor_cores: bool,
    efficiency: f64,
) -> KernelPlan {
    let mut plan = KernelPlan::new(name);
    plan.threads_per_block = 256;
    let mut addr = AddressSpace::new();
    let a = addr.alloc("A", (m * k) as u64 * elem);
    let b = addr.alloc("B", (k * n) as u64 * elem);
    let c = addr.alloc("C", (m * n) as u64 * elem);
    // 128×128 output tiles, k-split into 32-wide panels.
    let tile = 128usize;
    let flops_per_tile = |tm: usize, tn: usize| 2.0 * (tm * tn * k) as f64 / efficiency;
    let mut bm = 0;
    while bm < m {
        let tm = tile.min(m - bm);
        let mut bn = 0;
        while bn < n {
            let tn = tile.min(n - bn);
            let mut w = BlockWork::default();
            if tensor_cores {
                w.tensor_flops = flops_per_tile(tm, tn);
            } else {
                w.cuda_flops = flops_per_tile(tm, tn);
            }
            // A panel rows and B panel columns stream once per tile.
            for r in 0..tm {
                w.reads.push(AccessRange::new(a + ((bm + r) * k) as u64 * elem, k as u64 * elem));
            }
            for kk in (0..k).step_by(32) {
                let rows = 32.min(k - kk);
                for r in 0..rows {
                    w.reads.push(AccessRange::new(
                        b + ((kk + r) * n + bn) as u64 * elem,
                        tn as u64 * elem,
                    ));
                }
            }
            for r in 0..tm {
                w.writes.push(AccessRange::new(
                    c + ((bm + r) * n + bn) as u64 * elem,
                    tn as u64 * elem,
                ));
            }
            w.shared_bytes = (tm * k + k * tn) as f64 * elem as f64;
            plan.blocks.push(w);
            bn += tile;
        }
        bm += tile;
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsetir_smat::gen;

    #[test]
    fn layout_allocates_disjoint_buffers() {
        let mut rng = gen::rng(1);
        let a = gen::random_csr(16, 16, 0.2, &mut rng);
        let l = SpmmLayout::new(&a, 32, F32);
        let bases = [l.indptr, l.indices, l.values, l.b, l.c];
        for (i, x) in bases.iter().enumerate() {
            for y in &bases[i + 1..] {
                assert_ne!(x, y);
            }
        }
    }

    #[test]
    fn register_cache_removes_writeback() {
        let base =
            SpmmCost { nnz: 100, feat: 32, vec_width: 4, register_cache: true, threads: 128 };
        assert_eq!(base.writeback_penalty_bytes(4), 0);
        let uncached = SpmmCost { register_cache: false, ..base };
        assert!(uncached.writeback_penalty_bytes(4) > 0);
    }

    #[test]
    fn vectorization_reduces_serial_insts() {
        let scalar =
            SpmmCost { nnz: 1000, feat: 64, vec_width: 1, register_cache: true, threads: 128 };
        let vectored = SpmmCost { vec_width: 4, ..scalar };
        assert!(vectored.serial_insts() < scalar.serial_insts());
    }

    #[test]
    fn gemm_plan_counts_flops() {
        let p = gemm_plan("g", 256, 256, 64, F32, false, 1.0);
        let expect = 2.0 * 256.0 * 256.0 * 64.0;
        assert!((p.total_flops() - expect).abs() / expect < 1e-9);
        assert_eq!(p.blocks.len(), 4);
    }

    #[test]
    fn tensor_core_gemm_is_faster() {
        let spec = GpuSpec::v100();
        let c = gemm_plan("cuda", 2048, 2048, 512, F16, false, 0.9);
        let t = gemm_plan("tc", 2048, 2048, 512, F16, true, 0.9);
        let rc = simulate_kernel(&spec, &c);
        let rt = simulate_kernel(&spec, &t);
        assert!(rc.time_ms > rt.time_ms, "{} vs {}", rc.time_ms, rt.time_ms);
    }
}
