//! SparseTIR SDDMM kernels (§4.2.2): non-zero-parallel iteration via the
//! Stage I `sparse_fuse` schedule, PRedS-style vectorized loads and the
//! `rfactor` two-stage reduction expressed as Stage II schedules.

use crate::common::{SpmmLayout, F32};
use sparsetir_core::prelude::*;
use sparsetir_gpusim::prelude::*;
use sparsetir_ir::prelude::*;
use sparsetir_smat::prelude::*;
use std::collections::HashMap;

/// Schedule parameters of the SDDMM kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SddmmParams {
    /// Non-zeros handled per thread block (nnz-parallel decomposition from
    /// `sparse_fuse`; ignored by the row-parallel variant).
    pub nnz_per_block: usize,
    /// Vector load width (`vectorize`).
    pub vec_width: usize,
    /// Two-stage reduction (`rfactor` + intra/inter-group reduction).
    pub two_stage: bool,
    /// Threads per block.
    pub threads: usize,
}

impl Default for SddmmParams {
    fn default() -> Self {
        SddmmParams { nnz_per_block: 32, vec_width: 4, two_stage: true, threads: 128 }
    }
}

/// Memory-level-parallelism penalty of the schedule: a serialized
/// per-thread reduction (no `rfactor`) keeps a quarter of the threads
/// issuing loads; scalar (non-vectorized) loads halve the in-flight bytes.
fn mlp_penalty(p: &SddmmParams) -> f64 {
    let reduction = if p.two_stage { 1.0 } else { 2.5 };
    let vector = if p.vec_width >= 4 { 1.0 } else { 1.5 };
    reduction * vector
}

/// Per-block wall-clock cycles of the dot-product phase. The reduction
/// term models the dependent-FMA chain: without `rfactor`, one thread owns
/// each non-zero's reduction over `feat`, a `feat`-long dependency chain at
/// ~4 cycles per dependent FMA; the two-stage schedule splits it across a
/// warp (intra-group) plus one inter-group step.
fn dot_serial_cycles(nnz_in_block: usize, feat: usize, p: &SddmmParams) -> f64 {
    let load_issue =
        nnz_in_block as f64 * 2.0 * feat as f64 / p.vec_width as f64 / p.threads as f64 * 4.0;
    let chain = if p.two_stage {
        (feat as f64 / 32.0).max(1.0) * 4.0 + 5.0 * (32f64).log2()
    } else {
        feat as f64 * 4.0
    };
    load_issue + chain
}

/// Non-zero-parallel SDDMM plan (the SparseTIR schedule: `sparse_fuse` on
/// `(I, J)`, one block per `nnz_per_block` non-zeros — perfectly load
/// balanced, as §4.2.2 observes).
#[must_use]
pub fn sddmm_plan(a: &Csr, feat: usize, params: SddmmParams, name: &str) -> KernelPlan {
    let layout = SpmmLayout::new(a, feat, F32);
    // Reuse the layout: B holds X (rows × feat), plus one more buffer for
    // Yᵀ (cols × feat) and the output values.
    let mut addr = layout.addr.clone();
    let yt = addr.alloc("Yt", a.cols() as u64 * feat as u64 * F32);
    let out = addr.alloc("Bout", a.nnz() as u64 * F32);
    let mut plan = KernelPlan::new(name);
    plan.threads_per_block = params.threads;
    // Row id per non-zero (from the fused-loop binary search, amortized).
    let row_of: Vec<u32> = {
        let mut v = Vec::with_capacity(a.nnz());
        for r in 0..a.rows() {
            for _ in 0..a.row_nnz(r) {
                v.push(r as u32);
            }
        }
        v
    };
    for chunk0 in (0..a.nnz()).step_by(params.nnz_per_block.max(1)) {
        let chunk = params.nnz_per_block.min(a.nnz() - chunk0);
        let mut w = BlockWork {
            cuda_flops: 2.0 * chunk as f64 * feat as f64,
            serial_insts: dot_serial_cycles(chunk, feat, &params),
            mlp_penalty: mlp_penalty(&params),
            ..Default::default()
        };
        w.reads.push(AccessRange::new(layout.indices + chunk0 as u64 * 4, chunk as u64 * 4));
        w.reads.push(AccessRange::new(layout.values + chunk0 as u64 * F32, chunk as u64 * F32));
        for (e, &i) in row_of.iter().enumerate().take(chunk0 + chunk).skip(chunk0) {
            let j = a.indices()[e];
            w.reads.push(AccessRange::new(
                layout.b + u64::from(i) * feat as u64 * F32,
                feat as u64 * F32,
            ));
            w.reads
                .push(AccessRange::new(yt + u64::from(j) * feat as u64 * F32, feat as u64 * F32));
        }
        w.writes.push(AccessRange::new(out + chunk0 as u64 * F32, chunk as u64 * F32));
        plan.blocks.push(w);
    }
    plan
}

/// Row-parallel SDDMM plan (FeatGraph/DGL-style: one block per row group —
/// inherits the row-length skew).
#[must_use]
pub fn sddmm_row_parallel_plan(
    a: &Csr,
    feat: usize,
    params: SddmmParams,
    rows_per_block: usize,
    name: &str,
) -> KernelPlan {
    let layout = SpmmLayout::new(a, feat, F32);
    let mut addr = layout.addr.clone();
    let yt = addr.alloc("Yt", a.cols() as u64 * feat as u64 * F32);
    let out = addr.alloc("Bout", a.nnz() as u64 * F32);
    let mut plan = KernelPlan::new(name);
    plan.threads_per_block = params.threads;
    for row0 in (0..a.rows()).step_by(rows_per_block.max(1)) {
        let rows = rows_per_block.min(a.rows() - row0);
        let lo = a.indptr()[row0];
        let hi = a.indptr()[row0 + rows];
        let nnz = hi - lo;
        let mut w = BlockWork {
            cuda_flops: 2.0 * nnz as f64 * feat as f64,
            serial_insts: dot_serial_cycles(nnz, feat, &params),
            mlp_penalty: mlp_penalty(&params),
            ..Default::default()
        };
        w.reads.push(AccessRange::new(layout.indptr + row0 as u64 * 4, (rows as u64 + 1) * 4));
        w.reads.push(AccessRange::new(layout.indices + lo as u64 * 4, nnz as u64 * 4));
        w.reads.push(AccessRange::new(layout.values + lo as u64 * F32, nnz as u64 * F32));
        for r in row0..row0 + rows {
            w.reads
                .push(AccessRange::new(layout.b + r as u64 * feat as u64 * F32, feat as u64 * F32));
        }
        for &j in &a.indices()[lo..hi] {
            w.reads
                .push(AccessRange::new(yt + u64::from(j) * feat as u64 * F32, feat as u64 * F32));
        }
        w.writes.push(AccessRange::new(out + lo as u64 * F32, nnz as u64 * F32));
        plan.blocks.push(w);
    }
    plan
}

/// The paper's SDDMM schedule space (group size / non-zeros per CTA,
/// vector length — §4.2.2: "we generalize the parameters … as tunable
/// parameters"). The autotuner's `SddmmSpace` enumerates exactly these.
#[must_use]
pub fn sddmm_param_candidates() -> Vec<SddmmParams> {
    let mut out = Vec::new();
    for nnz_per_block in [8usize, 16, 32, 64] {
        for vec_width in [2usize, 4] {
            out.push(SddmmParams { nnz_per_block, vec_width, two_stage: true, threads: 128 });
        }
    }
    out
}

/// Tune the SDDMM schedule over [`sddmm_param_candidates`] and return the
/// best plan's report (grid kept here for plan-only callers; the cached,
/// engine-driven variant lives in `sparsetir-autotune`).
#[must_use]
pub fn tuned_sddmm_time(spec: &GpuSpec, a: &Csr, feat: usize) -> KernelReport {
    sddmm_param_candidates()
        .into_iter()
        .map(|params| simulate_kernel(spec, &sddmm_plan(a, feat, params, "sparsetir_sddmm")))
        .min_by(|a, b| a.time_ms.total_cmp(&b.time_ms))
        .expect("non-empty search space")
}

/// IR-path fused SDDMM for functional validation.
///
/// # Errors
/// Propagates lowering/scheduling errors.
pub fn sddmm_ir(a: &Csr, feat: usize) -> Result<PrimFunc, Box<dyn std::error::Error>> {
    let mut program = sddmm_program(a.rows(), a.cols(), a.nnz(), feat);
    sparse_fuse(&mut program, "sddmm", &["I", "J"])?;
    let f = lower(&program)?;
    Ok(f)
}

/// Execute the IR-path SDDMM through the slot-compiled executor
/// (compile-once/run-many via the global kernel cache).
///
/// # Errors
/// Propagates lowering and execution errors.
pub fn sddmm_execute(
    a: &Csr,
    x: &Dense,
    y: &Dense,
) -> Result<Vec<f32>, Box<dyn std::error::Error>> {
    sddmm_execute_on(Runtime::global(), a, x, y)
}

/// Like [`sddmm_execute`], but compiling through an explicit [`Runtime`]
/// instead of the process-wide global one — the serving-engine entry
/// point.
///
/// # Errors
/// Propagates lowering and execution errors.
pub fn sddmm_execute_on(
    rt: &Runtime,
    a: &Csr,
    x: &Dense,
    y: &Dense,
) -> Result<Vec<f32>, Box<dyn std::error::Error>> {
    let f = sddmm_ir(a, x.cols())?;
    let mut bindings = Bindings::new();
    bind_csr(&mut bindings, "A", "J", a);
    bind_dense(&mut bindings, "X", x);
    bind_dense(&mut bindings, "Y", y);
    bind_zeros(&mut bindings, "Bout", a.nnz());
    rt.compile(&f)?.run(&HashMap::new(), &mut bindings)?;
    Ok(take_values(&mut bindings, "Bout"))
}

/// Execute one multi-head SDDMM launch with `X`, `Y` and `Bout` bound as
/// segmented views over the per-request operands and outputs — the
/// zero-copy counterpart of the stacking batch path. Request `h`
/// contributes its `m × k` operand as columns `[h·k, (h+1)·k)` of the
/// logical `X`, its `k × n` operand as the `h`-th row-segment of the
/// logical `Y`, and the kernel writes head `h`'s per-non-zero scores
/// directly into `outs[h]` (which must hold `a.nnz()` elements,
/// zero-filled). All requests must share the inner width `k`; the caller
/// guarantees a non-empty batch.
///
/// # Errors
/// Propagates lowering, view-validation and execution errors.
pub fn sddmm_execute_views_on(
    rt: &Runtime,
    a: &Csr,
    reqs: &[(Dense, Dense)],
    outs: &mut [Vec<f32>],
) -> Result<(), Box<dyn std::error::Error>> {
    let heads = reqs.len();
    let k = reqs[0].0.cols();
    let f = batched_sddmm_ir(a, heads, k)?;
    let kernel = rt.compile(&f)?;
    let mut structure = Bindings::new();
    bind_csr(&mut structure, "A", "J", a);
    let x_segs: Vec<(&[f32], usize)> = reqs.iter().map(|(x, _)| (x.data(), x.cols())).collect();
    let y_segs: Vec<&[f32]> = reqs.iter().map(|(_, y)| y.data()).collect();
    let out_segs: Vec<(&mut [f32], usize)> =
        outs.iter_mut().map(|o| (o.as_mut_slice(), 1)).collect();
    let x = ColsView::read(a.rows(), &x_segs)?;
    let y = RowsView::read(k * a.cols(), &y_segs)?;
    let bout = ColsView::write(a.nnz(), out_segs)?;
    let mut views = ViewBindings::from_tensors(&mut structure);
    views.bind_cols("X", x);
    views.bind_rows("Y", y);
    views.bind_cols("Bout", bout);
    kernel.run_views(&HashMap::new(), &mut views)?;
    Ok(())
}

/// IR-path *batched* (multi-head) fused SDDMM: one widened launch whose
/// head axis sits inside the fused non-zero loop, so the per-non-zero
/// coordinate walk (binary-searched row recovery, index loads) is shared
/// by every head — the SDDMM analogue of column-stacking an SpMM batch.
///
/// # Errors
/// Propagates lowering/scheduling errors.
pub fn batched_sddmm_ir(
    a: &Csr,
    heads: usize,
    feat: usize,
) -> Result<PrimFunc, Box<dyn std::error::Error>> {
    let mut program = batched_sddmm_program(a.rows(), a.cols(), a.nnz(), heads, feat);
    sparse_fuse(&mut program, "sddmm", &["I", "J"])?;
    let f = lower(&program)?;
    Ok(f)
}

/// Execute a *batch* of SDDMM requests against one shared adjacency as a
/// single widened kernel launch (see [`batched_sddmm_ir`]): the per-head
/// `X` operands stack column-wise into one `m × heads·feat` operand, the
/// `Y` operands stack row-wise, one kernel walks the non-zeros once
/// computing every head's dot product, and the interleaved output splits
/// back per request. All requests must share the inner (reduction)
/// width; see [`crate::op::SddmmOp`] for the batching contract. Results
/// are bit-identical to a sequential loop of [`sddmm_execute`] calls:
/// every `(non-zero, head)` pair keeps exactly its unbatched reduction
/// order.
///
/// # Errors
/// Returns an error on an operand-shape mismatch or mixed inner widths,
/// and propagates lowering/execution errors.
pub fn sddmm_batched_execute(
    a: &Csr,
    reqs: &[(Dense, Dense)],
) -> Result<Vec<Vec<f32>>, Box<dyn std::error::Error>> {
    sddmm_batched_execute_on(Runtime::global(), a, reqs)
}

/// [`sddmm_batched_execute`] through an explicit [`Runtime`].
///
/// # Errors
/// Returns an error on an operand-shape mismatch or mixed inner widths,
/// and propagates lowering/execution errors.
pub fn sddmm_batched_execute_on(
    rt: &Runtime,
    a: &Csr,
    reqs: &[(Dense, Dense)],
) -> Result<Vec<Vec<f32>>, Box<dyn std::error::Error>> {
    use crate::op::{SddmmOp, SparseOp};
    SddmmOp::execute_batch_on(rt, a, reqs, &SddmmOp::default_config())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsetir_smat::gen;

    #[test]
    fn ir_execution_matches_reference() {
        let mut rng = gen::rng(15);
        let a = gen::random_csr(10, 12, 0.2, &mut rng);
        let x = gen::random_dense(10, 5, &mut rng);
        let y = gen::random_dense(5, 12, &mut rng);
        let got = sddmm_execute(&a, &x, &y).unwrap();
        let expect = a.sddmm(&x, &y).unwrap();
        for (g, e) in got.iter().zip(expect.values()) {
            assert!((g - e).abs() < 1e-3, "{g} vs {e}");
        }
    }

    /// The SDDMM feature loop — one contiguous operand, one
    /// column-strided operand, an invariant edge weight — must fuse to
    /// the `GatherScaleAccumulate` microkernel.
    #[test]
    fn sddmm_inner_loop_fuses_to_gather_scale_accumulate() {
        let mut rng = gen::rng(16);
        let a = gen::random_csr(10, 12, 0.2, &mut rng);
        let f = sddmm_ir(&a, 5).unwrap();
        let kernel = sparsetir_ir::exec::Runtime::global().compile(&f).unwrap();
        assert_eq!(kernel.fused_kinds(), vec!["GatherScaleAccumulate"]);
    }

    #[test]
    fn nnz_parallel_beats_row_parallel_on_skew() {
        let mut rng = gen::rng(21);
        let a = gen::random_csr_with_row_lengths(
            1500,
            1500,
            |r| {
                use rand::Rng;
                let u: f64 = r.gen_range(0.0..1.0);
                ((1.0 / (u + 0.004)) as usize).clamp(1, 600)
            },
            &mut rng,
        );
        let spec = GpuSpec::v100();
        let fused = simulate_kernel(&spec, &sddmm_plan(&a, 128, SddmmParams::default(), "fused"));
        let rowp = simulate_kernel(
            &spec,
            &sddmm_row_parallel_plan(&a, 128, SddmmParams::default(), 1, "rowp"),
        );
        assert!(fused.time_ms < rowp.time_ms, "{} vs {}", fused.time_ms, rowp.time_ms);
    }

    #[test]
    fn two_stage_reduction_helps_at_large_feat() {
        let mut rng = gen::rng(22);
        let a = gen::random_csr(800, 800, 0.02, &mut rng);
        let spec = GpuSpec::v100();
        let with = simulate_kernel(&spec, &sddmm_plan(&a, 512, SddmmParams::default(), "rf"));
        let without = simulate_kernel(
            &spec,
            &sddmm_plan(&a, 512, SddmmParams { two_stage: false, ..Default::default() }, "norf"),
        );
        assert!(with.time_ms < without.time_ms, "{} vs {}", with.time_ms, without.time_ms);
    }
}
