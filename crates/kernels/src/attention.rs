//! Batched sparse-attention operators (§4.3.1): multi-head SpMM and SDDMM
//! over Longformer band masks and Pixelated-Butterfly masks, in CSR (CUDA
//! cores) and BSR (`tensorize` → tensor cores, fp16) variants.

use crate::common::{F16, F32};
use sparsetir_gpusim::prelude::*;
use sparsetir_smat::prelude::*;

/// Efficiency of SparseTIR's tuned BSR tensor-core kernels (fraction of
/// peak MMA throughput reached after the `cache_read`/`tensorize`
/// schedule).
pub const SPARSETIR_BSR_EFFICIENCY: f64 = 0.88;

/// Plan for batched (multi-head) BSR SpMM on tensor cores: per head, one
/// block per block-row strip; `A`-tiles and `B`-panels staged in shared
/// memory before `mma_sync`.
#[must_use]
pub fn batched_bsr_spmm_plan(
    bsr: &Bsr,
    feat: usize,
    heads: usize,
    efficiency: f64,
    name: &str,
) -> KernelPlan {
    let b = bsr.block();
    let elem = F16;
    let mut addr = AddressSpace::new();
    let vals = addr.alloc("vals", (heads * bsr.stored()) as u64 * elem);
    let xb = addr.alloc("X", (heads * bsr.cols() * feat) as u64 * elem);
    let yb = addr.alloc("Y", (heads * bsr.rows() * feat) as u64 * elem);
    let mut plan = KernelPlan::new(name);
    plan.threads_per_block = 128;
    plan.shared_mem_per_block = b * b * 2 * elem as usize * 8;
    let bb = (b * b) as u64;
    for h in 0..heads {
        let head_val = vals + (h * bsr.stored()) as u64 * elem;
        let head_x = xb + (h * bsr.cols() * feat) as u64 * elem;
        let head_y = yb + (h * bsr.rows() * feat) as u64 * elem;
        for br in 0..bsr.block_rows() {
            let lo = bsr.indptr()[br];
            let hi = bsr.indptr()[br + 1];
            if lo == hi {
                continue;
            }
            let nblk = hi - lo;
            let mut w = BlockWork {
                tensor_flops: 2.0 * (nblk * b * b * feat) as f64 / efficiency,
                ..Default::default()
            };
            w.reads.push(AccessRange::new(
                head_val + lo as u64 * bb * elem,
                (nblk as u64) * bb * elem,
            ));
            for &bc in &bsr.indices()[lo..hi] {
                w.reads.push(AccessRange::new(
                    head_x + (bc as usize * b * feat) as u64 * elem,
                    (b * feat) as u64 * elem,
                ));
            }
            w.writes.push(AccessRange::new(
                head_y + (br * b * feat) as u64 * elem,
                (b * feat) as u64 * elem,
            ));
            w.shared_bytes = (nblk * b * b + b * feat) as f64 * elem as f64;
            plan.blocks.push(w);
        }
    }
    plan
}

/// Plan for batched CSR SpMM on CUDA cores — the SparseTIR-CSR bar of
/// Figure 16: scalar element-wise processing of a block-structured mask,
/// paying per-non-zero overhead with no tensor cores.
#[must_use]
pub fn batched_csr_spmm_plan(a: &Csr, feat: usize, heads: usize, name: &str) -> KernelPlan {
    let elem = F32;
    let mut addr = AddressSpace::new();
    let indptr = addr.alloc("indptr", (a.rows() as u64 + 1) * 4);
    let indices = addr.alloc("indices", a.nnz() as u64 * 4);
    let vals = addr.alloc("vals", (heads * a.nnz()) as u64 * elem);
    let xb = addr.alloc("X", (heads * a.cols() * feat) as u64 * elem);
    let yb = addr.alloc("Y", (heads * a.rows() * feat) as u64 * elem);
    let mut plan = KernelPlan::new(name);
    plan.threads_per_block = 128;
    let rows_per_block = 4usize;
    for h in 0..heads {
        let head_val = vals + (h * a.nnz()) as u64 * elem;
        let head_x = xb + (h * a.cols() * feat) as u64 * elem;
        let head_y = yb + (h * a.rows() * feat) as u64 * elem;
        for row0 in (0..a.rows()).step_by(rows_per_block) {
            let rows = rows_per_block.min(a.rows() - row0);
            let lo = a.indptr()[row0];
            let hi = a.indptr()[row0 + rows];
            let nnz = hi - lo;
            // Scalar gather per non-zero element: the dominant cost
            // (uncoalesced fp32 loads, no tensor cores).
            let mut w = BlockWork {
                cuda_flops: 2.0 * (nnz * feat) as f64,
                serial_insts: (nnz * feat) as f64 / 128.0 * 24.0,
                ..Default::default()
            };
            w.reads.push(AccessRange::new(indptr + row0 as u64 * 4, (rows as u64 + 1) * 4));
            w.reads.push(AccessRange::new(indices + lo as u64 * 4, nnz as u64 * 4));
            w.reads.push(AccessRange::new(head_val + lo as u64 * elem, nnz as u64 * elem));
            for &col in &a.indices()[lo..hi] {
                w.reads.push(AccessRange::new(
                    head_x + (col as usize * feat) as u64 * elem,
                    feat as u64 * elem,
                ));
            }
            w.writes.push(AccessRange::new(
                head_y + (row0 * feat) as u64 * elem,
                (rows * feat) as u64 * elem,
            ));
            plan.blocks.push(w);
        }
    }
    plan
}

/// Plan for batched BSR SDDMM on tensor cores (SparseTIR-BSR): one MMA per
/// stored block computing `X_i · Yᵀ_j` tiles.
#[must_use]
pub fn batched_bsr_sddmm_plan(
    bsr: &Bsr,
    feat: usize,
    heads: usize,
    efficiency: f64,
    name: &str,
) -> KernelPlan {
    let b = bsr.block();
    let elem = F16;
    let mut addr = AddressSpace::new();
    let xb = addr.alloc("X", (heads * bsr.rows() * feat) as u64 * elem);
    let yb = addr.alloc("Yt", (heads * bsr.cols() * feat) as u64 * elem);
    let ob = addr.alloc("out", (heads * bsr.stored()) as u64 * elem);
    let mut plan = KernelPlan::new(name);
    plan.threads_per_block = 128;
    let blocks_per_cta = 4usize;
    let bb = (b * b) as u64;
    for h in 0..heads {
        let head_x = xb + (h * bsr.rows() * feat) as u64 * elem;
        let head_y = yb + (h * bsr.cols() * feat) as u64 * elem;
        let head_o = ob + (h * bsr.stored()) as u64 * elem;
        let mut block_list: Vec<(usize, u32)> = Vec::new();
        for br in 0..bsr.block_rows() {
            for p in bsr.indptr()[br]..bsr.indptr()[br + 1] {
                block_list.push((br, bsr.indices()[p]));
            }
        }
        for (ci, chunk) in block_list.chunks(blocks_per_cta).enumerate() {
            let mut w = BlockWork {
                tensor_flops: 2.0 * (chunk.len() * b * b * feat) as f64 / efficiency,
                ..Default::default()
            };
            for (br, bc) in chunk {
                w.reads.push(AccessRange::new(
                    head_x + (br * b * feat) as u64 * elem,
                    (b * feat) as u64 * elem,
                ));
                w.reads.push(AccessRange::new(
                    head_y + (*bc as usize * b * feat) as u64 * elem,
                    (b * feat) as u64 * elem,
                ));
            }
            w.writes.push(AccessRange::new(
                head_o + (ci * blocks_per_cta) as u64 * bb * elem,
                (chunk.len() as u64) * bb * elem,
            ));
            w.shared_bytes = (2 * b * feat) as f64 * elem as f64;
            plan.blocks.push(w);
        }
    }
    plan
}

/// Plan for batched CSR SDDMM on CUDA cores (SparseTIR-CSR bar).
#[must_use]
pub fn batched_csr_sddmm_plan(a: &Csr, feat: usize, heads: usize, name: &str) -> KernelPlan {
    let elem = F32;
    let mut addr = AddressSpace::new();
    let indices = addr.alloc("indices", a.nnz() as u64 * 4);
    let xb = addr.alloc("X", (heads * a.rows() * feat) as u64 * elem);
    let yb = addr.alloc("Yt", (heads * a.cols() * feat) as u64 * elem);
    let ob = addr.alloc("out", (heads * a.nnz()) as u64 * elem);
    let mut plan = KernelPlan::new(name);
    plan.threads_per_block = 128;
    let row_of: Vec<u32> = {
        let mut v = Vec::with_capacity(a.nnz());
        for r in 0..a.rows() {
            for _ in 0..a.row_nnz(r) {
                v.push(r as u32);
            }
        }
        v
    };
    let nnz_per_block = 32usize;
    for h in 0..heads {
        let head_x = xb + (h * a.rows() * feat) as u64 * elem;
        let head_y = yb + (h * a.cols() * feat) as u64 * elem;
        let head_o = ob + (h * a.nnz()) as u64 * elem;
        for chunk0 in (0..a.nnz()).step_by(nnz_per_block) {
            let chunk = nnz_per_block.min(a.nnz() - chunk0);
            let mut w = BlockWork {
                cuda_flops: 2.0 * (chunk * feat) as f64,
                serial_insts: (chunk * feat) as f64 / 128.0 * 24.0,
                ..Default::default()
            };
            w.reads.push(AccessRange::new(indices + chunk0 as u64 * 4, chunk as u64 * 4));
            for (e, &i) in row_of.iter().enumerate().take(chunk0 + chunk).skip(chunk0) {
                let j = a.indices()[e];
                w.reads.push(AccessRange::new(
                    head_x + (i as usize * feat) as u64 * elem,
                    feat as u64 * elem,
                ));
                w.reads.push(AccessRange::new(
                    head_y + (j as usize * feat) as u64 * elem,
                    feat as u64 * elem,
                ));
            }
            w.writes.push(AccessRange::new(head_o + chunk0 as u64 * elem, chunk as u64 * elem));
            plan.blocks.push(w);
        }
    }
    plan
}

/// Reference computation for batched attention SpMM (oracle).
///
/// # Errors
/// Propagates shape mismatches.
pub fn batched_spmm_reference(a: &Csr, x: &[Dense]) -> Result<Vec<Dense>, SmatError> {
    batched_spmm(a, x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsetir_smat::gen;

    /// A band (Longformer-style) mask of the given half-bandwidth.
    fn band_mask(n: usize, band: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            let lo = i.saturating_sub(band / 2);
            let hi = (i + band / 2).min(n - 1);
            for j in lo..=hi {
                coo.push(i as u32, j as u32, 1.0);
            }
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn bsr_tensor_cores_beat_csr_cuda_cores() {
        // The Figure 16 gap: SparseTIR-BSR ≫ SparseTIR-CSR on block masks.
        let spec = GpuSpec::v100();
        let mask = band_mask(2048, 256);
        let bsr = Bsr::from_csr(&mask, 32).unwrap();
        let heads = 8;
        let feat = 64;
        let bsr_plan = batched_bsr_spmm_plan(&bsr, feat, heads, SPARSETIR_BSR_EFFICIENCY, "bsr");
        let csr_plan = batched_csr_spmm_plan(&mask, feat, heads, "csr");
        let rb = simulate_kernel(&spec, &bsr_plan);
        let rc = simulate_kernel(&spec, &csr_plan);
        assert!(rb.time_ms * 5.0 < rc.time_ms, "bsr {} vs csr {}", rb.time_ms, rc.time_ms);
    }

    #[test]
    fn sddmm_plans_cover_all_nonzeros() {
        let mask = band_mask(256, 32);
        let bsr = Bsr::from_csr(&mask, 32).unwrap();
        let p = batched_bsr_sddmm_plan(&bsr, 64, 2, 0.9, "s");
        // Tensor flops = 2 · heads · stored · feat / eff.
        let expect = 2.0 * 2.0 * bsr.stored() as f64 * 64.0 / 0.9;
        let got: f64 = p.blocks.iter().map(|b| b.tensor_flops).sum();
        assert!((got - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn reference_matches_per_head() {
        let mut rng = gen::rng(31);
        let mask = band_mask(32, 8);
        let xs: Vec<Dense> = (0..3).map(|_| gen::random_dense(32, 8, &mut rng)).collect();
        let ys = batched_spmm_reference(&mask, &xs).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            assert!(y.approx_eq(&mask.spmm(x).unwrap(), 1e-5));
        }
    }
}
