//! Relational Gather-Matmul-Scatter (§4.4): the fused RGCN operator
//! `Y[i,l] = Σ_r Σ_j A_r[i,j] · (X[j,:] · W_r)[l]` on a 3-D composable
//! format — generalizing `hyb` per relation — with three variants matching
//! Figure 20's ablation: `naive` (fused, no bucketing, CUDA cores), `hyb`
//! (bucketed, CUDA cores) and `hyb+TC` (bucketed, shared-memory staging,
//! tensor cores, fp16), plus the two-stage gather–matmul–scatter pipeline
//! (eqs. 9–10) the GNN libraries implement.

use crate::common::{gemm_plan, F16, F32};
use sparsetir_gpusim::prelude::*;
use sparsetir_smat::prelude::*;

/// Tensor-core efficiency of the fused RGMS kernel.
pub const RGMS_TC_EFFICIENCY: f64 = 0.70;

/// An RGMS problem instance.
#[derive(Debug, Clone)]
pub struct RgmsWorkload {
    /// Per-relation adjacency (all `n × n`).
    pub relations: Vec<Csr>,
    /// Input feature width `d_in`.
    pub din: usize,
    /// Output feature width `d_out`.
    pub dout: usize,
}

impl RgmsWorkload {
    /// Number of nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.relations.first().map_or(0, Csr::rows)
    }

    /// Total edges over all relations.
    #[must_use]
    pub fn edges(&self) -> usize {
        self.relations.iter().map(Csr::nnz).sum()
    }
}

fn base_layout(w: &RgmsWorkload, elem: u64) -> (AddressSpace, u64, u64, u64) {
    let mut addr = AddressSpace::new();
    let x = addr.alloc("X", (w.nodes() * w.din) as u64 * elem);
    let wts = addr.alloc("W", (w.relations.len() * w.din * w.dout) as u64 * elem);
    let y = addr.alloc("Y", (w.nodes() * w.dout) as u64 * elem);
    (addr, x, wts, y)
}

/// Fused RGMS without bucketing (SparseTIR-naive): one block per non-empty
/// row per relation — inherits the degree skew; atomically scatters to Y.
#[must_use]
pub fn rgms_naive_plan(w: &RgmsWorkload, name: &str) -> KernelPlan {
    let elem = F32;
    let (_addr, x, wts, y) = base_layout(w, elem);
    let wsize = (w.din * w.dout) as u64 * elem;
    let mut plan = KernelPlan::new(name);
    plan.threads_per_block = 64;
    for (r, rel) in w.relations.iter().enumerate() {
        for i in 0..rel.rows() {
            let nnz = rel.row_nnz(i);
            if nnz == 0 {
                continue;
            }
            let mut blk =
                BlockWork { cuda_flops: 2.0 * (nnz * w.din * w.dout) as f64, ..Default::default() };
            blk.reads.push(AccessRange::new(wts + r as u64 * wsize, wsize));
            for &j in rel.row(i).0 {
                blk.reads.push(AccessRange::new(
                    x + (j as usize * w.din) as u64 * elem,
                    w.din as u64 * elem,
                ));
            }
            // Atomic scatter: read-modify-write of the output row.
            blk.writes
                .push(AccessRange::new(y + (i * w.dout) as u64 * elem, 2 * w.dout as u64 * elem));
            blk.serial_insts = (nnz * w.din * w.dout) as f64 / 64.0 * 2.0;
            plan.blocks.push(blk);
        }
    }
    plan
}

/// Fused RGMS on the 3-D `hyb` format: per relation, rows are bucketed
/// (`hyb(1, k)` as in §4.4.1) so each block covers a bounded edge count;
/// `W_r` is pinned in shared memory (Figure 21).
#[must_use]
pub fn rgms_hyb_plan(
    w: &RgmsWorkload,
    bucket_k: u32,
    tensor_cores: bool,
    name: &str,
) -> KernelPlan {
    let elem = if tensor_cores { F16 } else { F32 };
    let (mut addr, x, wts, y) = base_layout(w, elem);
    let wsize = (w.din * w.dout) as u64 * elem;
    let mut plan = KernelPlan::new(name);
    plan.threads_per_block = 128;
    plan.shared_mem_per_block = (w.din * w.dout) * elem as usize;
    for (r, rel) in w.relations.iter().enumerate() {
        if rel.nnz() == 0 {
            continue;
        }
        let hyb = Hyb::from_csr(rel, 1, bucket_k).expect("c=1 is valid");
        let k = hyb.bucket_k();
        for part in hyb.partitions() {
            for bucket in &part.buckets {
                if bucket.is_empty() {
                    continue;
                }
                let width = bucket.width;
                let i = (width as f64).log2() as u32;
                let rows_per_block = (1usize << (k - i.min(k))).max(1);
                let rows_name = format!("{name}_r{r}_w{width}_rows");
                let rows_base = addr.alloc(&rows_name, bucket.len() as u64 * 4);
                for r0 in (0..bucket.len()).step_by(rows_per_block) {
                    let rows = rows_per_block.min(bucket.len() - r0);
                    let edges = rows * width;
                    let mut blk = BlockWork::default();
                    let flops = 2.0 * (edges * w.din * w.dout) as f64;
                    if tensor_cores {
                        blk.tensor_flops = flops / RGMS_TC_EFFICIENCY;
                    } else {
                        blk.cuda_flops = flops;
                        blk.serial_insts = flops / 128.0;
                    }
                    blk.reads.push(AccessRange::new(wts + r as u64 * wsize, wsize));
                    blk.reads.push(AccessRange::new(rows_base + r0 as u64 * 4, rows as u64 * 4));
                    for ri in 0..rows {
                        for j in 0..width {
                            let col = bucket.col_indices[(r0 + ri) * width + j];
                            blk.reads.push(AccessRange::new(
                                x + (col as usize * w.din) as u64 * elem,
                                w.din as u64 * elem,
                            ));
                        }
                        let out = bucket.row_ids[r0 + ri];
                        blk.writes.push(AccessRange::new(
                            y + (out as usize * w.dout) as u64 * elem,
                            2 * w.dout as u64 * elem,
                        ));
                    }
                    // Gather + matmul + intra-group scatter in SRAM (Fig 21).
                    blk.shared_bytes =
                        ((edges * w.din) + w.din * w.dout + edges * w.dout) as f64 * elem as f64;
                    plan.blocks.push(blk);
                }
            }
        }
    }
    plan
}

/// The two-stage pipeline of the GNN libraries (eqs. 9–10): for every
/// relation, `T_r = X · W_r` (dense GEMM over *all* nodes), then
/// `Y += A_r · T_r` (SpMM). Materializes `T` in HBM.
///
/// Returns one plan per kernel launch; `gemm_efficiency` and
/// `scatter_efficiency` tune the library's maturity (cuBLAS-class vs
/// framework scatter kernels).
#[must_use]
pub fn rgms_two_stage_plans(
    w: &RgmsWorkload,
    gemm_efficiency: f64,
    scatter_register_cache: bool,
    name: &str,
) -> Vec<KernelPlan> {
    let elem = F32;
    let n = w.nodes();
    let mut plans = Vec::new();
    // Stage 1: R dense GEMMs (could be batched; libraries launch per
    // relation).
    for (r, _) in w.relations.iter().enumerate() {
        plans.push(gemm_plan(
            &format!("{name}_gemm_r{r}"),
            n,
            w.dout,
            w.din,
            elem,
            false,
            gemm_efficiency,
        ));
    }
    // Stage 2: per-relation SpMM on T_r.
    let mut addr = AddressSpace::new();
    let t = addr.alloc("T", (w.relations.len() * n * w.dout) as u64 * elem);
    let y = addr.alloc("Y", (n * w.dout) as u64 * elem);
    for (r, rel) in w.relations.iter().enumerate() {
        let mut plan = KernelPlan::new(format!("{name}_scatter_r{r}"));
        plan.threads_per_block = 128;
        let t_r = t + (r * n * w.dout) as u64 * elem;
        for i in (0..rel.rows()).step_by(4) {
            let rows = 4.min(rel.rows() - i);
            let lo = rel.indptr()[i];
            let hi = rel.indptr()[i + rows];
            let nnz = hi - lo;
            if nnz == 0 {
                continue;
            }
            let mut blk =
                BlockWork { cuda_flops: 2.0 * (nnz * w.dout) as f64, ..Default::default() };
            for &j in &rel.indices()[lo..hi] {
                blk.reads.push(AccessRange::new(
                    t_r + (j as usize * w.dout) as u64 * elem,
                    w.dout as u64 * elem,
                ));
            }
            let wb = if scatter_register_cache { 1 } else { 2 * nnz as u64 / rows.max(1) as u64 };
            blk.writes.push(AccessRange::new(
                y + (i * w.dout) as u64 * elem,
                wb.max(1) * (rows * w.dout) as u64 * elem,
            ));
            plan.blocks.push(blk);
        }
        plans.push(plan);
    }
    plans
}

/// GPU memory footprint (bytes) of the fused formulation: X, W, Y (+fp16
/// staging copies when `tensor_cores`).
#[must_use]
pub fn fused_footprint_bytes(w: &RgmsWorkload, tensor_cores: bool) -> u64 {
    let n = w.nodes() as u64;
    let r = w.relations.len() as u64;
    let edges = w.edges() as u64;
    let base = (n * w.din as u64 + r * (w.din * w.dout) as u64 + n * w.dout as u64) * 4 + edges * 8; // indices + indptr-ish metadata
    if tensor_cores {
        // fp16 copies of X and W alongside the fp32 originals (§4.4.1:
        // "consumes more GPU memory … because of the half-precision/
        // single-precision data type conversion").
        base + (n * w.din as u64 + r * (w.din * w.dout) as u64) * 2
    } else {
        base
    }
}

/// GPU memory footprint (bytes) of the two-stage formulation: fused's
/// buffers plus the materialized `T` (`R × n × d_out`).
#[must_use]
pub fn two_stage_footprint_bytes(w: &RgmsWorkload) -> u64 {
    fused_footprint_bytes(w, false) + (w.relations.len() * w.nodes() * w.dout) as u64 * 4
}

/// Functional reference.
///
/// # Errors
/// Propagates shape mismatches.
pub fn rgms_execute(w: &RgmsWorkload, x: &Dense, weights: &[Dense]) -> Result<Dense, SmatError> {
    rgms_reference(&w.relations, x, weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsetir_smat::gen;

    fn workload(seed: u64, n: usize, rels: usize) -> RgmsWorkload {
        use rand::Rng;
        let mut rng = gen::rng(seed);
        // Heterograph relations have power-law in-degrees and skewed sizes.
        let relations: Vec<Csr> = (0..rels)
            .map(|r| {
                let scale = if r == 0 { 40.0 } else { 6.0 };
                gen::random_csr_with_row_lengths(
                    n,
                    n,
                    move |rr| {
                        let u: f64 = rr.gen_range(0.0..1.0);
                        ((scale / (u + 0.02)) as usize).clamp(0, n / 2)
                    },
                    &mut rng,
                )
            })
            .collect();
        RgmsWorkload { relations, din: 32, dout: 32 }
    }

    #[test]
    fn hyb_beats_naive_and_tc_beats_hyb() {
        // Figure 20's ablation ordering.
        let w = workload(51, 600, 8);
        let spec = GpuSpec::v100();
        let naive = simulate_kernel(&spec, &rgms_naive_plan(&w, "naive"));
        let hyb = simulate_kernel(&spec, &rgms_hyb_plan(&w, 5, false, "hyb"));
        let tc = simulate_kernel(&spec, &rgms_hyb_plan(&w, 5, true, "tc"));
        assert!(hyb.time_ms < naive.time_ms, "hyb {} vs naive {}", hyb.time_ms, naive.time_ms);
        assert!(tc.time_ms < hyb.time_ms, "tc {} vs hyb {}", tc.time_ms, hyb.time_ms);
    }

    #[test]
    fn fused_beats_two_stage_and_uses_less_memory() {
        let w = workload(52, 600, 8);
        let spec = GpuSpec::v100();
        let fused = simulate_kernel(&spec, &rgms_hyb_plan(&w, 5, true, "fused"));
        let (_, two_stage_time) =
            simulate_sequence(&spec, &rgms_two_stage_plans(&w, 0.85, true, "dgl"));
        assert!(
            fused.time_ms < two_stage_time,
            "fused {} vs two-stage {}",
            fused.time_ms,
            two_stage_time
        );
        assert!(fused_footprint_bytes(&w, true) < two_stage_footprint_bytes(&w));
    }

    #[test]
    fn reference_matches_dense() {
        let w = workload(53, 40, 3);
        let mut rng = gen::rng(54);
        let x = gen::random_dense(40, w.din, &mut rng);
        let ws: Vec<Dense> = (0..3).map(|_| gen::random_dense(w.din, w.dout, &mut rng)).collect();
        let y = rgms_execute(&w, &x, &ws).unwrap();
        let mut expect = Dense::zeros(40, w.dout);
        for (rel, wt) in w.relations.iter().zip(&ws) {
            let t = x.matmul(wt).unwrap();
            expect = expect.add(&rel.to_dense().matmul(&t).unwrap()).unwrap();
        }
        assert!(y.approx_eq(&expect, 1e-3));
    }
}
