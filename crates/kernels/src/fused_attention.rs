//! Cross-op fused sparse attention: SDDMM → edge-softmax → SpMM compiled
//! into **one** kernel (see [`sparsetir_core::fused`] for the Stage I
//! programs), plus the three-launch pipeline that serves both as the
//! `SPARSETIR_NO_FUSE` fallback and as the bit-identity oracle.
//!
//! All entry points here take *stacked* multi-head operands (the PR 5
//! batching contract, shared with the batched SDDMM): `Q` is
//! `m × heads·feat` with head `h` owning `feat` consecutive columns,
//! `KT` is `heads·feat × n` with the heads' key transposes stacked
//! row-wise, `V` is `n × heads·vfeat` column-stacked, and the output is
//! `m × heads·vfeat` column-stacked. Per-request stacking/splitting
//! lives in [`crate::op::FusedAttentionOp`].
//!
//! ## Numerical contract
//!
//! The fused kernel and the three-launch pipeline run *identical pass
//! bodies* (built by the same Stage I pass builders) in the same order
//! over the same `(non-zero, head)` points, under the same executor
//! semantics (f64 arithmetic, f32 stores, `exp` evaluated as one
//! `FloatExpr::Exp` in both paths) — so fused output is **bit-identical**
//! to the pipeline, `exp` path included. The pure-Rust
//! [`fused_attention_reference`] accumulates in f64 without intermediate
//! f32 rounding, so kernels are validated against it with a relative
//! epsilon (documented at the call sites) rather than bit equality.
//!
//! Rows with no non-zeros aggregate to zero (no pass body executes for
//! them, so the output keeps its zero binding and the softmax division
//! is never evaluated there); for non-empty rows the partition sum is
//! ≥ 1 by max-shifting, so the folded `P/Sum` coefficient is safe.

use sparsetir_core::prelude::*;
use sparsetir_gpusim::prelude::*;
use sparsetir_ir::prelude::*;
use sparsetir_smat::prelude::*;
use std::collections::HashMap;

use crate::attention::batched_csr_spmm_plan;
use crate::sddmm::{sddmm_plan, SddmmParams};

type KernelResult<T> = Result<T, Box<dyn std::error::Error>>;

/// Lower the whole attention pipeline to one `PrimFunc`: four passes
/// (score / rowmax / expsum / agg), each `sparse_fuse`d on `(I, J)` so
/// every pass walks the non-zero range with binary-searched row
/// recovery — one compiled kernel, one launch.
///
/// # Errors
/// Propagates lowering/scheduling errors.
pub fn fused_attention_ir(
    a: &Csr,
    heads: usize,
    feat: usize,
    vfeat: usize,
) -> KernelResult<PrimFunc> {
    let mut program = fused_attention_program(a.rows(), a.cols(), a.nnz(), heads, feat, vfeat);
    for pass in ["score", "rowmax", "expsum", "agg"] {
        sparse_fuse(&mut program, pass, &["I", "J"])?;
    }
    Ok(lower(&program)?)
}

/// Pipeline launch 1 of 3: the score SDDMM alone (same pass body as the
/// fused kernel's first pass).
///
/// # Errors
/// Propagates lowering/scheduling errors.
pub fn attention_score_ir(a: &Csr, heads: usize, feat: usize) -> KernelResult<PrimFunc> {
    let mut program = attention_score_program(a.rows(), a.cols(), a.nnz(), heads, feat);
    sparse_fuse(&mut program, "score", &["I", "J"])?;
    Ok(lower(&program)?)
}

/// Pipeline launch 2 of 3: edge-softmax (rowmax + expsum passes) over
/// per-non-zero scores.
///
/// # Errors
/// Propagates lowering/scheduling errors.
pub fn edge_softmax_ir(a: &Csr, heads: usize) -> KernelResult<PrimFunc> {
    let mut program = edge_softmax_program(a.rows(), a.cols(), a.nnz(), heads);
    sparse_fuse(&mut program, "rowmax", &["I", "J"])?;
    sparse_fuse(&mut program, "expsum", &["I", "J"])?;
    Ok(lower(&program)?)
}

/// Pipeline launch 3 of 3: the normalized aggregation AXPY.
///
/// # Errors
/// Propagates lowering/scheduling errors.
pub fn attention_aggregate_ir(a: &Csr, heads: usize, vfeat: usize) -> KernelResult<PrimFunc> {
    let mut program = attention_aggregate_program(a.rows(), a.cols(), a.nnz(), heads, vfeat);
    sparse_fuse(&mut program, "agg", &["I", "J"])?;
    Ok(lower(&program)?)
}

fn check_shapes(a: &Csr, q: &Dense, kt: &Dense, v: &Dense, heads: usize) -> KernelResult<()> {
    if heads == 0 {
        return Err("fused attention: zero heads".into());
    }
    if !q.cols().is_multiple_of(heads) || !v.cols().is_multiple_of(heads) {
        return Err(format!(
            "fused attention: stacked widths q={} v={} not divisible by heads={heads}",
            q.cols(),
            v.cols()
        )
        .into());
    }
    if q.rows() != a.rows()
        || kt.rows() != q.cols()
        || kt.cols() != a.cols()
        || v.rows() != a.cols()
    {
        return Err(format!(
            "fused attention: operand shapes q {}x{}, kt {}x{}, v {}x{} vs adjacency {}x{}",
            q.rows(),
            q.cols(),
            kt.rows(),
            kt.cols(),
            v.rows(),
            v.cols(),
            a.rows(),
            a.cols()
        )
        .into());
    }
    Ok(())
}

/// Run stacked multi-head attention as **one** fused kernel launch.
///
/// # Errors
/// Returns an error on operand-shape mismatches and propagates
/// lowering/execution errors.
pub fn fused_attention_launch(
    rt: &Runtime,
    a: &Csr,
    q: &Dense,
    kt: &Dense,
    v: &Dense,
    heads: usize,
) -> KernelResult<Dense> {
    check_shapes(a, q, kt, v, heads)?;
    let (feat, vfeat) = (q.cols() / heads, v.cols() / heads);
    let f = fused_attention_ir(a, heads, feat, vfeat)?;
    let mut bindings = Bindings::new();
    bind_csr(&mut bindings, "A", "J", a);
    bind_dense(&mut bindings, "Q", q);
    bind_dense(&mut bindings, "KT", kt);
    bind_dense(&mut bindings, "V", v);
    bind_zeros(&mut bindings, "S", a.nnz() * heads);
    bind_zeros(&mut bindings, "M", a.rows() * heads);
    bind_zeros(&mut bindings, "P", a.nnz() * heads);
    bind_zeros(&mut bindings, "Sum", a.rows() * heads);
    bind_zeros(&mut bindings, "Out", a.rows() * heads * vfeat);
    rt.compile(&f)?.run(&HashMap::new(), &mut bindings)?;
    Ok(read_dense(&bindings, "Out", a.rows(), heads * vfeat))
}

/// Run the same stacked multi-head attention as the sequential
/// three-launch pipeline (score SDDMM, edge-softmax, aggregation) —
/// the `SPARSETIR_NO_FUSE` fallback and the fused kernel's bit-identity
/// oracle.
///
/// # Errors
/// Returns an error on operand-shape mismatches and propagates
/// lowering/execution errors.
pub fn attention_pipeline_launch(
    rt: &Runtime,
    a: &Csr,
    q: &Dense,
    kt: &Dense,
    v: &Dense,
    heads: usize,
) -> KernelResult<Dense> {
    check_shapes(a, q, kt, v, heads)?;
    let (feat, vfeat) = (q.cols() / heads, v.cols() / heads);

    // Launch 1: scores into S (nnz × heads, head-interleaved).
    let score = attention_score_ir(a, heads, feat)?;
    let mut b1 = Bindings::new();
    bind_csr(&mut b1, "A", "J", a);
    bind_dense(&mut b1, "Q", q);
    bind_dense(&mut b1, "KT", kt);
    bind_zeros(&mut b1, "S", a.nnz() * heads);
    rt.compile(&score)?.run(&HashMap::new(), &mut b1)?;
    let s = b1["S"].as_f32().to_vec();

    // Launch 2: edge-softmax — P = exp(S − rowmax), Sum = Σ P per row.
    let softmax = edge_softmax_ir(a, heads)?;
    let mut b2 = Bindings::new();
    bind_csr(&mut b2, "A", "J", a);
    b2.insert("S".to_string(), TensorData::from(s));
    bind_zeros(&mut b2, "M", a.rows() * heads);
    bind_zeros(&mut b2, "P", a.nnz() * heads);
    bind_zeros(&mut b2, "Sum", a.rows() * heads);
    rt.compile(&softmax)?.run(&HashMap::new(), &mut b2)?;
    let p = b2["P"].as_f32().to_vec();
    let sum = b2["Sum"].as_f32().to_vec();

    // Launch 3: Out += (P / Sum) · V.
    let agg = attention_aggregate_ir(a, heads, vfeat)?;
    let mut b3 = Bindings::new();
    bind_csr(&mut b3, "A", "J", a);
    bind_dense(&mut b3, "V", v);
    b3.insert("P".to_string(), TensorData::from(p));
    b3.insert("Sum".to_string(), TensorData::from(sum));
    bind_zeros(&mut b3, "Out", a.rows() * heads * vfeat);
    rt.compile(&agg)?.run(&HashMap::new(), &mut b3)?;
    Ok(read_dense(&b3, "Out", a.rows(), heads * vfeat))
}

/// Serve stacked multi-head attention through `rt`, routing on the
/// runtime's fusion flag: fused single-kernel launch when fusion is on,
/// the three-launch pipeline when `SPARSETIR_NO_FUSE` turned it off.
/// Both paths produce bit-identical outputs (see the module docs).
///
/// # Errors
/// Returns an error on operand-shape mismatches and propagates
/// lowering/execution errors.
pub fn fused_attention_execute_on(
    rt: &Runtime,
    a: &Csr,
    q: &Dense,
    kt: &Dense,
    v: &Dense,
    heads: usize,
) -> KernelResult<Dense> {
    if rt.fusion() {
        fused_attention_launch(rt, a, q, kt, v, heads)
    } else {
        attention_pipeline_launch(rt, a, q, kt, v, heads)
    }
}

/// Serve stacked multi-head attention with every dense operand bound as
/// a segmented view over per-head rider storage — the zero-copy
/// counterpart of [`fused_attention_execute_on`]. Head `h` contributes
/// `qs[h]` (`rows × k`) as columns `[h·k, (h+1)·k)` of the logical `Q`,
/// `kts[h]` (`k × cols`) as the `h`-th row segment of the logical `KT`,
/// `vs[h]` (`cols × vfeat`) as columns of the logical `V`, and the
/// kernel writes head `h`'s aggregation directly into `outs[h]`
/// (`rows × vfeat`, zero-filled). The softmax intermediates `S`/`M`/`P`/
/// `Sum` come from the runtime's [`BufferPool`] instead of fresh
/// allocations, and on the `SPARSETIR_NO_FUSE` pipeline route they move
/// between launches without copies. Outputs are bit-identical to the
/// stacked-operand entry points: views change only address resolution,
/// never pass order.
///
/// # Errors
/// Returns an error on operand-shape mismatches (all slices must be the
/// same non-zero length with uniform `(k, vfeat)`) and propagates
/// lowering/execution errors.
pub fn fused_attention_views_on(
    rt: &Runtime,
    a: &Csr,
    qs: &[&Dense],
    kts: &[&Dense],
    vs: &[&Dense],
    outs: &mut [Dense],
) -> KernelResult<()> {
    let heads = qs.len();
    if heads == 0 {
        return Err("fused attention: zero heads".into());
    }
    let (k, vfeat) = (qs[0].cols(), vs[0].cols());
    let pool = rt.pool().clone();
    let mut b = Bindings::new();
    bind_csr(&mut b, "A", "J", a);
    b.insert("S".to_string(), TensorData::from(pool.acquire_f32(a.nnz() * heads)));
    b.insert("M".to_string(), TensorData::from(pool.acquire_f32(a.rows() * heads)));
    b.insert("P".to_string(), TensorData::from(pool.acquire_f32(a.nnz() * heads)));
    b.insert("Sum".to_string(), TensorData::from(pool.acquire_f32(a.rows() * heads)));
    let q_segs: Vec<(&[f32], usize)> = qs.iter().map(|q| (q.data(), q.cols())).collect();
    let kt_segs: Vec<&[f32]> = kts.iter().map(|t| t.data()).collect();
    let v_segs: Vec<(&[f32], usize)> = vs.iter().map(|v| (v.data(), v.cols())).collect();
    let scalars = HashMap::new();
    let result = (|| -> KernelResult<()> {
        if rt.fusion() {
            // One fused launch: Q/KT/V/Out as views, scratch from the pool.
            let f = fused_attention_ir(a, heads, k, vfeat)?;
            let kernel = rt.compile(&f)?;
            let mut views = ViewBindings::from_tensors(&mut b);
            views.bind_cols("Q", ColsView::read(a.rows(), &q_segs)?);
            views.bind_rows("KT", RowsView::read(k * a.cols(), &kt_segs)?);
            views.bind_cols("V", ColsView::read(a.cols(), &v_segs)?);
            let out_segs: Vec<(&mut [f32], usize)> = outs
                .iter_mut()
                .map(|o| {
                    let w = o.cols();
                    (o.data_mut(), w)
                })
                .collect();
            views.bind_cols("Out", ColsView::write(a.rows(), out_segs)?);
            kernel.run_views(&scalars, &mut views)?;
            return Ok(());
        }
        // Pipeline route: three launches sharing one binding map, so the
        // intermediates (`S`, then `P`/`Sum`) stay in place between
        // launches instead of round-tripping through fresh copies.
        let score = rt.compile(&attention_score_ir(a, heads, k)?)?;
        {
            let mut views = ViewBindings::from_tensors(&mut b);
            views.bind_cols("Q", ColsView::read(a.rows(), &q_segs)?);
            views.bind_rows("KT", RowsView::read(k * a.cols(), &kt_segs)?);
            score.run_views(&scalars, &mut views)?;
        }
        let softmax = rt.compile(&edge_softmax_ir(a, heads)?)?;
        softmax.run_views(&scalars, &mut ViewBindings::from_tensors(&mut b))?;
        let agg = rt.compile(&attention_aggregate_ir(a, heads, vfeat)?)?;
        {
            let mut views = ViewBindings::from_tensors(&mut b);
            views.bind_cols("V", ColsView::read(a.cols(), &v_segs)?);
            let out_segs: Vec<(&mut [f32], usize)> = outs
                .iter_mut()
                .map(|o| {
                    let w = o.cols();
                    (o.data_mut(), w)
                })
                .collect();
            views.bind_cols("Out", ColsView::write(a.rows(), out_segs)?);
            agg.run_views(&scalars, &mut views)?;
        }
        Ok(())
    })();
    for name in ["S", "M", "P", "Sum"] {
        if let Some(TensorData::F32(v)) = b.remove(name) {
            pool.release_f32(v);
        }
    }
    result
}

/// Pure-Rust reference: per-row masked softmax attention with f64
/// accumulation throughout (no intermediate f32 rounding), for
/// relative-epsilon validation of both kernel paths. Empty rows produce
/// zero output rows.
#[must_use]
pub fn fused_attention_reference(a: &Csr, q: &Dense, kt: &Dense, v: &Dense, heads: usize) -> Dense {
    let (feat, vfeat) = (q.cols() / heads, v.cols() / heads);
    let mut out = Dense::zeros(a.rows(), heads * vfeat);
    for i in 0..a.rows() {
        let (lo, hi) = (a.indptr()[i], a.indptr()[i + 1]);
        if lo == hi {
            continue;
        }
        for h in 0..heads {
            // Scores for this row's segment.
            let mut scores = Vec::with_capacity(hi - lo);
            for e in lo..hi {
                let j = a.indices()[e] as usize;
                let mut dot = 0.0f64;
                for k in 0..feat {
                    dot += f64::from(q.get(i, h * feat + k)) * f64::from(kt.get(h * feat + k, j));
                }
                scores.push(f64::from(a.values()[e]) * dot);
            }
            let max = scores.iter().copied().fold(f64::MIN, f64::max);
            let exps: Vec<f64> = scores.iter().map(|s| (s - max).exp()).collect();
            let denom: f64 = exps.iter().sum();
            for c in 0..vfeat {
                let mut acc = 0.0f64;
                for (t, e) in (lo..hi).enumerate() {
                    let j = a.indices()[e] as usize;
                    acc += exps[t] / denom * f64::from(v.get(j, h * vfeat + c));
                }
                out.set(i, h * vfeat + c, acc as f32);
            }
        }
    }
    out
}

/// Simulator face of the fused op: the cost model prices the launch as
/// its two flop-dominant phases — the score SDDMM and the aggregation
/// SpMM (the softmax passes ride the same non-zero walk and are
/// bandwidth-negligible next to them).
#[must_use]
pub fn fused_attention_plans(
    a: &Csr,
    heads: usize,
    feat: usize,
    vfeat: usize,
    sddmm: SddmmParams,
) -> Vec<KernelPlan> {
    vec![
        sddmm_plan(a, heads * feat, sddmm, "fused_attn_score"),
        batched_csr_spmm_plan(a, vfeat, heads, "fused_attn_agg"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsetir_smat::gen;

    fn operands(
        a: &Csr,
        heads: usize,
        feat: usize,
        vfeat: usize,
        seed: u64,
    ) -> (Dense, Dense, Dense) {
        let mut rng = gen::rng(seed);
        let q = gen::random_dense(a.rows(), heads * feat, &mut rng);
        let kt = gen::random_dense(heads * feat, a.cols(), &mut rng);
        let v = gen::random_dense(a.cols(), heads * vfeat, &mut rng);
        (q, kt, v)
    }

    fn bit_eq(a: &Dense, b: &Dense) -> bool {
        a.rows() == b.rows()
            && a.cols() == b.cols()
            && a.data().iter().zip(b.data()).all(|(x, y)| x.to_bits() == y.to_bits())
    }

    #[test]
    fn fused_matches_reference_with_relative_epsilon() {
        let mut rng = gen::rng(31);
        let a = gen::random_csr(12, 10, 0.3, &mut rng);
        let (q, kt, v) = operands(&a, 2, 4, 3, 32);
        let rt = Runtime::new();
        let got = fused_attention_launch(&rt, &a, &q, &kt, &v, 2).unwrap();
        let want = fused_attention_reference(&a, &q, &kt, &v, 2);
        assert!(got.approx_eq(&want, 1e-4), "max |Δ| = {}", got.max_abs_diff(&want));
    }

    #[test]
    fn fused_is_bit_identical_to_three_launch_pipeline() {
        let mut rng = gen::rng(33);
        // Includes empty rows: row lengths 0..=4.
        let a = gen::random_csr_with_row_lengths(
            20,
            16,
            |r| {
                use rand::Rng;
                r.gen_range(0..5)
            },
            &mut rng,
        );
        assert!((0..a.rows()).any(|r| a.row_nnz(r) == 0), "want an empty row in the fixture");
        let (q, kt, v) = operands(&a, 3, 4, 5, 34);
        let rt = Runtime::new();
        let fused = fused_attention_launch(&rt, &a, &q, &kt, &v, 3).unwrap();
        let pipeline = attention_pipeline_launch(&rt, &a, &q, &kt, &v, 3).unwrap();
        assert!(bit_eq(&fused, &pipeline));
        // Empty rows aggregate to zero.
        for r in 0..a.rows() {
            if a.row_nnz(r) == 0 {
                assert!(fused.row(r).iter().all(|&x| x == 0.0));
            }
        }
    }

    /// The fused kernel's score pass must still hit `GatherScaleAccumulate`
    /// and its aggregation pass `AxpyLanes` — cross-op fusion composes with
    /// the microkernel layer instead of defeating it.
    #[test]
    fn fused_kernel_hits_the_microkernels() {
        let mut rng = gen::rng(35);
        let a = gen::random_csr(10, 10, 0.3, &mut rng);
        let f = fused_attention_ir(&a, 2, 4, 4).unwrap();
        let rt = Runtime::new();
        let kernel = rt.compile(&f).unwrap();
        let kinds = kernel.fused_kinds();
        assert!(
            kinds.contains(&"GatherScaleAccumulate"),
            "score pass should gather-scale-accumulate: {kinds:?}"
        );
        assert!(
            kinds.contains(&"AxpyLanes"),
            "aggregation pass should axpy over value lanes: {kinds:?}"
        );
    }

    /// `SPARSETIR_NO_FUSE` routing: a fusion-off runtime compiles the three
    /// pipeline kernels, a fusion-on runtime compiles the one fused kernel,
    /// and re-running either adds no compilations (no stale-kernel serving
    /// across the toggle — the fusion flag is part of the cache key).
    #[test]
    fn kill_switch_recompiles_instead_of_serving_stale_kernels() {
        let mut rng = gen::rng(36);
        let a = gen::random_csr(10, 10, 0.25, &mut rng);
        let (q, kt, v) = operands(&a, 2, 3, 3, 37);

        let fused_rt = Runtime::with_fusion(true);
        let fused = fused_attention_execute_on(&fused_rt, &a, &q, &kt, &v, 2).unwrap();
        assert_eq!(fused_rt.cached(), 1, "fused path is one kernel");

        let pipeline_rt = Runtime::with_fusion(false);
        let pipeline = fused_attention_execute_on(&pipeline_rt, &a, &q, &kt, &v, 2).unwrap();
        assert_eq!(pipeline_rt.cached(), 3, "pipeline path is three kernels");

        assert!(bit_eq(&fused, &pipeline));

        // Serve again on both: compile-once/run-many, no recompiles.
        let (c1, c2) = (fused_rt.compilations(), pipeline_rt.compilations());
        let _ = fused_attention_execute_on(&fused_rt, &a, &q, &kt, &v, 2).unwrap();
        let _ = fused_attention_execute_on(&pipeline_rt, &a, &q, &kt, &v, 2).unwrap();
        assert_eq!(fused_rt.compilations(), c1);
        assert_eq!(pipeline_rt.compilations(), c2);
    }

    #[test]
    fn single_head_unit_vfeat_works() {
        let mut rng = gen::rng(38);
        let a = gen::random_csr(8, 8, 0.4, &mut rng);
        let (q, kt, v) = operands(&a, 1, 4, 1, 39);
        let rt = Runtime::new();
        let got = fused_attention_launch(&rt, &a, &q, &kt, &v, 1).unwrap();
        let want = fused_attention_reference(&a, &q, &kt, &v, 1);
        assert!(got.approx_eq(&want, 1e-4));
    }

    #[test]
    fn shape_mismatches_are_rejected() {
        let mut rng = gen::rng(40);
        let a = gen::random_csr(8, 8, 0.4, &mut rng);
        let (q, kt, v) = operands(&a, 2, 3, 3, 41);
        let rt = Runtime::new();
        assert!(fused_attention_launch(&rt, &a, &q, &kt, &v, 0).is_err());
        let bad_q = gen::random_dense(7, 6, &mut gen::rng(42));
        assert!(fused_attention_launch(&rt, &a, &bad_q, &kt, &v, 2).is_err());
        let bad_v = gen::random_dense(8, 7, &mut gen::rng(43));
        assert!(fused_attention_launch(&rt, &a, &q, &kt, &bad_v, 2).is_err());
    }
}
