//! Pruned-transformer SpMM kernels (§4.3.2): `Y = W · X` with sparse
//! weights. Structured pruning uses BSR and the zero-row-skipping DBSR;
//! unstructured pruning uses SR-BCRS(t, g) whose `t × 1` tiles bound
//! intra-tile fragmentation by `1/t` (vs `1/b²` for BSR). All tensor-core
//! variants run in fp16 (footnote 8 of the paper).

use crate::common::F16;
use sparsetir_gpusim::prelude::*;
use sparsetir_smat::prelude::*;

/// Tensor-core efficiency of SparseTIR's pruned-weight kernels.
pub const PRUNE_TC_EFFICIENCY: f64 = 0.85;

/// Plan for BSR weight SpMM on tensor cores. One block per block-row;
/// block rows with no blocks still launch a (cheap) zeroing block — the
/// waste DBSR removes.
#[must_use]
pub fn bsr_weight_spmm_plan(bsr: &Bsr, feat: usize, efficiency: f64, name: &str) -> KernelPlan {
    let b = bsr.block();
    let elem = F16;
    let mut addr = AddressSpace::new();
    let vals = addr.alloc("vals", bsr.stored() as u64 * elem);
    let xb = addr.alloc("X", (bsr.cols() * feat) as u64 * elem);
    let yb = addr.alloc("Y", (bsr.rows() * feat) as u64 * elem);
    let mut plan = KernelPlan::new(name);
    plan.threads_per_block = 128;
    let bb = (b * b) as u64;
    for br in 0..bsr.block_rows() {
        let lo = bsr.indptr()[br];
        let hi = bsr.indptr()[br + 1];
        let nblk = hi - lo;
        let mut w = BlockWork::default();
        if nblk > 0 {
            w.tensor_flops = 2.0 * (nblk * b * b * feat) as f64 / efficiency;
            w.reads.push(AccessRange::new(vals + lo as u64 * bb * elem, nblk as u64 * bb * elem));
            for &bc in &bsr.indices()[lo..hi] {
                w.reads.push(AccessRange::new(
                    xb + (bc as usize * b * feat) as u64 * elem,
                    (b * feat) as u64 * elem,
                ));
            }
            w.shared_bytes = (nblk * b * b + b * feat) as f64 * elem as f64;
        }
        // Output rows written (zeroed) regardless of emptiness.
        w.writes
            .push(AccessRange::new(yb + (br * b * feat) as u64 * elem, (b * feat) as u64 * elem));
        plan.blocks.push(w);
    }
    plan
}

/// Plan for DBSR weight SpMM: only non-empty block rows launch compute
/// blocks; the zero rows are covered by a single cheap memset pass fused
/// into the same launch.
#[must_use]
pub fn dbsr_weight_spmm_plan(
    dbsr: &Dbsr,
    rows: usize,
    feat: usize,
    efficiency: f64,
    name: &str,
) -> KernelPlan {
    let b = dbsr.block();
    let elem = F16;
    let mut addr = AddressSpace::new();
    let vals = addr.alloc("vals", (dbsr.nblocks() * b * b) as u64 * elem);
    let xb = addr.alloc("X", (dbsr.cols() * feat) as u64 * elem);
    let yb = addr.alloc("Y", (rows * feat) as u64 * elem);
    let mut plan = KernelPlan::new(name);
    plan.threads_per_block = 128;
    let bb = (b * b) as u64;
    // Memset blocks covering the whole output (bandwidth-bound, spread
    // over the grid so no single block serializes).
    let zero_chunk = 64 * 1024u64;
    let total = (rows * feat) as u64 * elem;
    let mut off = 0u64;
    while off < total {
        let len = zero_chunk.min(total - off);
        let mut zero = BlockWork::default();
        zero.writes.push(AccessRange::new(yb + off, len));
        plan.blocks.push(zero);
        off += len;
    }
    for (ci, &br) in dbsr.block_row_ids().iter().enumerate() {
        let lo = dbsr.indptr()[ci];
        let hi = dbsr.indptr()[ci + 1];
        let nblk = hi - lo;
        let mut w = BlockWork {
            tensor_flops: 2.0 * (nblk * b * b * feat) as f64 / efficiency,
            ..Default::default()
        };
        w.reads.push(AccessRange::new(vals + lo as u64 * bb * elem, nblk as u64 * bb * elem));
        for &bc in &dbsr.indices()[lo..hi] {
            w.reads.push(AccessRange::new(
                xb + (bc as usize * b * feat) as u64 * elem,
                (b * feat) as u64 * elem,
            ));
        }
        w.writes.push(AccessRange::new(
            yb + (br as usize * b * feat) as u64 * elem,
            (b * feat) as u64 * elem,
        ));
        w.shared_bytes = (nblk * b * b + b * feat) as f64 * elem as f64;
        plan.blocks.push(w);
    }
    plan
}

/// Plan for SR-BCRS(t, g) weight SpMM on tensor cores (Figure 18's
/// schedule): per tile-row, groups of `g` tiles are gathered to registers
/// and fed to `m8n32k16`-shaped MMAs.
#[must_use]
pub fn srbcrs_weight_spmm_plan(s: &SrBcrs, feat: usize, efficiency: f64, name: &str) -> KernelPlan {
    let elem = F16;
    let t = s.t();
    let g = s.g();
    let mut addr = AddressSpace::new();
    let vals = addr.alloc("vals", s.stored() as u64 * elem);
    let cols = addr.alloc("cols", s.stored_tiles() as u64 * 4);
    let xb = addr.alloc("X", (s.cols() * feat) as u64 * elem);
    let yb = addr.alloc("Y", (s.rows() * feat) as u64 * elem);
    let mut plan = KernelPlan::new(name);
    plan.threads_per_block = 128;
    for tr in 0..s.tile_rows() {
        let glo = s.group_indptr()[tr];
        let ghi = s.group_indptr()[tr + 1];
        let mut w = BlockWork::default();
        let ntiles = (ghi - glo) * g;
        // Each group of g tiles contributes a t × feat × g MMA.
        w.tensor_flops = 2.0 * (ntiles * t * feat) as f64 / efficiency;
        w.reads
            .push(AccessRange::new(vals + (glo * g * t) as u64 * elem, (ntiles * t) as u64 * elem));
        w.reads.push(AccessRange::new(cols + (glo * g) as u64 * 4, ntiles as u64 * 4));
        for tile in glo * g..ghi * g {
            let c = s.tile_cols()[tile];
            w.reads
                .push(AccessRange::new(xb + (c as usize * feat) as u64 * elem, feat as u64 * elem));
        }
        w.writes
            .push(AccessRange::new(yb + (tr * t * feat) as u64 * elem, (t * feat) as u64 * elem));
        w.shared_bytes = (ntiles * t + g * feat) as f64 * elem as f64;
        plan.blocks.push(w);
    }
    plan
}

/// Functional reference: `Y = W · X` through the format's own SpMM.
///
/// # Errors
/// Propagates shape mismatches.
pub fn weight_spmm_reference(w: &Csr, x: &Dense) -> Result<Dense, SmatError> {
    w.spmm(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsetir_smat::gen;

    #[test]
    fn dbsr_beats_bsr_with_many_zero_rows() {
        // Fig. 17's effect: block-pruned weights have many all-zero rows.
        let mut rng = gen::rng(41);
        let w = gen::random_block_sparse(1024, 1024, 32, 0.05, 0.5, &mut rng);
        let bsr = Bsr::from_csr(&w, 32).unwrap();
        assert!(bsr.zero_block_rows() > bsr.block_rows() / 4);
        let dbsr = Dbsr::from_bsr(&bsr);
        let spec = GpuSpec::v100();
        let rb =
            simulate_kernel(&spec, &bsr_weight_spmm_plan(&bsr, 512, PRUNE_TC_EFFICIENCY, "bsr"));
        let rd = simulate_kernel(
            &spec,
            &dbsr_weight_spmm_plan(&dbsr, 1024, 512, PRUNE_TC_EFFICIENCY, "dbsr"),
        );
        assert!(rd.time_ms < rb.time_ms, "dbsr {} vs bsr {}", rd.time_ms, rb.time_ms);
    }

    #[test]
    fn srbcrs_beats_bsr_on_unstructured_weights() {
        // Fig. 19's effect: scattered non-zeros fragment 32×32 blocks but
        // not 8×1 tiles.
        let mut rng = gen::rng(43);
        let w = gen::random_csr(1024, 1024, 0.01, &mut rng); // unstructured
        let bsr = Bsr::from_csr(&w, 32).unwrap();
        let s = SrBcrs::from_csr(&w, 8, 32).unwrap();
        assert!(s.stored() < bsr.stored() / 2, "{} vs {}", s.stored(), bsr.stored());
        let spec = GpuSpec::v100();
        let rb =
            simulate_kernel(&spec, &bsr_weight_spmm_plan(&bsr, 512, PRUNE_TC_EFFICIENCY, "bsr"));
        let rs = simulate_kernel(
            &spec,
            &srbcrs_weight_spmm_plan(&s, 512, PRUNE_TC_EFFICIENCY, "srbcrs"),
        );
        assert!(rs.time_ms < rb.time_ms, "srbcrs {} vs bsr {}", rs.time_ms, rb.time_ms);
    }

    #[test]
    fn plans_conserve_tensor_flops() {
        let mut rng = gen::rng(44);
        let w = gen::random_block_sparse(256, 256, 32, 0.1, 0.0, &mut rng);
        let bsr = Bsr::from_csr(&w, 32).unwrap();
        let p = bsr_weight_spmm_plan(&bsr, 128, 1.0, "b");
        let expect = 2.0 * bsr.stored() as f64 * 128.0;
        let got: f64 = p.blocks.iter().map(|b| b.tensor_flops).sum();
        assert!((got - expect).abs() / expect < 1e-9);
    }
}
