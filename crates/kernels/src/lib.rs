//! # sparsetir-kernels
//!
//! SparseTIR-generated operators for every workload in the paper's
//! evaluation: SpMM (§4.2.1), SDDMM (§4.2.2), batched sparse-attention
//! operators (§4.3.1), pruned-weight SpMM (§4.3.2), RGMS (§4.4.1) and
//! sparse convolution (§4.4.2).
//!
//! Each kernel exposes two faces:
//! * an **IR path** — Stage I program → lowering → schedules → interpretable
//!   Stage III function (functional validation + CUDA emission), and
//! * a **plan path** — a [`sparsetir_gpusim::plan::KernelPlan`] whose block
//!   decomposition mirrors the same schedule parameters, priced by the GPU
//!   simulator (the substitution for the paper's hardware runs).
//!
//! Both faces are unified behind the generic [`op::SparseOp`] layer: one
//! descriptor per operator with a uniform `plans()` face, a zero-copy
//! batching contract (`can_batch`/`assemble`/`launch`/`outputs`) and a
//! reference-executor hook, so the autotuner and the serving engine are
//! op-agnostic.

#![warn(missing_docs)]

pub mod attention;
pub mod common;
pub mod fused_attention;
pub mod fused_sage;
pub mod fusedmm;
pub mod op;
pub mod prune;
pub mod rgms;
pub mod sddmm;
pub mod sparse_conv;
pub mod spmm;

/// Common imports.
pub mod prelude {
    pub use crate::attention::{
        batched_bsr_sddmm_plan, batched_bsr_spmm_plan, batched_csr_sddmm_plan,
        batched_csr_spmm_plan, batched_spmm_reference, SPARSETIR_BSR_EFFICIENCY,
    };
    pub use crate::common::{gemm_plan, SpmmCost, SpmmLayout, F16, F32};
    pub use crate::fused_attention::{
        attention_aggregate_ir, attention_pipeline_launch, attention_score_ir, edge_softmax_ir,
        fused_attention_execute_on, fused_attention_ir, fused_attention_launch,
        fused_attention_plans, fused_attention_reference, fused_attention_views_on,
    };
    pub use crate::fused_sage::{
        fused_sage_execute_on, fused_sage_ir, fused_sage_launch, fused_sage_pipeline_launch,
        fused_sage_reference, inverse_degrees,
    };
    pub use crate::fusedmm::{fusedmm_execute, fusedmm_plan, fusedmm_reference, unfused_plans};
    pub use crate::op::{
        copy_batch_default, AttentionOp, AttentionOpConfig, AttnHead, FusedAttentionConfig,
        FusedAttentionOp, FusedSageConfig, FusedSageOp, OpConfig, OpError, RgmsOp, RgmsOperands,
        SddmmOp, SddmmStacked, SparseOp, SpmmOp,
    };
    pub use crate::prune::{
        bsr_weight_spmm_plan, dbsr_weight_spmm_plan, srbcrs_weight_spmm_plan,
        weight_spmm_reference, PRUNE_TC_EFFICIENCY,
    };
    pub use crate::rgms::{
        fused_footprint_bytes, rgms_execute, rgms_hyb_plan, rgms_naive_plan, rgms_two_stage_plans,
        two_stage_footprint_bytes, RgmsWorkload, RGMS_TC_EFFICIENCY,
    };
    pub use crate::sddmm::{
        sddmm_batched_execute, sddmm_batched_execute_on, sddmm_execute, sddmm_execute_on,
        sddmm_execute_views_on, sddmm_ir, sddmm_param_candidates, sddmm_plan,
        sddmm_row_parallel_plan, tuned_sddmm_time, SddmmParams,
    };
    pub use crate::sparse_conv::{
        conv_reference, sparsetir_conv_plan, torchsparse_plans, ConvMaps,
    };
    pub use crate::spmm::{
        csr_spmm_execute, csr_spmm_interpret, csr_spmm_ir, csr_spmm_ir_with, csr_spmm_plan,
        hyb_spmm_plans, hyb_spmm_time, prepare_spmm, prepare_spmm_structure, spmm_batched_execute,
        spmm_batched_execute_on, spmm_execute_views_on, tuned_spmm_execute, tuned_spmm_execute_on,
        tuned_spmm_plans, tuned_spmm_time, CsrSpmmParams, PreparedSpmm, SpmmConfig,
    };
    pub use sparsetir_core::prelude::{bytes_copied_on_thread, count_bytes_copied};
}
