//! The generic sparse-operator layer: every kernel in this crate —
//! SpMM, SDDMM, multi-head attention, RGMS — presents one uniform face
//! ([`SparseOp`]) so the tuning and serving stacks above it can be
//! op-agnostic. This is the composability thesis applied to our own
//! plumbing: one prepare → schedule → compile → execute path, many
//! operators, instead of each kernel re-implementing the pipeline.
//!
//! A [`SparseOp`] bundles:
//! * an **op descriptor** — kind tag, adjacency type, request shape and a
//!   tunable [`SparseOp::Config`], with a uniform
//!   [`plans`](SparseOp::plans) face for the GPU simulator;
//! * a **batching contract** — [`can_batch`](SparseOp::can_batch) plus
//!   [`assemble`](SparseOp::assemble) / [`launch`](SparseOp::launch) /
//!   [`outputs`](SparseOp::outputs), so a serving engine can fold
//!   requests sharing an adjacency fingerprint into one widened kernel
//!   launch **without copying operands**: the kernel binds each rider's
//!   storage directly through segmented views and writes each result
//!   into its rider's own output buffer. The older copying contract
//!   ([`stack`](SparseOp::stack) /
//!   [`launch_stacked`](SparseOp::launch_stacked) /
//!   [`split`](SparseOp::split)) stays compiled behind the
//!   `SPARSETIR_COPY_BATCH` kill switch as the bit-identity oracle;
//! * a **reference hook** ([`reference`](SparseOp::reference)) for
//!   differential testing of every execution path against the smat
//!   oracles.
//!
//! Two stacking strategies cover all batched ops:
//! * **Column stacking** (SpMM, attention): dense feature operands are
//!   concatenated column-wise into one operand of width `Σ wᵢ`, the
//!   schedule's vector split is widened to span the stacked width, and
//!   the wide output is sliced back per request. Splitting the (spatial)
//!   feature axis differently never changes a output column's reduction
//!   order, so results are bit-identical to unbatched execution.
//! * **Widened multi-head launch** (SDDMM): `n` requests over one
//!   adjacency fold into a single launch of the batched fused kernel
//!   ([`crate::sddmm::batched_sddmm_ir`]) whose head axis sits *inside*
//!   the fused non-zero loop — the per-non-zero coordinate walk
//!   (binary-searched row recovery, index loads) is shared by every
//!   rider, and each `(non-zero, head)` pair keeps exactly its unbatched
//!   feature-reduction order. The interleaved per-non-zero output splits
//!   back per request. This amortizes both the per-launch fixed costs
//!   (program build, lowering, IR fingerprinting, dispatch) and the
//!   shared coordinate walk across the batch.
//!
//! Both strategies execute **zero-copy** by default: instead of
//! memcpy'ing riders into one stacked operand and slicing the wide
//! result back, the kernel's buffer slots bind to ordered segment lists
//! over the riders' own storage (`ColsView`/`RowsView` from
//! `sparsetir-ir`), and outputs land directly in per-rider buffers.
//! Dense rider bytes memcpy'd by the batching layer are tallied on the
//! `bytes_copied` thread counter (`sparsetir-core`), which the view
//! paths leave at zero.

use crate::attention::{batched_bsr_spmm_plan, batched_csr_spmm_plan, SPARSETIR_BSR_EFFICIENCY};
use crate::common::{gemm_plan, F32};
use crate::fused_attention::{
    fused_attention_execute_on, fused_attention_plans, fused_attention_reference,
    fused_attention_views_on,
};
use crate::fused_sage::{fused_sage_execute_on, fused_sage_reference};
use crate::rgms::{rgms_hyb_plan, rgms_naive_plan, RgmsWorkload};
use crate::sddmm::{sddmm_execute_views_on, sddmm_plan, SddmmParams};
use crate::spmm::{spmm_execute_views_on, tuned_spmm_execute_on, tuned_spmm_plans, SpmmConfig};
use sparsetir_core::data::{bind_csr, bind_dense, bind_zeros, count_bytes_copied, Bindings};
use sparsetir_gpusim::prelude::KernelPlan;
use sparsetir_ir::exec::Runtime;
use sparsetir_smat::prelude::*;

/// Error type of the op layer (lowering, compilation and execution
/// failures propagate unchanged from the kernel entry points).
pub type OpError = Box<dyn std::error::Error>;

/// A sparse operator behind the uniform plan/batch/execute face.
///
/// Implementations are zero-sized tag types ([`SpmmOp`], [`SddmmOp`],
/// [`AttentionOp`], [`RgmsOp`]); all state lives in the adjacency,
/// the per-request [`Operands`](SparseOp::Operands) and the tunable
/// [`Config`](SparseOp::Config).
pub trait SparseOp {
    /// The sparse structure requests are served against ([`Csr`] for the
    /// single-matrix ops, [`RgmsWorkload`] for the relational one).
    type Adj;
    /// Dense operands of one request.
    type Operands: Send + 'static;
    /// Per-request result.
    type Output: Send + 'static;
    /// Tunable configuration (format decomposition + schedule knobs).
    type Config: Clone + Send + Sync + PartialEq + std::fmt::Debug + 'static;
    /// A batch of requests folded into one widened launch (the copying
    /// `SPARSETIR_COPY_BATCH` oracle path).
    type Stacked: Send;
    /// The raw result of a widened launch, before [`split`](SparseOp::split).
    type Wide: Send;
    /// Per-rider output buffers of a zero-copy view launch, allocated by
    /// [`assemble`](SparseOp::assemble) and written in place by
    /// [`launch`](SparseOp::launch).
    type Assembled: Send;

    /// Stable kind tag (`"spmm"`, `"sddmm"`, …) — tune-cache key material
    /// and display label.
    fn kind() -> &'static str;

    /// The untuned default configuration.
    fn default_config() -> Self::Config;

    /// Structural fingerprint of the adjacency (cache-key material: a
    /// decision transfers between adjacencies with equal fingerprints).
    fn sparsity(adj: &Self::Adj) -> SparsityFingerprint;

    /// Workload-shape key of one request (feature width, heads, …): the
    /// `extra` component of a tuning key, and what [`plans`](SparseOp::plans)
    /// prices.
    fn shape_of(req: &Self::Operands) -> Vec<usize>;

    /// Shape-validate one request against the adjacency.
    ///
    /// # Errors
    /// A human-readable description of the first mismatch.
    fn validate(adj: &Self::Adj, req: &Self::Operands) -> Result<(), String>;

    /// The uniform simulator face: kernel plans of this op at `shape`
    /// under `config` (the same shape vector [`shape_of`](SparseOp::shape_of)
    /// produces).
    fn plans(
        adj: &Self::Adj,
        shape: &[usize],
        config: &Self::Config,
        name: &str,
    ) -> Vec<KernelPlan>;

    /// Batching contract: true when two validated requests may share one
    /// widened launch. Callers must already have matched the adjacency
    /// fingerprints; this only checks request-shape compatibility.
    fn can_batch(lhs: &Self::Operands, rhs: &Self::Operands) -> bool;

    /// Allocate the per-rider output buffers of one zero-copy view
    /// launch over a batch (length ≥ 2, pairwise
    /// [`can_batch`](SparseOp::can_batch)). No operand bytes move here —
    /// only result storage is created, zero-filled, in the layout
    /// [`outputs`](SparseOp::outputs) hands back per request.
    ///
    /// # Errors
    /// Reports batch-shape violations (the same conditions
    /// [`stack`](SparseOp::stack) rejects).
    fn assemble(adj: &Self::Adj, reqs: &[Self::Operands]) -> Result<Self::Assembled, OpError>;

    /// Run one widened launch through `rt`'s kernel cache with every
    /// dense rider operand bound as a segmented view over the request's
    /// own storage and results written in place into `asm` — the
    /// zero-copy batching primitive.
    ///
    /// # Errors
    /// Propagates lowering/compilation/execution errors.
    fn launch(
        rt: &Runtime,
        adj: &Self::Adj,
        reqs: &[Self::Operands],
        asm: &mut Self::Assembled,
        config: &Self::Config,
    ) -> Result<(), OpError>;

    /// Hand the assembled buffers back per request, preserving order.
    /// `reqs` carries the per-request grouping (head counts) that the
    /// flat assembly does not.
    fn outputs(asm: Self::Assembled, reqs: &[Self::Operands]) -> Vec<Self::Output>;

    /// Fold a batch (length ≥ 2, pairwise [`can_batch`](SparseOp::can_batch))
    /// into one widened launch operand — the copying
    /// `SPARSETIR_COPY_BATCH` oracle path; every rider byte it moves is
    /// tallied on the `bytes_copied` thread counter.
    ///
    /// # Errors
    /// Propagates operand-assembly failures.
    fn stack(adj: &Self::Adj, reqs: &[Self::Operands]) -> Result<Self::Stacked, OpError>;

    /// Run one widened launch over stacked (copied) operands through
    /// `rt`'s kernel cache — the copying oracle counterpart of
    /// [`launch`](SparseOp::launch).
    ///
    /// # Errors
    /// Propagates lowering/compilation/execution errors.
    fn launch_stacked(
        rt: &Runtime,
        adj: &Self::Adj,
        stacked: &Self::Stacked,
        config: &Self::Config,
    ) -> Result<Self::Wide, OpError>;

    /// Split a widened result back per request, preserving order.
    fn split(wide: Self::Wide, reqs: &[Self::Operands]) -> Vec<Self::Output>;

    /// Run a single request without the stacking round-trip (the batch-of-
    /// one fast path — no operand copies).
    ///
    /// # Errors
    /// Propagates lowering/compilation/execution errors.
    fn launch_one(
        rt: &Runtime,
        adj: &Self::Adj,
        req: &Self::Operands,
        config: &Self::Config,
    ) -> Result<Self::Output, OpError>;

    /// Reference executor (the smat semantics oracle) for differential
    /// testing of every batched and unbatched path.
    ///
    /// # Errors
    /// Propagates shape mismatches.
    fn reference(adj: &Self::Adj, req: &Self::Operands) -> Result<Self::Output, OpError>;

    /// Execute a batch of requests as one widened kernel launch (the
    /// serving engine's primitive): validate →
    /// [`assemble`](SparseOp::assemble) → [`launch`](SparseOp::launch) →
    /// [`outputs`](SparseOp::outputs), with a copy-free fast path for
    /// batches of one. Results are bit-identical to executing each
    /// request alone. Batching mode follows [`copy_batch_default`]: the
    /// `SPARSETIR_COPY_BATCH` environment variable reroutes through the
    /// copying stack/split oracle.
    ///
    /// # Errors
    /// Reports the index of the first invalid request or the first
    /// request violating the [`can_batch`](SparseOp::can_batch) contract;
    /// propagates lowering/compilation/execution errors.
    fn execute_batch_on(
        rt: &Runtime,
        adj: &Self::Adj,
        reqs: &[Self::Operands],
        config: &Self::Config,
    ) -> Result<Vec<Self::Output>, OpError> {
        Self::execute_batch_mode_on(rt, adj, reqs, config, copy_batch_default())
    }

    /// [`execute_batch_on`](SparseOp::execute_batch_on) with the batching
    /// mode chosen by the caller instead of the environment: `copy =
    /// false` runs the zero-copy view path, `copy = true` the copying
    /// stack/split oracle. Both produce bit-identical results; the
    /// serving engine threads its own `copy_batch` configuration through
    /// here so differential tests stay free of environment races.
    ///
    /// # Errors
    /// Like [`execute_batch_on`](SparseOp::execute_batch_on).
    fn execute_batch_mode_on(
        rt: &Runtime,
        adj: &Self::Adj,
        reqs: &[Self::Operands],
        config: &Self::Config,
        copy: bool,
    ) -> Result<Vec<Self::Output>, OpError> {
        for (i, req) in reqs.iter().enumerate() {
            Self::validate(adj, req)
                .map_err(|e| format!("batched {} request {i}: {e}", Self::kind()))?;
            if i > 0 && !Self::can_batch(&reqs[0], req) {
                return Err(format!(
                    "batched {} request {i}: cannot share a launch with request 0 \
                     (can_batch contract violated)",
                    Self::kind()
                )
                .into());
            }
        }
        match reqs {
            [] => Ok(Vec::new()),
            [one] => Ok(vec![Self::launch_one(rt, adj, one, config)?]),
            many if copy => {
                let stacked = Self::stack(adj, many)?;
                let wide = Self::launch_stacked(rt, adj, &stacked, config)?;
                Ok(Self::split(wide, many))
            }
            many => {
                let mut asm = Self::assemble(adj, many)?;
                Self::launch(rt, adj, many, &mut asm, config)?;
                Ok(Self::outputs(asm, many))
            }
        }
    }

    /// Execute one request through the op layer.
    ///
    /// # Errors
    /// Like [`execute_batch_on`](SparseOp::execute_batch_on).
    fn execute_on(
        rt: &Runtime,
        adj: &Self::Adj,
        req: &Self::Operands,
        config: &Self::Config,
    ) -> Result<Self::Output, OpError> {
        Self::validate(adj, req).map_err(|e| format!("{} request: {e}", Self::kind()))?;
        Self::launch_one(rt, adj, req, config)
    }
}

/// A tuning decision for *any* [`SparseOp`], as stored in op-agnostic
/// caches ([`TuneCache<OpConfig>`]-shaped maps in the autotuner and the
/// serving engine). The variant always matches the workload kind of the
/// key it is cached under.
///
/// [`TuneCache<OpConfig>`]: SparseOp
#[derive(Debug, Clone, PartialEq)]
pub enum OpConfig {
    /// SpMM format × schedule decision.
    Spmm(SpmmConfig),
    /// SDDMM schedule decision.
    Sddmm(SddmmParams),
    /// Block-sparse attention decision.
    Attention(AttentionOpConfig),
    /// RGMS bucket exponent.
    Rgms(u32),
    /// Cross-op fused attention decision.
    FusedAttention(FusedAttentionConfig),
    /// Cross-op fused GraphSAGE-step decision.
    FusedSage(FusedSageConfig),
}

macro_rules! op_config_conversions {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for OpConfig {
            fn from(c: $ty) -> OpConfig {
                OpConfig::$variant(c)
            }
        }

        impl TryFrom<OpConfig> for $ty {
            type Error = &'static str;

            fn try_from(c: OpConfig) -> Result<$ty, &'static str> {
                match c {
                    OpConfig::$variant(c) => Ok(c),
                    _ => Err(concat!("OpConfig is not the ", stringify!($variant), " variant")),
                }
            }
        }
    };
}

op_config_conversions!(Spmm, SpmmConfig);
op_config_conversions!(Sddmm, SddmmParams);
op_config_conversions!(Attention, AttentionOpConfig);
op_config_conversions!(Rgms, u32);
op_config_conversions!(FusedAttention, FusedAttentionConfig);
op_config_conversions!(FusedSage, FusedSageConfig);

/// Batching-mode default for [`SparseOp::execute_batch_on`] and new
/// serving engines: zero-copy view batching, unless the
/// `SPARSETIR_COPY_BATCH` environment variable is set — the kill switch
/// that keeps the copying stack/split path live as the bit-identity
/// oracle.
#[must_use]
pub fn copy_batch_default() -> bool {
    std::env::var_os("SPARSETIR_COPY_BATCH").is_some()
}

// ---------------------------------------------------------------------------
// Column stacking (the copying oracle, shared by SpMM and attention)
// ---------------------------------------------------------------------------

/// Concatenate dense operands column-wise into one `(rows × Σ wᵢ)`
/// operand; request `i` owns columns `[offsetᵢ, offsetᵢ + wᵢ)`.
fn stack_columns<'a>(rows: usize, xs: impl Iterator<Item = &'a Dense>) -> Dense {
    let xs: Vec<&Dense> = xs.collect();
    let total: usize = xs.iter().map(|x| x.cols()).sum();
    count_bytes_copied((rows * total) as u64 * 4);
    let mut stacked = Dense::zeros(rows, total);
    let mut offset = 0;
    for x in xs {
        let w = x.cols();
        if w > 0 {
            for r in 0..rows {
                stacked.row_mut(r)[offset..offset + w].copy_from_slice(x.row(r));
            }
            offset += w;
        }
    }
    stacked
}

/// Slice a wide output back into per-width results (the mirror of
/// [`stack_columns`]).
fn split_columns(wide: &Dense, widths: &[usize]) -> Vec<Dense> {
    count_bytes_copied((wide.rows() * widths.iter().sum::<usize>()) as u64 * 4);
    let mut results = Vec::with_capacity(widths.len());
    let mut offset = 0;
    for &w in widths {
        let mut res = Dense::zeros(wide.rows(), w);
        if w > 0 {
            for r in 0..wide.rows() {
                res.row_mut(r).copy_from_slice(&wide.row(r)[offset..offset + w]);
            }
            offset += w;
        }
        results.push(res);
    }
    results
}

/// Run one column-stacked SpMM launch: widen the schedule's vector split
/// to span the whole stacked width — otherwise the feature loop re-chunks
/// into `vec_width·8`-lane pieces and the per-non-zero overhead is paid
/// once per chunk, exactly the cost batching exists to amortize. An
/// all-zero-width stack skips the kernel entirely.
fn launch_stacked_spmm(
    rt: &Runtime,
    a: &Csr,
    stacked: &Dense,
    config: &SpmmConfig,
) -> Result<Dense, OpError> {
    if stacked.cols() == 0 {
        return Ok(Dense::zeros(a.rows(), 0));
    }
    let mut wide = *config;
    wide.params.vec_width = wide.params.vec_width.max(stacked.cols().div_ceil(8));
    tuned_spmm_execute_on(rt, a, stacked, &wide)
}

// ---------------------------------------------------------------------------
// SpMM
// ---------------------------------------------------------------------------

/// SpMM (`A · X`) as a [`SparseOp`]: one dense feature operand per
/// request, batched by column stacking.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpmmOp;

impl SparseOp for SpmmOp {
    type Adj = Csr;
    type Operands = Dense;
    type Output = Dense;
    type Config = SpmmConfig;
    type Stacked = Dense;
    type Wide = Dense;
    type Assembled = Vec<Dense>;

    fn kind() -> &'static str {
        "spmm"
    }

    fn default_config() -> SpmmConfig {
        SpmmConfig::default_csr()
    }

    fn sparsity(adj: &Csr) -> SparsityFingerprint {
        SparsityFingerprint::of(adj)
    }

    fn shape_of(req: &Dense) -> Vec<usize> {
        vec![req.cols()]
    }

    fn validate(adj: &Csr, req: &Dense) -> Result<(), String> {
        if req.rows() != adj.cols() {
            return Err(format!(
                "feature matrix has {} rows, adjacency has {} cols",
                req.rows(),
                adj.cols()
            ));
        }
        Ok(())
    }

    fn plans(adj: &Csr, shape: &[usize], config: &SpmmConfig, name: &str) -> Vec<KernelPlan> {
        let feat = shape.first().copied().unwrap_or(1);
        tuned_spmm_plans(adj, feat, config, name)
    }

    fn can_batch(_lhs: &Dense, _rhs: &Dense) -> bool {
        // Column stacking is width-agnostic: any widths fold together.
        true
    }

    fn assemble(adj: &Csr, reqs: &[Dense]) -> Result<Vec<Dense>, OpError> {
        Ok(reqs.iter().map(|x| Dense::zeros(adj.rows(), x.cols())).collect())
    }

    fn launch(
        rt: &Runtime,
        adj: &Csr,
        reqs: &[Dense],
        asm: &mut Vec<Dense>,
        config: &SpmmConfig,
    ) -> Result<(), OpError> {
        let xs: Vec<&Dense> = reqs.iter().collect();
        spmm_execute_views_on(rt, adj, &xs, asm, config)
    }

    fn outputs(asm: Vec<Dense>, _reqs: &[Dense]) -> Vec<Dense> {
        asm
    }

    fn stack(adj: &Csr, reqs: &[Dense]) -> Result<Dense, OpError> {
        Ok(stack_columns(adj.cols(), reqs.iter()))
    }

    fn launch_stacked(
        rt: &Runtime,
        adj: &Csr,
        stacked: &Dense,
        config: &SpmmConfig,
    ) -> Result<Dense, OpError> {
        launch_stacked_spmm(rt, adj, stacked, config)
    }

    fn split(wide: Dense, reqs: &[Dense]) -> Vec<Dense> {
        let widths: Vec<usize> = reqs.iter().map(Dense::cols).collect();
        split_columns(&wide, &widths)
    }

    fn launch_one(
        rt: &Runtime,
        adj: &Csr,
        req: &Dense,
        config: &SpmmConfig,
    ) -> Result<Dense, OpError> {
        if req.cols() == 0 {
            return Ok(Dense::zeros(adj.rows(), 0));
        }
        // The batch-of-one fast path rides the same single-segment view
        // kernel: the operand binds in place and the result lands
        // directly in the request's output buffer — zero copies end to
        // end.
        let mut outs = vec![Dense::zeros(adj.rows(), req.cols())];
        spmm_execute_views_on(rt, adj, &[req], &mut outs, config)?;
        Ok(outs.pop().expect("one output per request"))
    }

    fn reference(adj: &Csr, req: &Dense) -> Result<Dense, OpError> {
        Ok(adj.spmm(req)?)
    }
}

// ---------------------------------------------------------------------------
// SDDMM
// ---------------------------------------------------------------------------

/// The widened (multi-head) form of an SDDMM batch — operands of the
/// [`crate::sddmm::batched_sddmm_ir`] kernel.
pub struct SddmmStacked {
    /// Column-stacked `X` operands (`rows × heads·k`; head `h` owns
    /// columns `[h·k, (h+1)·k)`).
    pub x: Dense,
    /// Row-stacked `Y` operands (`heads·k × cols`).
    pub y: Dense,
    /// Number of folded requests.
    pub heads: usize,
}

/// SDDMM (`A ⊙ (X · Y)` sampled at the non-zeros) as a [`SparseOp`]:
/// requests batch when their inner (reduction) widths agree, folding
/// into one widened launch whose head axis sits *inside* the fused
/// non-zero loop — the per-non-zero coordinate walk is shared by every
/// rider. The executable kernel is the fused nnz-parallel schedule;
/// [`SddmmParams`] is the plan-face configuration the simulator and
/// tuner price (the compiled CPU executor derives its own microkernel
/// from the fused loop).
#[derive(Debug, Clone, Copy, Default)]
pub struct SddmmOp;

impl SparseOp for SddmmOp {
    type Adj = Csr;
    type Operands = (Dense, Dense);
    type Output = Vec<f32>;
    type Config = SddmmParams;
    type Stacked = SddmmStacked;
    type Wide = Vec<f32>;
    type Assembled = Vec<Vec<f32>>;

    fn kind() -> &'static str {
        "sddmm"
    }

    fn default_config() -> SddmmParams {
        SddmmParams::default()
    }

    fn sparsity(adj: &Csr) -> SparsityFingerprint {
        SparsityFingerprint::of(adj)
    }

    fn shape_of(req: &(Dense, Dense)) -> Vec<usize> {
        vec![req.0.cols()]
    }

    fn validate(adj: &Csr, (x, y): &(Dense, Dense)) -> Result<(), String> {
        if x.rows() != adj.rows() || y.cols() != adj.cols() || y.rows() != x.cols() {
            return Err(format!(
                "sddmm operands {}x{} · {}x{} incompatible with {}x{} adjacency",
                x.rows(),
                x.cols(),
                y.rows(),
                y.cols(),
                adj.rows(),
                adj.cols()
            ));
        }
        Ok(())
    }

    fn plans(adj: &Csr, shape: &[usize], config: &SddmmParams, name: &str) -> Vec<KernelPlan> {
        let feat = shape.first().copied().unwrap_or(1);
        vec![sddmm_plan(adj, feat, *config, name)]
    }

    fn can_batch(lhs: &(Dense, Dense), rhs: &(Dense, Dense)) -> bool {
        // Block-diagonal stacking needs one rectangular X/Y pair, so only
        // equal inner (reduction) widths share a launch — the reduction
        // order of every stored non-zero must stay exactly the unbatched
        // one for bit-identical results.
        lhs.0.cols() == rhs.0.cols()
    }

    fn assemble(adj: &Csr, reqs: &[(Dense, Dense)]) -> Result<Vec<Vec<f32>>, OpError> {
        Ok(reqs.iter().map(|_| vec![0.0f32; adj.nnz()]).collect())
    }

    fn launch(
        rt: &Runtime,
        adj: &Csr,
        reqs: &[(Dense, Dense)],
        asm: &mut Vec<Vec<f32>>,
        _config: &SddmmParams,
    ) -> Result<(), OpError> {
        sddmm_execute_views_on(rt, adj, reqs, asm)
    }

    fn outputs(asm: Vec<Vec<f32>>, _reqs: &[(Dense, Dense)]) -> Vec<Vec<f32>> {
        asm
    }

    fn stack(adj: &Csr, reqs: &[(Dense, Dense)]) -> Result<SddmmStacked, OpError> {
        let heads = reqs.len();
        let k = reqs[0].0.cols();
        // X column-stacked: head h owns columns [h·k, (h+1)·k).
        let x = stack_columns(adj.rows(), reqs.iter().map(|(xh, _)| xh));
        // Y row-stacked: head h owns rows [h·k, (h+1)·k).
        let mut y = Dense::zeros(heads * k, adj.cols());
        for (h, (_, yh)) in reqs.iter().enumerate() {
            for r in 0..k {
                y.row_mut(h * k + r).copy_from_slice(yh.row(r));
            }
        }
        count_bytes_copied(y.data().len() as u64 * 4);
        Ok(SddmmStacked { x, y, heads })
    }

    fn launch_stacked(
        rt: &Runtime,
        adj: &Csr,
        stacked: &SddmmStacked,
        _config: &SddmmParams,
    ) -> Result<Vec<f32>, OpError> {
        use crate::sddmm::batched_sddmm_ir;
        use std::collections::HashMap;
        let heads = stacked.heads;
        let feat = stacked.x.cols() / heads.max(1);
        let f = batched_sddmm_ir(adj, heads, feat)?;
        let mut bindings = Bindings::new();
        bind_csr(&mut bindings, "A", "J", adj);
        bind_dense(&mut bindings, "X", &stacked.x);
        bind_dense(&mut bindings, "Y", &stacked.y);
        bind_zeros(&mut bindings, "Bout", adj.nnz() * heads);
        rt.compile(&f)?.run(&HashMap::new(), &mut bindings)?;
        let wide = bindings["Bout"].as_f32().to_vec();
        count_bytes_copied(wide.len() as u64 * 4);
        Ok(wide)
    }

    fn split(wide: Vec<f32>, reqs: &[(Dense, Dense)]) -> Vec<Vec<f32>> {
        // The widened output interleaves heads per non-zero:
        // `wide[e·heads + h]`.
        let heads = reqs.len();
        if heads == 0 {
            return Vec::new();
        }
        count_bytes_copied(wide.len() as u64 * 4);
        let nnz = wide.len() / heads;
        (0..heads).map(|h| (0..nnz).map(|e| wide[e * heads + h]).collect()).collect()
    }

    fn launch_one(
        rt: &Runtime,
        adj: &Csr,
        req: &(Dense, Dense),
        _config: &SddmmParams,
    ) -> Result<Vec<f32>, OpError> {
        // Batch-of-one fast path through the view kernel: operands bind
        // in place, the per-non-zero scores land directly in the
        // request's own buffer.
        let mut outs = vec![vec![0.0f32; adj.nnz()]];
        sddmm_execute_views_on(rt, adj, std::slice::from_ref(req), &mut outs)?;
        Ok(outs.pop().expect("one output per request"))
    }

    fn reference(adj: &Csr, (x, y): &(Dense, Dense)) -> Result<Vec<f32>, OpError> {
        Ok(adj.sddmm(x, y)?.values().to_vec())
    }
}

// ---------------------------------------------------------------------------
// Multi-head attention
// ---------------------------------------------------------------------------

/// Configuration of the block-sparse attention operator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttentionOpConfig {
    /// BSR block granularity the tensor-core plan face prices (§4.3.1:
    /// SparseTIR searches it, Triton fixes 64). Falls back to the CSR
    /// CUDA-core plan when the mask does not digitize at this block.
    pub block: usize,
    /// Schedule of the executable column-stacked CSR path.
    pub spmm: SpmmConfig,
}

impl Default for AttentionOpConfig {
    fn default() -> AttentionOpConfig {
        AttentionOpConfig { block: 32, spmm: SpmmConfig::default_csr() }
    }
}

/// Multi-head attention SpMM over one shared mask as a [`SparseOp`]: a
/// request is a list of per-head feature operands, and *all* heads of
/// *all* batched requests stack column-wise into one widened launch
/// (the head axis and the request axis batch identically). The plan face
/// prices the tensor-core BSR kernel of §4.3.1; execution runs the
/// stacked CSR path through the compiled executor.
#[derive(Debug, Clone, Copy, Default)]
pub struct AttentionOp;

impl SparseOp for AttentionOp {
    type Adj = Csr;
    type Operands = Vec<Dense>;
    type Output = Vec<Dense>;
    type Config = AttentionOpConfig;
    type Stacked = Dense;
    type Wide = Dense;
    type Assembled = Vec<Dense>;

    fn kind() -> &'static str {
        "attention"
    }

    fn default_config() -> AttentionOpConfig {
        AttentionOpConfig::default()
    }

    fn sparsity(adj: &Csr) -> SparsityFingerprint {
        SparsityFingerprint::of(adj)
    }

    fn shape_of(req: &Vec<Dense>) -> Vec<usize> {
        vec![req.first().map_or(0, Dense::cols), req.len()]
    }

    fn validate(adj: &Csr, req: &Vec<Dense>) -> Result<(), String> {
        for (h, x) in req.iter().enumerate() {
            if x.rows() != adj.cols() {
                return Err(format!(
                    "head {h} feature matrix has {} rows, adjacency has {} cols",
                    x.rows(),
                    adj.cols()
                ));
            }
        }
        Ok(())
    }

    fn plans(
        adj: &Csr,
        shape: &[usize],
        config: &AttentionOpConfig,
        name: &str,
    ) -> Vec<KernelPlan> {
        let feat = shape.first().copied().unwrap_or(1).max(1);
        let heads = shape.get(1).copied().unwrap_or(1).max(1);
        match Bsr::from_csr(adj, config.block) {
            Ok(bsr) => {
                vec![batched_bsr_spmm_plan(&bsr, feat, heads, SPARSETIR_BSR_EFFICIENCY, name)]
            }
            Err(_) => vec![batched_csr_spmm_plan(adj, feat, heads, name)],
        }
    }

    fn can_batch(_lhs: &Vec<Dense>, _rhs: &Vec<Dense>) -> bool {
        // Head lists concatenate; any head counts and widths fold.
        true
    }

    fn assemble(adj: &Csr, reqs: &[Vec<Dense>]) -> Result<Vec<Dense>, OpError> {
        Ok(reqs.iter().flatten().map(|x| Dense::zeros(adj.rows(), x.cols())).collect())
    }

    fn launch(
        rt: &Runtime,
        adj: &Csr,
        reqs: &[Vec<Dense>],
        asm: &mut Vec<Dense>,
        config: &AttentionOpConfig,
    ) -> Result<(), OpError> {
        let xs: Vec<&Dense> = reqs.iter().flatten().collect();
        spmm_execute_views_on(rt, adj, &xs, asm, &config.spmm)
    }

    fn outputs(asm: Vec<Dense>, reqs: &[Vec<Dense>]) -> Vec<Vec<Dense>> {
        let mut heads = asm.into_iter();
        reqs.iter().map(|req| heads.by_ref().take(req.len()).collect()).collect()
    }

    fn stack(adj: &Csr, reqs: &[Vec<Dense>]) -> Result<Dense, OpError> {
        Ok(stack_columns(adj.cols(), reqs.iter().flatten()))
    }

    fn launch_stacked(
        rt: &Runtime,
        adj: &Csr,
        stacked: &Dense,
        config: &AttentionOpConfig,
    ) -> Result<Dense, OpError> {
        launch_stacked_spmm(rt, adj, stacked, &config.spmm)
    }

    fn split(wide: Dense, reqs: &[Vec<Dense>]) -> Vec<Vec<Dense>> {
        let widths: Vec<usize> = reqs.iter().flatten().map(Dense::cols).collect();
        let mut heads = split_columns(&wide, &widths).into_iter();
        reqs.iter().map(|req| heads.by_ref().take(req.len()).collect()).collect()
    }

    fn launch_one(
        rt: &Runtime,
        adj: &Csr,
        req: &Vec<Dense>,
        config: &AttentionOpConfig,
    ) -> Result<Vec<Dense>, OpError> {
        // A single multi-head request is already a batch over its heads;
        // the heads bind as view segments of one widened launch.
        let mut outs: Vec<Dense> = req.iter().map(|x| Dense::zeros(adj.rows(), x.cols())).collect();
        let xs: Vec<&Dense> = req.iter().collect();
        spmm_execute_views_on(rt, adj, &xs, &mut outs, &config.spmm)?;
        Ok(outs)
    }

    fn reference(adj: &Csr, req: &Vec<Dense>) -> Result<Vec<Dense>, OpError> {
        Ok(batched_spmm(adj, req)?)
    }
}

// ---------------------------------------------------------------------------
// RGMS
// ---------------------------------------------------------------------------

/// The dense operands of one RGMS request: node features plus one weight
/// matrix per relation.
#[derive(Debug, Clone)]
pub struct RgmsOperands {
    /// Node features (`nodes × d_in`).
    pub x: Dense,
    /// Per-relation weights (`d_in × d_out` each).
    pub weights: Vec<Dense>,
}

/// Relational Gather-Matmul-Scatter as a [`SparseOp`]: the adjacency is
/// the multi-relation [`RgmsWorkload`], the configuration is the 3-D hyb
/// bucket exponent (`0` = the unbucketed naive kernel), and the plan
/// face prices Figure 20's fused kernels. Requests never batch (each
/// already spans every relation); execution runs the smat reference
/// pipeline. Shape vectors are `[d_in, d_out, tensor_cores]`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RgmsOp;

impl SparseOp for RgmsOp {
    type Adj = RgmsWorkload;
    type Operands = RgmsOperands;
    type Output = Dense;
    type Config = u32;
    type Stacked = ();
    type Wide = Dense;
    type Assembled = ();

    fn kind() -> &'static str {
        "rgms"
    }

    fn default_config() -> u32 {
        5
    }

    fn sparsity(adj: &RgmsWorkload) -> SparsityFingerprint {
        SparsityFingerprint::of_relations(&adj.relations)
    }

    fn shape_of(req: &RgmsOperands) -> Vec<usize> {
        // The third element is the tensor-core flag of the plan face —
        // a caller choice, not derivable from the operands, so it
        // defaults to 0 (CUDA cores) here; `nn::tuned_rgms` passes the
        // explicit flag. Keeping the slot in the request-derived shape
        // means the two forms never collide in a tune-cache key.
        vec![req.x.cols(), req.weights.first().map_or(0, Dense::cols), 0]
    }

    fn validate(adj: &RgmsWorkload, req: &RgmsOperands) -> Result<(), String> {
        if req.weights.len() != adj.relations.len() {
            return Err(format!(
                "{} weight matrices for {} relations",
                req.weights.len(),
                adj.relations.len()
            ));
        }
        if req.x.rows() != adj.nodes() {
            return Err(format!(
                "feature matrix has {} rows, workload has {} nodes",
                req.x.rows(),
                adj.nodes()
            ));
        }
        Ok(())
    }

    fn plans(adj: &RgmsWorkload, shape: &[usize], config: &u32, name: &str) -> Vec<KernelPlan> {
        let tensor_cores = shape.get(2).is_some_and(|&tc| tc != 0);
        if *config == 0 {
            vec![rgms_naive_plan(adj, name)]
        } else {
            vec![rgms_hyb_plan(adj, *config, tensor_cores, name)]
        }
    }

    fn can_batch(_lhs: &RgmsOperands, _rhs: &RgmsOperands) -> bool {
        false
    }

    fn assemble(_adj: &RgmsWorkload, _reqs: &[RgmsOperands]) -> Result<(), OpError> {
        Err("rgms requests do not batch".into())
    }

    fn launch(
        _rt: &Runtime,
        _adj: &RgmsWorkload,
        _reqs: &[RgmsOperands],
        _asm: &mut (),
        _config: &u32,
    ) -> Result<(), OpError> {
        Err("rgms requests do not batch".into())
    }

    fn outputs(_asm: (), _reqs: &[RgmsOperands]) -> Vec<Dense> {
        Vec::new()
    }

    fn stack(_adj: &RgmsWorkload, _reqs: &[RgmsOperands]) -> Result<(), OpError> {
        Err("rgms requests do not batch".into())
    }

    fn launch_stacked(
        _rt: &Runtime,
        _adj: &RgmsWorkload,
        _stacked: &(),
        _config: &u32,
    ) -> Result<Dense, OpError> {
        Err("rgms requests do not batch".into())
    }

    fn split(wide: Dense, _reqs: &[RgmsOperands]) -> Vec<Dense> {
        vec![wide]
    }

    fn launch_one(
        _rt: &Runtime,
        adj: &RgmsWorkload,
        req: &RgmsOperands,
        _config: &u32,
    ) -> Result<Dense, OpError> {
        Ok(rgms_reference(&adj.relations, &req.x, &req.weights)?)
    }

    fn reference(adj: &RgmsWorkload, req: &RgmsOperands) -> Result<Dense, OpError> {
        Ok(rgms_reference(&adj.relations, &req.x, &req.weights)?)
    }
}

// ---------------------------------------------------------------------------
// Cross-op fused attention (SDDMM → edge-softmax → SpMM, one kernel)
// ---------------------------------------------------------------------------

/// One attention head's operands: query, transposed key and value
/// projections against the shared mask.
#[derive(Debug, Clone)]
pub struct AttnHead {
    /// Queries (`rows × k`).
    pub q: Dense,
    /// Transposed keys (`k × cols`).
    pub kt: Dense,
    /// Values (`cols × vfeat`).
    pub v: Dense,
}

/// The widened form of a fused-attention batch: every head of every
/// request stacked into the batched-SDDMM operand layout
/// ([`crate::fused_attention`] module docs).
pub struct FusedAttnStacked {
    /// Column-stacked queries (`rows × heads·k`).
    pub q: Dense,
    /// Row-stacked transposed keys (`heads·k × cols`).
    pub kt: Dense,
    /// Column-stacked values (`cols × heads·vfeat`).
    pub v: Dense,
    /// Total folded heads.
    pub heads: usize,
}

/// Configuration of the fused attention operator: the score phase's
/// SDDMM schedule plus the aggregation phase's SpMM schedule (the two
/// flop-dominant phases its [`plans`](SparseOp::plans) face prices).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusedAttentionConfig {
    /// Score-phase (SDDMM) schedule.
    pub sddmm: SddmmParams,
    /// Aggregation-phase (SpMM) schedule.
    pub spmm: SpmmConfig,
}

impl Default for FusedAttentionConfig {
    fn default() -> FusedAttentionConfig {
        FusedAttentionConfig { sddmm: SddmmParams::default(), spmm: SpmmConfig::default_csr() }
    }
}

/// The whole sparse-attention pipeline (score SDDMM → edge-softmax →
/// aggregation SpMM) as **one** [`SparseOp`] served by a single fused
/// kernel launch ([`crate::fused_attention::fused_attention_launch`];
/// the `SPARSETIR_NO_FUSE` kill switch falls back to the bit-identical
/// three-launch pipeline). A request is a list of [`AttnHead`]s sharing
/// one mask; requests batch when their per-head shapes `(k, vfeat)`
/// agree — every head of every folded request rides the same widened
/// launch, inside the same fused non-zero walk (the PR 5 multi-head
/// batching contract), and each `(non-zero, head)` pair keeps exactly
/// its unbatched reduction order, so batching is bit-identical.
#[derive(Debug, Clone, Copy, Default)]
pub struct FusedAttentionOp;

/// Per-head `(k, vfeat)` shape of a request, `None` when it has no heads
/// (0-head requests are compatible with anything — they contribute
/// nothing to a stacked launch).
fn attn_head_shape(req: &[AttnHead]) -> Option<(usize, usize)> {
    req.first().map(|h| (h.q.cols(), h.v.cols()))
}

impl SparseOp for FusedAttentionOp {
    type Adj = Csr;
    type Operands = Vec<AttnHead>;
    type Output = Vec<Dense>;
    type Config = FusedAttentionConfig;
    type Stacked = FusedAttnStacked;
    type Wide = Dense;
    type Assembled = Vec<Dense>;

    fn kind() -> &'static str {
        "fused_attention"
    }

    fn default_config() -> FusedAttentionConfig {
        FusedAttentionConfig::default()
    }

    fn sparsity(adj: &Csr) -> SparsityFingerprint {
        SparsityFingerprint::of(adj)
    }

    fn shape_of(req: &Vec<AttnHead>) -> Vec<usize> {
        let (k, vfeat) = attn_head_shape(req).unwrap_or((0, 0));
        vec![k, vfeat, req.len()]
    }

    fn validate(adj: &Csr, req: &Vec<AttnHead>) -> Result<(), String> {
        let shape = attn_head_shape(req);
        for (h, head) in req.iter().enumerate() {
            if head.q.rows() != adj.rows()
                || head.kt.rows() != head.q.cols()
                || head.kt.cols() != adj.cols()
                || head.v.rows() != adj.cols()
            {
                return Err(format!(
                    "head {h}: q {}x{}, kt {}x{}, v {}x{} incompatible with {}x{} adjacency",
                    head.q.rows(),
                    head.q.cols(),
                    head.kt.rows(),
                    head.kt.cols(),
                    head.v.rows(),
                    head.v.cols(),
                    adj.rows(),
                    adj.cols()
                ));
            }
            if shape != Some((head.q.cols(), head.v.cols())) {
                return Err(format!(
                    "head {h}: shape ({}, {}) differs from head 0's {:?} — all heads of one \
                     request must share (k, vfeat)",
                    head.q.cols(),
                    head.v.cols(),
                    shape
                ));
            }
        }
        Ok(())
    }

    fn plans(
        adj: &Csr,
        shape: &[usize],
        config: &FusedAttentionConfig,
        _name: &str,
    ) -> Vec<KernelPlan> {
        let k = shape.first().copied().unwrap_or(1).max(1);
        let vfeat = shape.get(1).copied().unwrap_or(1).max(1);
        let heads = shape.get(2).copied().unwrap_or(1).max(1);
        fused_attention_plans(adj, heads, k, vfeat, config.sddmm)
    }

    fn can_batch(lhs: &Vec<AttnHead>, rhs: &Vec<AttnHead>) -> bool {
        // One widened launch needs a single rectangular (k, vfeat); 0-head
        // requests ride along with anything.
        match (attn_head_shape(lhs), attn_head_shape(rhs)) {
            (Some(l), Some(r)) => l == r,
            _ => true,
        }
    }

    fn assemble(adj: &Csr, reqs: &[Vec<AttnHead>]) -> Result<Vec<Dense>, OpError> {
        let heads: Vec<&AttnHead> = reqs.iter().flatten().collect();
        let shapes: Vec<(usize, usize)> = heads.iter().map(|h| (h.q.cols(), h.v.cols())).collect();
        if shapes.windows(2).any(|w| w[0] != w[1]) {
            return Err("fused attention: mixed (k, vfeat) shapes in one stacked launch".into());
        }
        Ok(heads.iter().map(|h| Dense::zeros(adj.rows(), h.v.cols())).collect())
    }

    fn launch(
        rt: &Runtime,
        adj: &Csr,
        reqs: &[Vec<AttnHead>],
        asm: &mut Vec<Dense>,
        _config: &FusedAttentionConfig,
    ) -> Result<(), OpError> {
        let heads: Vec<&AttnHead> = reqs.iter().flatten().collect();
        if heads.is_empty() {
            return Ok(());
        }
        let qs: Vec<&Dense> = heads.iter().map(|h| &h.q).collect();
        let kts: Vec<&Dense> = heads.iter().map(|h| &h.kt).collect();
        let vs: Vec<&Dense> = heads.iter().map(|h| &h.v).collect();
        fused_attention_views_on(rt, adj, &qs, &kts, &vs, asm)
    }

    fn outputs(asm: Vec<Dense>, reqs: &[Vec<AttnHead>]) -> Vec<Vec<Dense>> {
        let mut heads = asm.into_iter();
        reqs.iter().map(|req| heads.by_ref().take(req.len()).collect()).collect()
    }

    fn stack(adj: &Csr, reqs: &[Vec<AttnHead>]) -> Result<FusedAttnStacked, OpError> {
        let heads: Vec<&AttnHead> = reqs.iter().flatten().collect();
        let shapes: Vec<(usize, usize)> = heads.iter().map(|h| (h.q.cols(), h.v.cols())).collect();
        if shapes.windows(2).any(|w| w[0] != w[1]) {
            return Err("fused attention: mixed (k, vfeat) shapes in one stacked launch".into());
        }
        let k = shapes.first().map_or(0, |s| s.0);
        let q = stack_columns(adj.rows(), heads.iter().map(|h| &h.q));
        let v = stack_columns(adj.cols(), heads.iter().map(|h| &h.v));
        let mut kt = Dense::zeros(heads.len() * k, adj.cols());
        for (h, head) in heads.iter().enumerate() {
            for r in 0..k {
                kt.row_mut(h * k + r).copy_from_slice(head.kt.row(r));
            }
        }
        count_bytes_copied(kt.data().len() as u64 * 4);
        Ok(FusedAttnStacked { q, kt, v, heads: heads.len() })
    }

    fn launch_stacked(
        rt: &Runtime,
        adj: &Csr,
        stacked: &FusedAttnStacked,
        _config: &FusedAttentionConfig,
    ) -> Result<Dense, OpError> {
        if stacked.heads == 0 {
            return Ok(Dense::zeros(adj.rows(), 0));
        }
        fused_attention_execute_on(rt, adj, &stacked.q, &stacked.kt, &stacked.v, stacked.heads)
    }

    fn split(wide: Dense, reqs: &[Vec<AttnHead>]) -> Vec<Vec<Dense>> {
        let widths: Vec<usize> = reqs.iter().flatten().map(|h| h.v.cols()).collect();
        let mut heads = split_columns(&wide, &widths).into_iter();
        reqs.iter().map(|req| heads.by_ref().take(req.len()).collect()).collect()
    }

    fn launch_one(
        rt: &Runtime,
        adj: &Csr,
        req: &Vec<AttnHead>,
        config: &FusedAttentionConfig,
    ) -> Result<Vec<Dense>, OpError> {
        // A single multi-head request is already a widened launch over
        // its heads — same view assembly, so batched results stay
        // bit-identical (and the batch-of-one fast path stays copy-free).
        let reqs = std::slice::from_ref(req);
        let mut asm = Self::assemble(adj, reqs)?;
        Self::launch(rt, adj, reqs, &mut asm, config)?;
        Ok(Self::outputs(asm, reqs).pop().expect("one output per request"))
    }

    fn reference(adj: &Csr, req: &Vec<AttnHead>) -> Result<Vec<Dense>, OpError> {
        Ok(req.iter().map(|h| fused_attention_reference(adj, &h.q, &h.kt, &h.v, 1)).collect())
    }
}

// ---------------------------------------------------------------------------
// Cross-op fused GraphSAGE step (gather → normalize → matmul, one kernel)
// ---------------------------------------------------------------------------

/// Configuration of the fused GraphSAGE-step operator. Wraps the
/// aggregation phase's SpMM schedule (its own type so the kind-tagged
/// [`OpConfig`] conversions stay unambiguous with [`OpConfig::Spmm`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusedSageConfig {
    /// Aggregation-phase (SpMM-shaped) schedule the plan face prices.
    pub spmm: SpmmConfig,
}

impl Default for FusedSageConfig {
    fn default() -> FusedSageConfig {
        FusedSageConfig { spmm: SpmmConfig::default_csr() }
    }
}

/// GraphSAGE's gather → degree-normalize → feature-matmul layer step as
/// a [`SparseOp`] served by one fused kernel launch
/// ([`crate::fused_sage::fused_sage_launch`]; `SPARSETIR_NO_FUSE` falls
/// back to the bit-identical two-launch pipeline). A request is the
/// `(features, weights)` pair of one layer; requests never batch (each
/// already spans the whole graph, RGMS-style).
#[derive(Debug, Clone, Copy, Default)]
pub struct FusedSageOp;

impl SparseOp for FusedSageOp {
    type Adj = Csr;
    type Operands = (Dense, Dense);
    type Output = Dense;
    type Config = FusedSageConfig;
    type Stacked = ();
    type Wide = Dense;
    type Assembled = ();

    fn kind() -> &'static str {
        "fused_sage"
    }

    fn default_config() -> FusedSageConfig {
        FusedSageConfig::default()
    }

    fn sparsity(adj: &Csr) -> SparsityFingerprint {
        SparsityFingerprint::of(adj)
    }

    fn shape_of(req: &(Dense, Dense)) -> Vec<usize> {
        vec![req.0.cols(), req.1.cols()]
    }

    fn validate(adj: &Csr, (x, w): &(Dense, Dense)) -> Result<(), String> {
        if x.rows() != adj.cols() || w.rows() != x.cols() {
            return Err(format!(
                "sage operands x {}x{}, w {}x{} incompatible with {}x{} adjacency",
                x.rows(),
                x.cols(),
                w.rows(),
                w.cols(),
                adj.rows(),
                adj.cols()
            ));
        }
        Ok(())
    }

    fn plans(adj: &Csr, shape: &[usize], _config: &FusedSageConfig, name: &str) -> Vec<KernelPlan> {
        let feat = shape.first().copied().unwrap_or(1).max(1);
        let hidden = shape.get(1).copied().unwrap_or(1).max(1);
        vec![
            batched_csr_spmm_plan(adj, feat, 1, name),
            gemm_plan(name, adj.rows(), hidden, feat, F32, false, 1.0),
        ]
    }

    fn can_batch(_lhs: &(Dense, Dense), _rhs: &(Dense, Dense)) -> bool {
        false
    }

    fn assemble(_adj: &Csr, _reqs: &[(Dense, Dense)]) -> Result<(), OpError> {
        Err("fused sage requests do not batch".into())
    }

    fn launch(
        _rt: &Runtime,
        _adj: &Csr,
        _reqs: &[(Dense, Dense)],
        _asm: &mut (),
        _config: &FusedSageConfig,
    ) -> Result<(), OpError> {
        Err("fused sage requests do not batch".into())
    }

    fn outputs(_asm: (), _reqs: &[(Dense, Dense)]) -> Vec<Dense> {
        Vec::new()
    }

    fn stack(_adj: &Csr, _reqs: &[(Dense, Dense)]) -> Result<(), OpError> {
        Err("fused sage requests do not batch".into())
    }

    fn launch_stacked(
        _rt: &Runtime,
        _adj: &Csr,
        _stacked: &(),
        _config: &FusedSageConfig,
    ) -> Result<Dense, OpError> {
        Err("fused sage requests do not batch".into())
    }

    fn split(wide: Dense, _reqs: &[(Dense, Dense)]) -> Vec<Dense> {
        vec![wide]
    }

    fn launch_one(
        rt: &Runtime,
        adj: &Csr,
        (x, w): &(Dense, Dense),
        _config: &FusedSageConfig,
    ) -> Result<Dense, OpError> {
        fused_sage_execute_on(rt, adj, x, w)
    }

    fn reference(adj: &Csr, (x, w): &(Dense, Dense)) -> Result<Dense, OpError> {
        Ok(fused_sage_reference(adj, x, w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt() -> Runtime {
        Runtime::new()
    }

    fn bit_eq(a: &[f32], b: &[f32]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
    }

    #[test]
    fn spmm_op_batch_matches_singles() {
        let mut rng = gen::rng(71);
        let a = gen::random_csr(18, 14, 0.25, &mut rng);
        let xs: Vec<Dense> =
            [3usize, 0, 1, 5].iter().map(|&w| gen::random_dense(14, w, &mut rng)).collect();
        let rt = rt();
        let config = SpmmOp::default_config();
        let batched = SpmmOp::execute_batch_on(&rt, &a, &xs, &config).unwrap();
        for (x, got) in xs.iter().zip(&batched) {
            let want = SpmmOp::execute_on(&rt, &a, x, &config).unwrap();
            assert!(bit_eq(got.data(), want.data()));
            assert!(got.approx_eq(&SpmmOp::reference(&a, x).unwrap(), 1e-4));
        }
    }

    #[test]
    fn sddmm_op_block_diagonal_batch_is_bit_identical() {
        let mut rng = gen::rng(72);
        let a = gen::random_csr(12, 10, 0.3, &mut rng);
        let k = 4;
        let reqs: Vec<(Dense, Dense)> = (0..3)
            .map(|_| (gen::random_dense(12, k, &mut rng), gen::random_dense(k, 10, &mut rng)))
            .collect();
        assert!(SddmmOp::can_batch(&reqs[0], &reqs[1]));
        let rt = rt();
        let config = SddmmOp::default_config();
        let batched = SddmmOp::execute_batch_on(&rt, &a, &reqs, &config).unwrap();
        assert_eq!(batched.len(), reqs.len());
        for (req, got) in reqs.iter().zip(&batched) {
            let want = SddmmOp::execute_on(&rt, &a, req, &config).unwrap();
            assert!(bit_eq(got, &want));
        }
    }

    #[test]
    fn sddmm_op_refuses_mixed_inner_widths() {
        let mut rng = gen::rng(73);
        let a = gen::random_csr(4, 4, 0.5, &mut rng);
        let narrow = (gen::random_dense(4, 2, &mut rng), gen::random_dense(2, 4, &mut rng));
        let wide = (gen::random_dense(4, 3, &mut rng), gen::random_dense(3, 4, &mut rng));
        assert!(!SddmmOp::can_batch(&narrow, &wide));
        // The contract is enforced by the batch path itself, not just
        // advertised: a mixed-width batch is a typed error, never a
        // silently wrong stacked launch.
        let err = SddmmOp::execute_batch_on(&rt(), &a, &[narrow, wide], &SddmmOp::default_config())
            .expect_err("mixed inner widths must be rejected");
        assert!(err.to_string().contains("request 1"), "{err}");
    }

    #[test]
    fn attention_op_stacks_heads_across_requests() {
        let mut rng = gen::rng(74);
        let a = gen::random_csr(16, 16, 0.2, &mut rng);
        let reqs: Vec<Vec<Dense>> = vec![
            (0..3).map(|_| gen::random_dense(16, 4, &mut rng)).collect(),
            vec![],
            (0..2).map(|_| gen::random_dense(16, 2, &mut rng)).collect(),
        ];
        let rt = rt();
        let config = AttentionOp::default_config();
        let batched = AttentionOp::execute_batch_on(&rt, &a, &reqs, &config).unwrap();
        assert_eq!(batched.len(), 3);
        assert_eq!(batched[1].len(), 0);
        for (req, got) in reqs.iter().zip(&batched) {
            let want = AttentionOp::reference(&a, req).unwrap();
            for (g, w) in got.iter().zip(&want) {
                assert!(g.approx_eq(w, 1e-4));
            }
            // And bit-identical to the op's own unbatched execution.
            let solo = AttentionOp::execute_on(&rt, &a, req, &config).unwrap();
            for (g, s) in got.iter().zip(&solo) {
                assert!(bit_eq(g.data(), s.data()));
            }
        }
    }

    #[test]
    fn op_validation_reports_request_index() {
        let mut rng = gen::rng(75);
        let a = gen::random_csr(8, 8, 0.3, &mut rng);
        let good = gen::random_dense(8, 2, &mut rng);
        let bad = gen::random_dense(9, 2, &mut rng);
        let err = SpmmOp::execute_batch_on(&rt(), &a, &[good, bad], &SpmmOp::default_config())
            .expect_err("row mismatch must be rejected");
        assert!(err.to_string().contains("request 1"), "{err}");
    }

    #[test]
    fn rgms_op_executes_and_never_batches() {
        use rand::Rng;
        let mut rng = gen::rng(76);
        let relations: Vec<Csr> = (0..2)
            .map(|_| {
                gen::random_csr_with_row_lengths(
                    20,
                    20,
                    |r| {
                        let u: f64 = r.gen_range(0.0..1.0);
                        ((3.0 / (u + 0.05)) as usize).clamp(0, 10)
                    },
                    &mut rng,
                )
            })
            .collect();
        let w = RgmsWorkload { relations, din: 6, dout: 5 };
        let req = RgmsOperands {
            x: gen::random_dense(20, 6, &mut rng),
            weights: (0..2).map(|_| gen::random_dense(6, 5, &mut rng)).collect(),
        };
        assert!(!RgmsOp::can_batch(&req, &req));
        let got = RgmsOp::execute_on(&rt(), &w, &req, &RgmsOp::default_config()).unwrap();
        let want = RgmsOp::reference(&w, &req).unwrap();
        assert!(bit_eq(got.data(), want.data()));
        // The plan face covers both the naive and bucketed variants.
        assert!(!RgmsOp::plans(&w, &[6, 5, 0], &0, "naive").is_empty());
        assert!(!RgmsOp::plans(&w, &[6, 5, 1], &5, "hyb_tc").is_empty());
    }

    fn attn_req(a: &Csr, heads: usize, k: usize, vfeat: usize, seed: u64) -> Vec<AttnHead> {
        let mut rng = gen::rng(seed);
        (0..heads)
            .map(|_| AttnHead {
                q: gen::random_dense(a.rows(), k, &mut rng),
                kt: gen::random_dense(k, a.cols(), &mut rng),
                v: gen::random_dense(a.cols(), vfeat, &mut rng),
            })
            .collect()
    }

    #[test]
    fn fused_attention_op_batch_is_bit_identical_to_singles() {
        let mut rng = gen::rng(81);
        let a = gen::random_csr(14, 12, 0.25, &mut rng);
        // Mixed head counts (including a 0-head request) share one launch;
        // (k, vfeat) agree across all of them.
        let reqs: Vec<Vec<AttnHead>> =
            vec![attn_req(&a, 2, 4, 3, 82), vec![], attn_req(&a, 1, 4, 3, 83)];
        assert!(FusedAttentionOp::can_batch(&reqs[0], &reqs[1]));
        assert!(FusedAttentionOp::can_batch(&reqs[0], &reqs[2]));
        let rt = rt();
        let config = FusedAttentionOp::default_config();
        let batched = FusedAttentionOp::execute_batch_on(&rt, &a, &reqs, &config).unwrap();
        assert_eq!(batched.len(), 3);
        assert_eq!(batched[1].len(), 0);
        for (req, got) in reqs.iter().zip(&batched) {
            let solo = FusedAttentionOp::execute_on(&rt, &a, req, &config).unwrap();
            for (g, s) in got.iter().zip(&solo) {
                assert!(bit_eq(g.data(), s.data()), "batched must be bit-identical to solo");
            }
            // Softmax path: relative-epsilon against the f64 reference.
            let want = FusedAttentionOp::reference(&a, req).unwrap();
            for (g, w) in got.iter().zip(&want) {
                assert!(g.approx_eq(w, 1e-4), "max |Δ| = {}", g.max_abs_diff(w));
            }
        }
    }

    #[test]
    fn fused_attention_op_refuses_mixed_head_shapes() {
        let mut rng = gen::rng(84);
        let a = gen::random_csr(8, 8, 0.3, &mut rng);
        let narrow = attn_req(&a, 1, 2, 3, 85);
        let wide = attn_req(&a, 1, 4, 3, 86);
        assert!(!FusedAttentionOp::can_batch(&narrow, &wide));
        let err = FusedAttentionOp::execute_batch_on(
            &rt(),
            &a,
            &[narrow, wide],
            &FusedAttentionOp::default_config(),
        )
        .expect_err("mixed (k, vfeat) must be rejected");
        assert!(err.to_string().contains("request 1"), "{err}");
        // Non-uniform heads inside one request are a validation error.
        let mut bad = attn_req(&a, 1, 2, 3, 87);
        bad.extend(attn_req(&a, 1, 2, 5, 88));
        assert!(FusedAttentionOp::validate(&a, &bad).is_err());
    }

    #[test]
    fn fused_attention_op_has_a_plan_face() {
        let mut rng = gen::rng(89);
        let a = gen::random_csr(16, 16, 0.2, &mut rng);
        let req = attn_req(&a, 2, 4, 4, 90);
        let shape = FusedAttentionOp::shape_of(&req);
        assert_eq!(shape, vec![4, 4, 2]);
        let plans = FusedAttentionOp::plans(&a, &shape, &FusedAttentionOp::default_config(), "fa");
        assert_eq!(plans.len(), 2, "score + aggregation phases");
    }

    #[test]
    fn fused_sage_op_executes_and_never_batches() {
        let mut rng = gen::rng(91);
        let a = gen::random_csr(12, 12, 0.3, &mut rng);
        let req = (gen::random_dense(12, 5, &mut rng), gen::random_dense(5, 4, &mut rng));
        assert!(!FusedSageOp::can_batch(&req, &req));
        let got = FusedSageOp::execute_on(&rt(), &a, &req, &FusedSageOp::default_config()).unwrap();
        let want = FusedSageOp::reference(&a, &req).unwrap();
        assert!(got.approx_eq(&want, 1e-4));
        assert_eq!(FusedSageOp::plans(&a, &[5, 4], &FusedSageOp::default_config(), "fs").len(), 2);
    }
}
