//! SparseTIR SpMM kernels (§4.2.1): the GE-SpMM-style CSR schedule
//! (`SparseTIR(no-hyb)`) and the composable `hyb(c, k)` kernel
//! (`SparseTIR(hyb)`) with compile-time load balancing, plus the IR path
//! used for functional validation and CUDA emission.

use crate::common::{SpmmCost, SpmmLayout, F32};
use sparsetir_core::prelude::*;
use sparsetir_gpusim::prelude::*;
use sparsetir_ir::prelude::*;
use sparsetir_smat::prelude::*;
use std::collections::HashMap;

/// Schedule parameters of the CSR SpMM kernel (the knobs of the paper's
/// schedule template).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsrSpmmParams {
    /// Rows handled per thread block.
    pub rows_per_block: usize,
    /// Vector load width (`vectorize`).
    pub vec_width: usize,
    /// Partial results cached in registers (`cache_write`).
    pub register_cache: bool,
    /// Threads per block.
    pub threads: usize,
}

impl Default for CsrSpmmParams {
    fn default() -> Self {
        // The GE-SpMM defaults the paper builds on.
        CsrSpmmParams { rows_per_block: 4, vec_width: 4, register_cache: true, threads: 128 }
    }
}

/// One point of the joint SpMM format × schedule space of §2: the `c` of
/// `hyb(c, k)` (`None` = no format decomposition), the bucket exponent
/// `k`, and the schedule parameters. The autotuner searches over these;
/// the `tuned_*` entry points below consume a chosen configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpmmConfig {
    /// Column partitions `c` (`None` = no format decomposition).
    pub col_parts: Option<usize>,
    /// Bucket exponent `k` (ignored without decomposition).
    pub bucket_k: u32,
    /// Schedule parameters.
    pub params: CsrSpmmParams,
}

impl SpmmConfig {
    /// The untuned baseline: plain CSR with the default GE-SpMM schedule.
    #[must_use]
    pub fn default_csr() -> SpmmConfig {
        SpmmConfig { col_parts: None, bucket_k: 0, params: CsrSpmmParams::default() }
    }

    /// Compact human-readable label, e.g. `csr/rpb4/vw4` or
    /// `hyb(c=2,k=3)/rpb4/vw4`.
    #[must_use]
    pub fn label(&self) -> String {
        let fmt = match self.col_parts {
            None => "csr".to_string(),
            Some(c) => format!("hyb(c={c},k={})", self.bucket_k),
        };
        format!("{fmt}/rpb{}/vw{}", self.params.rows_per_block, self.params.vec_width)
    }
}

/// Build the simulator plan for CSR SpMM under `params`.
#[must_use]
pub fn csr_spmm_plan(a: &Csr, feat: usize, params: CsrSpmmParams, name: &str) -> KernelPlan {
    let layout = SpmmLayout::new(a, feat, F32);
    let mut plan = KernelPlan::new(name);
    plan.threads_per_block = params.threads;
    let rpb = params.rows_per_block.max(1);
    for row0 in (0..a.rows()).step_by(rpb) {
        let rows = rpb.min(a.rows() - row0);
        let lo = a.indptr()[row0];
        let hi = a.indptr()[row0 + rows];
        let nnz = hi - lo;
        let cost = SpmmCost {
            nnz,
            feat,
            vec_width: params.vec_width,
            register_cache: params.register_cache,
            threads: params.threads,
        };
        let mut w = BlockWork {
            cuda_flops: cost.flops(),
            serial_insts: cost.serial_insts(),
            ..Default::default()
        };
        w.reads.push(AccessRange::new(layout.indptr + row0 as u64 * 4, (rows as u64 + 1) * 4));
        w.reads.push(AccessRange::new(layout.indices + lo as u64 * 4, nnz as u64 * 4));
        w.reads.push(AccessRange::new(layout.values + lo as u64 * F32, nnz as u64 * F32));
        for &col in &a.indices()[lo..hi] {
            w.reads.push(layout.b_row(col, feat, F32));
        }
        let mut c_range = layout.c_rows(row0, rows, feat, F32);
        c_range.bytes += cost.writeback_penalty_bytes(F32);
        w.writes.push(c_range);
        plan.blocks.push(w);
    }
    plan
}

/// Build the per-bucket plans for the `hyb(c, k)` SpMM (Figure 11's
/// format + the bucketing schedule: bucket `i` of each partition groups
/// `2^{k−i}` rows per thread block so every block covers `2^k` non-zeros).
#[must_use]
pub fn hyb_spmm_plans(hyb: &Hyb, feat: usize, params: CsrSpmmParams) -> Vec<KernelPlan> {
    let elem = F32;
    let mut plans = Vec::new();
    // Shared address space across all buckets: B and C are common.
    let mut addr = AddressSpace::new();
    let b_base = addr.alloc("B", hyb.cols() as u64 * feat as u64 * elem);
    let c_base = addr.alloc("C", hyb.rows() as u64 * feat as u64 * elem);
    let k = hyb.bucket_k();
    for (pi, part) in hyb.partitions().iter().enumerate() {
        for bucket in &part.buckets {
            if bucket.is_empty() {
                continue;
            }
            let width = bucket.width;
            let i = width.trailing_zeros(); // width is 2^i by construction
            let rows_per_block = (1usize << (k - i.min(k))).max(1);
            let name = format!("spmm_hyb_p{pi}_w{width}");
            let cols_name = format!("{name}_cols");
            let vals_name = format!("{name}_vals");
            let rows_name = format!("{name}_rows");
            let cols_base = addr.alloc(&cols_name, bucket.stored() as u64 * 4);
            let vals_base = addr.alloc(&vals_name, bucket.stored() as u64 * elem);
            let rows_base = addr.alloc(&rows_name, bucket.len() as u64 * 4);
            let mut plan = KernelPlan::new(name);
            plan.threads_per_block = params.threads;
            for r0 in (0..bucket.len()).step_by(rows_per_block) {
                let rows = rows_per_block.min(bucket.len() - r0);
                let nnz = rows * width;
                let cost = SpmmCost {
                    nnz,
                    feat,
                    vec_width: params.vec_width,
                    register_cache: params.register_cache,
                    threads: params.threads,
                };
                let mut w = BlockWork {
                    cuda_flops: cost.flops(),
                    serial_insts: cost.serial_insts(),
                    ..Default::default()
                };
                w.reads.push(AccessRange::new(rows_base + r0 as u64 * 4, rows as u64 * 4));
                w.reads.push(AccessRange::new(cols_base + (r0 * width) as u64 * 4, nnz as u64 * 4));
                w.reads.push(AccessRange::new(
                    vals_base + (r0 * width) as u64 * elem,
                    nnz as u64 * elem,
                ));
                for ri in 0..rows {
                    for j in 0..width {
                        let col = bucket.col_indices[(r0 + ri) * width + j];
                        w.reads.push(AccessRange::new(
                            b_base + u64::from(col) * feat as u64 * elem,
                            feat as u64 * elem,
                        ));
                    }
                    let out_row = bucket.row_ids[r0 + ri];
                    w.writes.push(AccessRange::new(
                        c_base + u64::from(out_row) * feat as u64 * elem,
                        feat as u64 * elem,
                    ));
                }
                plan.blocks.push(w);
            }
            plans.push(plan);
        }
    }
    plans
}

/// Simulated time (ms) of the hyb SpMM with horizontal fusion (§3.5).
#[must_use]
pub fn hyb_spmm_time(
    spec: &GpuSpec,
    hyb: &Hyb,
    feat: usize,
    params: CsrSpmmParams,
) -> KernelReport {
    let plans = hyb_spmm_plans(hyb, feat, params);
    simulate_fused(spec, &plans, "spmm_hyb_fused")
}

/// Simulator plans for a tuned SpMM configuration: one CSR plan, or the
/// per-bucket hyb plans of the decomposed format.
#[must_use]
pub fn tuned_spmm_plans(a: &Csr, feat: usize, config: &SpmmConfig, name: &str) -> Vec<KernelPlan> {
    match config.col_parts.and_then(|c| Hyb::from_csr(a, c, config.bucket_k).ok()) {
        Some(hyb) => hyb_spmm_plans(&hyb, feat, config.params),
        None => vec![csr_spmm_plan(a, feat, config.params, name)],
    }
}

/// Simulated time of a tuned SpMM configuration (hyb buckets horizontally
/// fused, as §3.5 prescribes).
#[must_use]
pub fn tuned_spmm_time(spec: &GpuSpec, a: &Csr, feat: usize, config: &SpmmConfig) -> KernelReport {
    let plans = tuned_spmm_plans(a, feat, config, "spmm_tuned");
    if config.col_parts.is_some() {
        simulate_fused(spec, &plans, "spmm_tuned_fused")
    } else {
        simulate_kernel(spec, &plans[0])
    }
}

/// Build, lower and schedule the IR-path CSR SpMM for functional
/// validation / codegen (Figure 3 → Figure 9/10 pipeline).
///
/// # Errors
/// Propagates lowering/scheduling errors.
pub fn csr_spmm_ir(a: &Csr, feat: usize) -> Result<PrimFunc, Box<dyn std::error::Error>> {
    let program = spmm_program(a.rows(), a.cols(), a.nnz(), feat);
    let f = lower(&program)?;
    let mut sch = Schedule::new(f);
    sch.bind("i", ThreadAxis::BlockIdxX)?;
    let (_, ki) = sch.split("k", 32.min(feat as i64).max(1))?;
    sch.bind(&ki, ThreadAxis::ThreadIdxX)?;
    Ok(sch.into_func())
}

/// Like [`csr_spmm_ir`] but with the schedule driven by `params`: rows are
/// grouped `rows_per_block` per `blockIdx.x`, and the feature loop is split
/// by a vector-width-scaled factor for `threadIdx.x`. Distinct parameters
/// lower to distinct Stage III functions, so the measured evaluator can
/// tell schedule candidates apart by wall clock.
///
/// # Errors
/// Propagates lowering/scheduling errors.
pub fn csr_spmm_ir_with(
    a: &Csr,
    feat: usize,
    params: CsrSpmmParams,
) -> Result<PrimFunc, Box<dyn std::error::Error>> {
    let program = spmm_program(a.rows(), a.cols(), a.nnz(), feat);
    let f = lower(&program)?;
    let mut sch = Schedule::new(f);
    let rpb = params.rows_per_block.clamp(1, a.rows().max(1)) as i64;
    let (io, _ii) = sch.split("i", rpb)?;
    sch.bind(&io, ThreadAxis::BlockIdxX)?;
    let kf = (params.vec_width.max(1) * 8).clamp(1, feat.max(1)) as i64;
    let (_, ki) = sch.split("k", kf)?;
    sch.bind(&ki, ThreadAxis::ThreadIdxX)?;
    Ok(sch.into_func())
}

/// A lowered SpMM ready for repeated compiled execution: the Stage III
/// function plus its tensor bindings, with `C` zero-initialized.
pub struct PreparedSpmm {
    /// Lowered (and, for the CSR arm, scheduled) function.
    pub func: PrimFunc,
    /// Tensor bindings for `exec_func` / `CompiledKernel::run`.
    pub bindings: Bindings,
    /// Output rows.
    pub rows: usize,
    /// Output columns (feature width).
    pub feat: usize,
}

impl PreparedSpmm {
    /// Reset the output buffer to zeros (between repeated timed runs).
    pub fn reset_output(&mut self) {
        bind_zeros(&mut self.bindings, "C", self.rows * self.feat);
    }
}

/// Lower `config` into the Stage III SpMM function at feature width
/// `feat`, binding only the *structure* operands (CSR index buffers, `A`
/// values, hyb buckets). The operand `B` and output `C` stay unbound so
/// the caller can supply them either as whole tensors
/// ([`prepare_spmm`]) or as segmented views over rider-owned storage
/// ([`spmm_execute_views_on`]).
///
/// # Errors
/// Propagates decomposition and lowering errors.
pub fn prepare_spmm_structure(
    a: &Csr,
    feat: usize,
    config: &SpmmConfig,
) -> Result<(PrimFunc, Bindings), Box<dyn std::error::Error>> {
    let mut bindings = Bindings::new();
    let func = match config.col_parts {
        None => csr_spmm_ir_with(a, feat, config.params)?,
        Some(c) => {
            let hyb = Hyb::from_csr(a, c, config.bucket_k)?;
            let program = spmm_program(a.rows(), a.cols(), a.nnz(), feat);
            let mut rules = Vec::new();
            for (pi, part) in hyb.partitions().iter().enumerate() {
                for bucket in &part.buckets {
                    if bucket.is_empty() {
                        continue;
                    }
                    let tag = format!("p{pi}_w{}", bucket.width);
                    rules.push(FormatRewriteRule::bucket_ell(
                        "A",
                        &tag,
                        bucket.width,
                        bucket.len(),
                        a.cols(),
                    ));
                    bind_bucket(
                        &mut bindings,
                        &format!("A_hyb_{tag}"),
                        &format!("hyb_{tag}"),
                        bucket,
                    );
                }
            }
            let decomposed = decompose_format(&program, &rules)?.strip_copies();
            lower(&decomposed)?
        }
    };
    bind_csr(&mut bindings, "A", "J", a);
    Ok((func, bindings))
}

/// Lower `config` into an executable kernel for `a · x`: the scheduled CSR
/// kernel, or the `hyb(c, k)` decomposition via `decompose_format` bucket
/// rewrites (the Figure 11 pipeline), bound and ready to run.
///
/// # Errors
/// Propagates decomposition and lowering errors.
pub fn prepare_spmm(
    a: &Csr,
    x: &Dense,
    config: &SpmmConfig,
) -> Result<PreparedSpmm, Box<dyn std::error::Error>> {
    let feat = x.cols();
    let (func, mut bindings) = prepare_spmm_structure(a, feat, config)?;
    bind_dense(&mut bindings, "B", x);
    bind_zeros(&mut bindings, "C", a.rows() * feat);
    Ok(PreparedSpmm { func, bindings, rows: a.rows(), feat })
}

/// Execute one SpMM launch with `B` and `C` bound as column-segmented
/// views over per-request operands and outputs — the zero-copy
/// counterpart of the stack/split batching path. Request `i` contributes
/// `xs[i].cols()` columns to the stacked width and the kernel writes its
/// result columns directly into `outs[i]` (which must be
/// `a.rows() × xs[i].cols()`, zero-filled). Zero-width requests are
/// skipped; an all-zero-width batch skips the launch. Results are
/// bit-identical to the copying path: view binding changes only address
/// resolution, never per-column reduction order.
///
/// # Errors
/// Propagates lowering, view-validation and execution errors.
pub fn spmm_execute_views_on(
    rt: &Runtime,
    a: &Csr,
    xs: &[&Dense],
    outs: &mut [Dense],
    config: &SpmmConfig,
) -> Result<(), Box<dyn std::error::Error>> {
    let feat: usize = xs.iter().map(|x| x.cols()).sum();
    if feat == 0 {
        return Ok(());
    }
    // Same widening rule as the stacked copy path, so both arms compile
    // the same schedule (and the same cached kernel) at width `feat`.
    let mut wide = *config;
    wide.params.vec_width = config.params.vec_width.max(feat.div_ceil(8));
    let (func, mut structure) = prepare_spmm_structure(a, feat, &wide)?;
    let kernel = rt.compile(&func)?;
    let b_segs: Vec<(&[f32], usize)> =
        xs.iter().filter(|x| x.cols() > 0).map(|x| (x.data(), x.cols())).collect();
    let c_segs: Vec<(&mut [f32], usize)> = outs
        .iter_mut()
        .filter(|o| o.cols() > 0)
        .map(|o| {
            let w = o.cols();
            (o.data_mut(), w)
        })
        .collect();
    let b = ColsView::read(a.cols(), &b_segs)?;
    let c = ColsView::write(a.rows(), c_segs)?;
    let mut views = ViewBindings::from_tensors(&mut structure);
    views.bind_cols("B", b);
    views.bind_cols("C", c);
    kernel.run_views(&HashMap::new(), &mut views)?;
    Ok(())
}

/// Execute `a · x` under a tuned configuration through the slot-compiled
/// executor — the measured-evaluator entry point and the runtime face of a
/// tuning decision.
///
/// # Errors
/// Propagates lowering and execution errors.
pub fn tuned_spmm_execute(
    a: &Csr,
    x: &Dense,
    config: &SpmmConfig,
) -> Result<Dense, Box<dyn std::error::Error>> {
    tuned_spmm_execute_on(Runtime::global(), a, x, config)
}

/// Like [`tuned_spmm_execute`], but compiling through an explicit
/// [`Runtime`] instead of the process-wide global one — the entry point a
/// serving engine with its own kernel cache uses.
///
/// # Errors
/// Propagates lowering and execution errors.
pub fn tuned_spmm_execute_on(
    rt: &Runtime,
    a: &Csr,
    x: &Dense,
    config: &SpmmConfig,
) -> Result<Dense, Box<dyn std::error::Error>> {
    let mut prepared = prepare_spmm(a, x, config)?;
    rt.compile(&prepared.func)?.run(&HashMap::new(), &mut prepared.bindings)?;
    Ok(take_dense(&mut prepared.bindings, "C", a.rows(), x.cols()))
}

/// Execute a *batch* of SpMM requests against one shared adjacency as a
/// single wider kernel launch: the per-request feature matrices are
/// stacked column-wise into one operand of width `Σ feat_i`, one kernel
/// runs at that width (with the schedule's vector split widened to span
/// it), and the output splits back into per-request matrices. This is
/// the serving engine's batching primitive, expressed through the
/// generic op layer — see [`crate::op::SpmmOp`] for the stacking
/// contract.
///
/// Width-0 requests are legal and yield `rows × 0` outputs without
/// joining the stacked launch; an all-empty batch skips the kernel
/// entirely. Results are bit-identical to running each request through
/// [`tuned_spmm_execute`] alone: column stacking only widens the spatial
/// feature axis, leaving each output column's reduction order untouched.
///
/// # Errors
/// Returns an error when any feature matrix's row count differs from
/// `a.cols()`, and propagates lowering/execution errors.
pub fn spmm_batched_execute(
    a: &Csr,
    xs: &[Dense],
    config: &SpmmConfig,
) -> Result<Vec<Dense>, Box<dyn std::error::Error>> {
    spmm_batched_execute_on(Runtime::global(), a, xs, config)
}

/// [`spmm_batched_execute`] through an explicit [`Runtime`].
///
/// # Errors
/// Returns an error when any feature matrix's row count differs from
/// `a.cols()`, and propagates lowering/execution errors.
pub fn spmm_batched_execute_on(
    rt: &Runtime,
    a: &Csr,
    xs: &[Dense],
    config: &SpmmConfig,
) -> Result<Vec<Dense>, Box<dyn std::error::Error>> {
    use crate::op::{SparseOp, SpmmOp};
    SpmmOp::execute_batch_on(rt, a, xs, config)
}

/// Execute the IR-path CSR SpMM through the slot-compiled executor
/// (compile-once/run-many via the global kernel cache, `blockIdx` loops
/// dispatched in parallel). The reference interpreter remains available
/// through [`eval_func`] as the semantics oracle.
///
/// # Errors
/// Propagates lowering and execution errors.
pub fn csr_spmm_execute(a: &Csr, x: &Dense) -> Result<Dense, Box<dyn std::error::Error>> {
    let f = csr_spmm_ir(a, x.cols())?;
    let mut bindings = Bindings::new();
    bind_csr(&mut bindings, "A", "J", a);
    bind_dense(&mut bindings, "B", x);
    bind_zeros(&mut bindings, "C", a.rows() * x.cols());
    exec_func(&f, &HashMap::new(), &mut bindings)?;
    Ok(read_dense(&bindings, "C", a.rows(), x.cols()))
}

/// Like [`csr_spmm_execute`] but through the reference interpreter —
/// kept as the slow oracle for differential testing.
///
/// # Errors
/// Propagates lowering and interpretation errors.
pub fn csr_spmm_interpret(a: &Csr, x: &Dense) -> Result<Dense, Box<dyn std::error::Error>> {
    let f = csr_spmm_ir(a, x.cols())?;
    let mut bindings = Bindings::new();
    bind_csr(&mut bindings, "A", "J", a);
    bind_dense(&mut bindings, "B", x);
    bind_zeros(&mut bindings, "C", a.rows() * x.cols());
    eval_func(&f, &HashMap::new(), &mut bindings)?;
    Ok(read_dense(&bindings, "C", a.rows(), x.cols()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsetir_smat::gen;

    fn power_law_csr(rows: usize, cols: usize, seed: u64) -> Csr {
        let mut rng = gen::rng(seed);
        gen::random_csr_with_row_lengths(
            rows,
            cols,
            |r| {
                use rand::Rng;
                // Heavy-tailed: most rows short, a few huge.
                let u: f64 = r.gen_range(0.0..1.0);
                ((1.0 / (u + 0.002)).powf(0.9) as usize).clamp(1, cols / 2)
            },
            &mut rng,
        )
    }

    #[test]
    fn ir_execution_matches_reference() {
        let mut rng = gen::rng(5);
        let a = gen::random_csr(12, 10, 0.25, &mut rng);
        let x = gen::random_dense(10, 6, &mut rng);
        let got = csr_spmm_execute(&a, &x).unwrap();
        assert!(got.approx_eq(&a.spmm(&x).unwrap(), 1e-4));
    }

    #[test]
    fn tuned_execute_matches_reference_on_both_arms() {
        let mut rng = gen::rng(41);
        let a = gen::random_csr(24, 20, 0.2, &mut rng);
        let x = gen::random_dense(20, 6, &mut rng);
        let want = a.spmm(&x).unwrap();
        for config in [
            SpmmConfig::default_csr(),
            SpmmConfig {
                col_parts: None,
                bucket_k: 0,
                params: CsrSpmmParams { rows_per_block: 2, vec_width: 2, ..Default::default() },
            },
            SpmmConfig { col_parts: Some(2), bucket_k: 3, params: CsrSpmmParams::default() },
            SpmmConfig { col_parts: Some(4), bucket_k: 1, params: CsrSpmmParams::default() },
        ] {
            let got = tuned_spmm_execute(&a, &x, &config).unwrap();
            assert!(got.approx_eq(&want, 1e-3), "config {}", config.label());
        }
    }

    #[test]
    fn batched_execute_is_bit_identical_to_sequential() {
        let mut rng = gen::rng(51);
        let a = gen::random_csr(20, 16, 0.25, &mut rng);
        // Mixed widths including the 0 and 1 edge cases.
        let widths = [3usize, 0, 1, 5];
        let xs: Vec<Dense> =
            widths.iter().map(|&w| gen::random_dense(a.cols(), w, &mut rng)).collect();
        for config in [
            SpmmConfig::default_csr(),
            SpmmConfig { col_parts: Some(2), bucket_k: 2, params: CsrSpmmParams::default() },
        ] {
            let batched = spmm_batched_execute(&a, &xs, &config).unwrap();
            assert_eq!(batched.len(), xs.len());
            for (x, got) in xs.iter().zip(&batched) {
                let want = tuned_spmm_execute(&a, x, &config).unwrap();
                assert_eq!((got.rows(), got.cols()), (want.rows(), want.cols()));
                for (g, w) in got.data().iter().zip(want.data()) {
                    assert_eq!(g.to_bits(), w.to_bits(), "config {}", config.label());
                }
            }
        }
    }

    #[test]
    fn batched_execute_handles_empty_batches() {
        let mut rng = gen::rng(52);
        let a = gen::random_csr(8, 8, 0.3, &mut rng);
        // No requests at all.
        let none = spmm_batched_execute(&a, &[], &SpmmConfig::default_csr()).unwrap();
        assert!(none.is_empty());
        // All-zero-width requests skip the kernel launch entirely.
        let empty = Dense::zeros(a.cols(), 0);
        let out =
            spmm_batched_execute(&a, &[empty.clone(), empty], &SpmmConfig::default_csr()).unwrap();
        assert_eq!(out.len(), 2);
        for o in out {
            assert_eq!((o.rows(), o.cols()), (a.rows(), 0));
        }
    }

    #[test]
    fn batched_execute_rejects_mismatched_rows() {
        let mut rng = gen::rng(53);
        let a = gen::random_csr(8, 8, 0.3, &mut rng);
        let good = gen::random_dense(8, 2, &mut rng);
        let bad = gen::random_dense(9, 2, &mut rng);
        let err = spmm_batched_execute(&a, &[good, bad], &SpmmConfig::default_csr())
            .expect_err("row mismatch must be rejected");
        assert!(err.to_string().contains("request 1"), "{err}");
    }

    #[test]
    fn prepared_spmm_is_idempotent_across_runs() {
        // The measured evaluator reuses one prepared kernel across warmup
        // and timed repeats; with the output reset, every run must agree.
        let mut rng = gen::rng(43);
        let a = gen::random_csr(16, 16, 0.25, &mut rng);
        let x = gen::random_dense(16, 4, &mut rng);
        let config =
            SpmmConfig { col_parts: Some(2), bucket_k: 2, params: CsrSpmmParams::default() };
        let mut prepared = prepare_spmm(&a, &x, &config).unwrap();
        let scalars = HashMap::new();
        exec_func(&prepared.func, &scalars, &mut prepared.bindings).unwrap();
        let first = read_dense(&prepared.bindings, "C", 16, 4);
        prepared.reset_output();
        exec_func(&prepared.func, &scalars, &mut prepared.bindings).unwrap();
        let second = read_dense(&prepared.bindings, "C", 16, 4);
        assert_eq!(first, second);
        assert!(first.approx_eq(&a.spmm(&x).unwrap(), 1e-3));
    }

    #[test]
    fn parameterized_schedules_lower_to_distinct_functions() {
        let mut rng = gen::rng(44);
        let a = gen::random_csr(32, 32, 0.1, &mut rng);
        let f1 = csr_spmm_ir_with(&a, 16, CsrSpmmParams::default()).unwrap();
        let f2 =
            csr_spmm_ir_with(&a, 16, CsrSpmmParams { rows_per_block: 8, ..Default::default() })
                .unwrap();
        use sparsetir_ir::exec::Runtime;
        assert_ne!(Runtime::fingerprint(&f1), Runtime::fingerprint(&f2));
    }

    #[test]
    fn plan_flops_match_nnz() {
        let mut rng = gen::rng(6);
        let a = gen::random_csr(64, 64, 0.1, &mut rng);
        let plan = csr_spmm_plan(&a, 32, CsrSpmmParams::default(), "t");
        let expect = 2.0 * a.nnz() as f64 * 32.0;
        assert!((plan.total_flops() - expect).abs() < 1e-6);
    }

    #[test]
    fn hyb_beats_csr_on_power_law_graphs() {
        // The headline effect of Fig. 13: bucketed hyb wins on skewed
        // degree distributions through compile-time load balancing.
        let spec = GpuSpec::v100();
        let a = power_law_csr(2000, 2000, 7);
        let (max, mean, _) = a.degree_stats();
        assert!(max as f64 > mean * 10.0, "graph should be skewed: max={max} mean={mean}");
        let feat = 64;
        let csr_time =
            simulate_kernel(&spec, &csr_spmm_plan(&a, feat, CsrSpmmParams::default(), "csr"));
        let hyb = Hyb::with_default_k(&a, 1).unwrap();
        let hyb_time = hyb_spmm_time(&spec, &hyb, feat, CsrSpmmParams::default());
        assert!(
            hyb_time.time_ms < csr_time.time_ms,
            "hyb {} vs csr {}",
            hyb_time.time_ms,
            csr_time.time_ms
        );
    }

    #[test]
    fn column_partitioning_improves_l2_hit_rate() {
        // Fig. 12's effect: more column partitions → better locality on B.
        let spec = GpuSpec::v100();
        let a = power_law_csr(4000, 4000, 11);
        let feat = 128;
        let h1 = Hyb::from_csr(&a, 1, 3).unwrap();
        let h8 = Hyb::from_csr(&a, 8, 3).unwrap();
        let r1 = hyb_spmm_time(&spec, &h1, feat, CsrSpmmParams::default());
        let r8 = hyb_spmm_time(&spec, &h8, feat, CsrSpmmParams::default());
        assert!(r8.l2_hit_rate > r1.l2_hit_rate, "l2 {} vs {}", r8.l2_hit_rate, r1.l2_hit_rate);
    }

    #[test]
    fn register_caching_matters() {
        let spec = GpuSpec::v100();
        let a = power_law_csr(1000, 1000, 13);
        let cached = csr_spmm_plan(&a, 64, CsrSpmmParams::default(), "cached");
        let uncached = csr_spmm_plan(
            &a,
            64,
            CsrSpmmParams { register_cache: false, ..Default::default() },
            "uncached",
        );
        let rc = simulate_kernel(&spec, &cached);
        let ru = simulate_kernel(&spec, &uncached);
        assert!(ru.time_ms > rc.time_ms);
    }
}

#[cfg(test)]
mod crosscheck_tests {
    use super::*;
    use sparsetir_smat::gen;
    use std::collections::HashMap;

    /// DESIGN.md §5.5: the simulator plan's block decomposition mirrors the
    /// IR schedule — assert the plan's total FLOPs equal the FLOPs the
    /// interpreter actually executes for the lowered kernel.
    #[test]
    fn plan_flops_match_interpreted_ir_flops() {
        let mut rng = gen::rng(77);
        let a = gen::random_csr(24, 20, 0.2, &mut rng);
        let feat = 6;
        let plan = csr_spmm_plan(&a, feat, CsrSpmmParams::default(), "xcheck");

        let program = spmm_program(a.rows(), a.cols(), a.nnz(), feat);
        let func = lower(&program).expect("lowers");
        let mut bindings = Bindings::new();
        bind_csr(&mut bindings, "A", "J", &a);
        let x = gen::random_dense(a.cols(), feat, &mut rng);
        bind_dense(&mut bindings, "B", &x);
        bind_zeros(&mut bindings, "C", a.rows() * feat);
        let counts = count_ops(&func, &HashMap::new(), &bindings).expect("counts");
        // IR executes exactly mul+add per (nnz, k): 2·nnz·feat flops.
        assert!(
            (counts.flops - plan.total_flops()).abs() < 1e-9,
            "ir {} vs plan {}",
            counts.flops,
            plan.total_flops()
        );
        // And the block decomposition covers every row group.
        assert_eq!(plan.blocks.len(), a.rows().div_ceil(4));
    }

    /// The fusion pass must recognize the SpMM inner loops: the CSR
    /// schedule's feature loop fuses to one `AxpyLanes`, and the hyb
    /// decomposition fuses its init nest (`FillLanes`) plus one
    /// `AxpyLanes` per non-empty bucket — all picked up transparently
    /// through the global kernel cache.
    #[test]
    fn spmm_inner_loops_fuse_to_microkernels() {
        let mut rng = gen::rng(91);
        let a = gen::random_csr(48, 40, 0.15, &mut rng);
        let x = gen::random_dense(40, 8, &mut rng);

        let f = csr_spmm_ir(&a, 8).unwrap();
        let kernel = Runtime::global().compile(&f).unwrap();
        assert_eq!(kernel.fused_kinds(), vec!["AxpyLanes"]);

        let config =
            SpmmConfig { col_parts: Some(2), bucket_k: 2, params: CsrSpmmParams::default() };
        let prepared = prepare_spmm(&a, &x, &config).unwrap();
        let hyb_kernel = Runtime::global().compile(&prepared.func).unwrap();
        let kinds = hyb_kernel.fused_kinds();
        assert!(kinds.contains(&"FillLanes"), "hyb init nest must fuse: {kinds:?}");
        assert!(kinds.iter().filter(|k| **k == "AxpyLanes").count() >= 2, "{kinds:?}");
    }

    /// The compiled executor must agree bit-for-bit with the reference
    /// interpreter on the lowered, scheduled SpMM kernel.
    #[test]
    fn compiled_executor_bit_matches_interpreter() {
        let mut rng = gen::rng(81);
        let a = gen::random_csr(40, 32, 0.15, &mut rng);
        let x = gen::random_dense(32, 8, &mut rng);
        let fast = csr_spmm_execute(&a, &x).unwrap();
        let slow = csr_spmm_interpret(&a, &x).unwrap();
        for (f, s) in fast.data().iter().zip(slow.data()) {
            assert_eq!(f.to_bits(), s.to_bits(), "{f} vs {s}");
        }
    }

    /// The hyb plan's FLOPs equal 2·stored·feat (padding included), which
    /// exceeds the CSR plan's FLOPs by exactly the padding.
    #[test]
    fn hyb_plan_flops_account_for_padding() {
        let mut rng = gen::rng(78);
        let a = gen::random_csr(32, 32, 0.15, &mut rng);
        let feat = 4;
        let hyb = Hyb::with_default_k(&a, 2).unwrap();
        let plans = hyb_spmm_plans(&hyb, feat, CsrSpmmParams::default());
        let total: f64 = plans.iter().map(|p| p.total_flops()).sum();
        let expect = 2.0 * hyb.stored() as f64 * feat as f64;
        assert!((total - expect).abs() < 1e-9, "{total} vs {expect}");
        assert!(total >= 2.0 * a.nnz() as f64 * feat as f64);
    }
}
