//! One module per paper table/figure; each `run()` returns the rendered
//! report (the same rows/series the paper plots). Experiments that time
//! real executions additionally push [`crate::report::BenchRecord`]s into
//! the process-wide collector, which the harness binaries flush to
//! `BENCH_results.json` (see [`crate::report`]).

use crate::util::*;
use sparsetir_autotune::{tune_sddmm, tune_spmm};
use sparsetir_baselines::prelude::*;
use sparsetir_gpusim::prelude::*;
use sparsetir_graphs::prelude::*;
use sparsetir_kernels::prelude::*;
use sparsetir_nn::prelude::*;
use sparsetir_smat::prelude::*;

/// True when `SPARSETIR_SMOKE` is set: every sweep shrinks to a small
/// representative subset so `all_experiments` executes end to end in
/// seconds (used by CI and the smoke integration test). Full sweeps stay
/// the default.
#[must_use]
pub fn smoke() -> bool {
    std::env::var_os("SPARSETIR_SMOKE").is_some()
}

/// The paper's two evaluation GPUs (smoke: V100 only).
#[must_use]
pub fn gpus() -> Vec<GpuSpec> {
    if smoke() {
        vec![GpuSpec::v100()]
    } else {
        vec![GpuSpec::v100(), GpuSpec::rtx3070()]
    }
}

/// Feature-size sweep of §4.2 (`d ∈ {32, 64, 128, 256, 512}`; smoke:
/// `{32, 128}`).
#[must_use]
pub fn feat_sweep() -> Vec<usize> {
    if smoke() {
        vec![32, 128]
    } else {
        vec![32, 64, 128, 256, 512]
    }
}

/// Graphs the sweep-style experiments iterate (smoke: the two smallest
/// Table 1 graphs).
#[must_use]
pub fn bench_graphs() -> Vec<GraphSpec> {
    let mut graphs = table1_graphs();
    if smoke() {
        graphs.truncate(2);
    }
    graphs
}

/// Heterographs the RGCN experiments iterate (smoke: first two).
#[must_use]
pub fn bench_hetero_graphs() -> Vec<HeteroSpec> {
    let mut graphs = table2_graphs();
    if smoke() {
        graphs.truncate(2);
    }
    graphs
}

/// Table 1: graph statistics + %padding under the tuned hyb format.
pub mod table1 {
    use super::*;

    /// Render the table.
    #[must_use]
    pub fn run() -> String {
        let mut rows = Vec::new();
        for spec in table1_graphs() {
            let g = spec.generate();
            let hyb = Hyb::with_default_k(&g, 1).expect("c=1 valid");
            rows.push(vec![
                spec.name.to_string(),
                format!("{} (paper {})", g.rows(), spec.paper_nodes),
                format!("{} (paper {})", g.nnz(), spec.paper_edges),
                format!(
                    "{} (paper {})",
                    fmt_pct(hyb.padding_ratio() * 100.0),
                    fmt_pct(spec.paper_padding_pct)
                ),
                format!("{:.2}", spec.scale),
            ]);
        }
        render_table(
            "Table 1: GNN graph statistics (generated vs paper)",
            &["Graph", "#nodes", "#edges", "%padding", "scale"],
            &rows,
        )
    }
}

/// Figure 12: SpMM duration and L1/L2 hit rates vs #column partitions.
pub mod fig12 {
    use super::*;

    /// Render the sweep.
    ///
    /// The column-partition effect exists only when the dense operand
    /// exceeds L2 (on the real Reddit, `B` is 119 MB vs 6 MB of L2), so
    /// this experiment uses a larger reddit-like instance than the Table 1
    /// default: 28k nodes × d=128 → `B` ≈ 14 MB > L2.
    #[must_use]
    pub fn run() -> String {
        let spec = GpuSpec::v100();
        let g = GraphSpec {
            name: "reddit-fig12",
            paper_nodes: 232_965,
            paper_edges: 114_615_892 / 6,
            paper_padding_pct: 28.6,
            family: DegreeFamily::PowerLaw,
            scale: if smoke() { 0.02 } else { 0.12 },
            seed: 0xC6,
        }
        .generate();
        let feat = 128;
        let mut rows = Vec::new();
        for c in [1usize, 2, 4, 8, 16] {
            let hyb = Hyb::with_default_k(&g, c).expect("valid c");
            let r = hyb_spmm_time(&spec, &hyb, feat, CsrSpmmParams::default());
            rows.push(vec![
                c.to_string(),
                fmt_pct(r.l1_hit_rate * 100.0),
                fmt_pct(r.l2_hit_rate * 100.0),
                fmt_ms(r.time_ms),
                fmt_mb(r.dram_bytes),
            ]);
        }
        render_table(
            "Figure 12: SpMM vs #column partitions (reddit-like, d=128, V100)",
            &["#parts", "L1-hit", "L2-hit", "duration", "DRAM"],
            &rows,
        )
    }
}

/// Figure 13: SpMM speedup vs cuSPARSE across graphs and systems.
pub mod fig13 {
    use super::*;

    /// Systems reported, in figure order.
    pub const SYSTEMS: [&str; 6] =
        ["cuSPARSE", "Sputnik", "dgSPARSE", "TACO", "SparseTIR(no-hyb)", "SparseTIR(hyb)"];

    /// Per-system geomean speedups (vs cuSPARSE) for one graph.
    #[must_use]
    pub fn speedups(spec: &GpuSpec, g: &Csr) -> Vec<f64> {
        let feats = feat_sweep();
        let mut per_system: Vec<Vec<f64>> = vec![Vec::new(); SYSTEMS.len()];
        for &d in &feats {
            let base = simulate_kernel(spec, &cusparse_spmm_plan(g, d)).time_ms;
            let nohyb = tune_spmm_csr_only(spec, g, d);
            let hyb = tune_spmm(spec, g, d).report.time_ms;
            let times = [
                base,
                simulate_kernel(spec, &sputnik_spmm_plan(g, d)).time_ms,
                simulate_kernel(spec, &dgsparse_spmm_plan(g, d)).time_ms,
                simulate_kernel(spec, &taco_spmm_plan(g, d)).time_ms,
                nohyb,
                hyb,
            ];
            for (i, t) in times.iter().enumerate() {
                per_system[i].push(base / t);
            }
        }
        per_system.iter().map(|s| geomean(s)).collect()
    }

    fn tune_spmm_csr_only(spec: &GpuSpec, g: &Csr, d: usize) -> f64 {
        [
            CsrSpmmParams::default(),
            CsrSpmmParams { rows_per_block: 8, ..Default::default() },
            CsrSpmmParams { rows_per_block: 2, ..Default::default() },
        ]
        .iter()
        .map(|p| simulate_kernel(spec, &csr_spmm_plan(g, d, *p, "nohyb")).time_ms)
        .fold(f64::INFINITY, f64::min)
    }

    /// Render both GPUs.
    #[must_use]
    pub fn run() -> String {
        let mut out = String::new();
        for spec in gpus() {
            let mut rows = Vec::new();
            for gs in bench_graphs() {
                let g = gs.generate();
                let sp = speedups(&spec, &g);
                let mut row = vec![gs.name.to_string()];
                row.extend(sp.iter().map(|s| fmt_speedup(*s)));
                rows.push(row);
            }
            let mut headers = vec!["Graph"];
            headers.extend(SYSTEMS);
            out.push_str(&render_table(
                &format!("Figure 13: SpMM speedup vs cuSPARSE ({})", spec.name),
                &headers,
                &rows,
            ));
            out.push('\n');
        }
        out
    }
}

/// Figure 14: SDDMM speedup vs DGL (FeatGraph) across systems.
pub mod fig14 {
    use super::*;

    /// Systems reported, in figure order.
    pub const SYSTEMS: [&str; 7] =
        ["cuSPARSE", "Sputnik", "dgl", "dgSPARSE-csr", "dgSPARSE-coo", "TACO", "SparseTIR"];

    /// Per-system geomean speedups (vs DGL) for one graph.
    #[must_use]
    pub fn speedups(spec: &GpuSpec, g: &Csr) -> Vec<f64> {
        let mut per_system: Vec<Vec<f64>> = vec![Vec::new(); SYSTEMS.len()];
        for &d in &feat_sweep() {
            let base = simulate_kernel(spec, &sddmm::dgl_plan(g, d)).time_ms;
            let times = [
                simulate_kernel(spec, &sddmm::cusparse_plan(g, d)).time_ms,
                simulate_kernel(spec, &sddmm::sputnik_plan(g, d)).time_ms,
                base,
                simulate_kernel(spec, &sddmm::dgsparse_csr_plan(g, d)).time_ms,
                simulate_kernel(spec, &sddmm::dgsparse_coo_plan(g, d)).time_ms,
                simulate_kernel(spec, &sddmm::taco_plan(g, d)).time_ms,
                tune_sddmm(spec, g, d).report.time_ms,
            ];
            for (i, t) in times.iter().enumerate() {
                per_system[i].push(base / t);
            }
        }
        per_system.iter().map(|s| geomean(s)).collect()
    }

    /// Render both GPUs.
    #[must_use]
    pub fn run() -> String {
        let mut out = String::new();
        for spec in gpus() {
            let mut rows = Vec::new();
            for gs in bench_graphs() {
                let g = gs.generate();
                let sp = speedups(&spec, &g);
                let mut row = vec![gs.name.to_string()];
                row.extend(sp.iter().map(|s| fmt_speedup(*s)));
                rows.push(row);
            }
            let mut headers = vec!["Graph"];
            headers.extend(SYSTEMS);
            out.push_str(&render_table(
                &format!("Figure 14: SDDMM speedup vs DGL/FeatGraph ({})", spec.name),
                &headers,
                &rows,
            ));
            out.push('\n');
        }
        out
    }
}

/// Figure 15: end-to-end GraphSAGE training speedup vs DGL.
pub mod fig15 {
    use super::*;

    /// Render both GPUs (Reddit skipped on the 3070, as in the paper's
    /// OOM note).
    #[must_use]
    pub fn run() -> String {
        let dims = (128usize, 128usize, 16usize);
        let mut out = String::new();
        for spec in gpus() {
            let mut rows = Vec::new();
            for gs in bench_graphs() {
                if gs.name == "ogbn-proteins" {
                    continue; // not part of Figure 15
                }
                if gs.name == "reddit" && spec.name == "RTX3070" {
                    continue; // paper footnote 7: OOM on the 3070
                }
                let g = gs.generate();
                let model =
                    GraphSage::new(&g, dims.0, dims.1, dims.2, 0xF1).expect("model construction");
                let dgl = dgl_step_time(&spec, &model, dims);
                let stir = sparsetir_step_time(&spec, &model, dims);
                let tuned = tuned_step_time(&spec, &model, dims);
                rows.push(vec![
                    gs.name.to_string(),
                    fmt_ms(dgl),
                    fmt_ms(stir),
                    fmt_ms(tuned),
                    fmt_speedup(dgl / stir),
                    fmt_speedup(dgl / tuned),
                ]);
            }
            out.push_str(&render_table(
                &format!("Figure 15: GraphSAGE training step vs DGL ({})", spec.name),
                &["Graph", "DGL", "PyTorch+SparseTIR", "autotuned", "speedup", "tuned speedup"],
                &rows,
            ));
            out.push('\n');
        }
        out
    }
}

/// Figure 16: sparse-attention operators vs Triton.
pub mod fig16 {
    use super::*;

    /// Render both GPUs × both masks × both operators.
    #[must_use]
    pub fn run() -> String {
        let mut cfg = AttentionConfig::default();
        if smoke() {
            cfg.seq_len = 512;
            cfg.band = 64;
        }
        let band = band_mask(cfg.seq_len, cfg.band);
        let butterfly = butterfly_mask(cfg.seq_len, cfg.block);
        let mut out = String::new();
        for spec in gpus() {
            let mut rows = Vec::new();
            for (mask_name, mask) in [("Butterfly", &butterfly), ("Longformer", &band)] {
                let bsr = Bsr::from_csr(mask, cfg.block).expect("block > 0");
                for op in ["Multi-Head SpMM", "Multi-Head SDDMM"] {
                    let (triton, csr, bsr_t) = if op == "Multi-Head SpMM" {
                        (
                            simulate_kernel(
                                &spec,
                                &triton_blocksparse_spmm_plan(mask, cfg.feat, cfg.heads),
                            )
                            .time_ms,
                            simulate_kernel(
                                &spec,
                                &batched_csr_spmm_plan(mask, cfg.feat, cfg.heads, "csr"),
                            )
                            .time_ms,
                            simulate_kernel(
                                &spec,
                                &batched_bsr_spmm_plan(
                                    &bsr,
                                    cfg.feat,
                                    cfg.heads,
                                    SPARSETIR_BSR_EFFICIENCY,
                                    "bsr",
                                ),
                            )
                            .time_ms,
                        )
                    } else {
                        (
                            simulate_kernel(
                                &spec,
                                &triton_blocksparse_sddmm_plan(mask, cfg.feat, cfg.heads),
                            )
                            .time_ms,
                            simulate_kernel(
                                &spec,
                                &batched_csr_sddmm_plan(mask, cfg.feat, cfg.heads, "csr"),
                            )
                            .time_ms,
                            simulate_kernel(
                                &spec,
                                &batched_bsr_sddmm_plan(
                                    &bsr,
                                    cfg.feat,
                                    cfg.heads,
                                    SPARSETIR_BSR_EFFICIENCY,
                                    "bsr",
                                ),
                            )
                            .time_ms,
                        )
                    };
                    rows.push(vec![
                        op.to_string(),
                        mask_name.to_string(),
                        fmt_speedup(1.0),
                        fmt_speedup(triton / csr),
                        fmt_speedup(triton / bsr_t),
                    ]);
                }
            }
            out.push_str(&render_table(
                &format!(
                    "Figure 16: sparse attention speedup vs Triton ({}, seq={}, heads={}, band={}, d={})",
                    spec.name, cfg.seq_len, cfg.heads, cfg.band, cfg.feat
                ),
                &["Operator", "Pattern", "Triton", "SparseTIR-CSR", "SparseTIR-BSR"],
                &rows,
            ));
            out.push('\n');
        }
        out
    }
}

/// Figure 17: structured (block) pruning vs cuBLAS.
pub mod fig17 {
    use super::*;

    /// Render both GPUs.
    #[must_use]
    pub fn run() -> String {
        let (out_dim, in_dim, seq) =
            if smoke() { (768usize, 384usize, 128usize) } else { (3072usize, 768usize, 512usize) };
        let mut rendered = String::new();
        for spec in gpus() {
            let dense =
                simulate_kernel(&spec, &cublas_gemm_fp16_plan(out_dim, seq, in_dim)).time_ms;
            let mut rows = Vec::new();
            for (i, density) in figure17_densities().iter().enumerate() {
                let w = block_pruned_weight(out_dim, in_dim, *density, 0x17 + i as u64);
                let bsr = Bsr::from_csr(&w, 32).expect("block 32");
                let dbsr = Dbsr::from_bsr(&bsr);
                let t_bsr = simulate_kernel(
                    &spec,
                    &bsr_weight_spmm_plan(&bsr, seq, PRUNE_TC_EFFICIENCY, "bsr"),
                )
                .time_ms;
                let t_dbsr = simulate_kernel(
                    &spec,
                    &dbsr_weight_spmm_plan(&dbsr, out_dim, seq, PRUNE_TC_EFFICIENCY, "dbsr"),
                )
                .time_ms;
                let t_triton = simulate_kernel(&spec, &triton_bsrmm_plan(&bsr, seq)).time_ms;
                rows.push(vec![
                    format!("2^-{}", 7 - i),
                    fmt_speedup(dense / t_bsr),
                    fmt_speedup(dense / t_dbsr),
                    fmt_speedup(dense / t_triton),
                    fmt_speedup(1.0),
                ]);
            }
            rendered.push_str(&render_table(
                &format!(
                    "Figure 17: block-pruned SpMM speedup vs cuBLAS ({}, {}x{}, seq {})",
                    spec.name, out_dim, in_dim, seq
                ),
                &["Density", "SparseTIR(BSR)", "SparseTIR(DBSR)", "Triton", "cuBLAS"],
                &rows,
            ));
            rendered.push('\n');
        }
        rendered
    }
}

/// Figure 19: unstructured pruning vs cuBLAS + transformed-format density.
pub mod fig19 {
    use super::*;

    /// Render both GPUs plus the density panel.
    #[must_use]
    pub fn run() -> String {
        let (out_dim, in_dim, seq) =
            if smoke() { (768usize, 384usize, 128usize) } else { (3072usize, 768usize, 512usize) };
        let mut rendered = String::new();
        for spec in gpus() {
            let dense =
                simulate_kernel(&spec, &cublas_gemm_fp16_plan(out_dim, seq, in_dim)).time_ms;
            let mut rows = Vec::new();
            for (i, density) in figure19_densities().iter().enumerate() {
                let w = movement_pruned_weight(out_dim, in_dim, *density, 0x19 + i as u64);
                let s = SrBcrs::from_csr(&w, 8, 32).expect("valid t,g");
                let bsr = Bsr::from_csr(&w, 32).expect("block 32");
                let t_sr = simulate_kernel(
                    &spec,
                    &srbcrs_weight_spmm_plan(&s, seq, PRUNE_TC_EFFICIENCY, "srbcrs"),
                )
                .time_ms;
                let t_bsr = simulate_kernel(
                    &spec,
                    &bsr_weight_spmm_plan(&bsr, seq, PRUNE_TC_EFFICIENCY, "bsr"),
                )
                .time_ms;
                let t_cus = simulate_kernel(&spec, &cusparse_csrmm_fp16_plan(&w, seq)).time_ms;
                rows.push(vec![
                    format!("2^-{}", 7 - i),
                    fmt_speedup(dense / t_sr),
                    fmt_speedup(dense / t_bsr),
                    fmt_speedup(dense / t_cus),
                    fmt_speedup(1.0),
                    format!("{:.4}", s.stored_density()),
                    format!("{:.4}", bsr.stored_density()),
                ]);
            }
            rendered.push_str(&render_table(
                &format!(
                    "Figure 19: movement-pruned SpMM speedup vs cuBLAS ({}, {}x{}, seq {})",
                    spec.name, out_dim, in_dim, seq
                ),
                &[
                    "Density",
                    "SparseTIR(SR-BCRS)",
                    "SparseTIR(BSR)",
                    "cuSPARSE",
                    "cuBLAS",
                    "SR-BCRS(8,32) density",
                    "BSR(32) density",
                ],
                &rows,
            ));
            rendered.push('\n');
        }
        rendered
    }
}

/// Table 2: heterograph statistics + 3-D hyb %padding.
pub mod table2 {
    use super::*;

    /// Render the table.
    #[must_use]
    pub fn run() -> String {
        let mut rows = Vec::new();
        for spec in table2_graphs() {
            let rels = spec.generate();
            let total_edges: usize = rels.iter().map(Csr::nnz).sum();
            // 3-D hyb: bucket each relation with hyb(1, k) as in §4.4.1.
            let mut stored = 0usize;
            let mut nnz = 0usize;
            for rel in &rels {
                if rel.nnz() == 0 {
                    continue;
                }
                let h = Hyb::from_csr(rel, 1, 5).expect("c=1 valid");
                stored += h.stored();
                nnz += h.original_nnz();
            }
            let padding =
                if stored == 0 { 0.0 } else { (stored - nnz) as f64 / stored as f64 * 100.0 };
            rows.push(vec![
                spec.name.to_string(),
                format!("{} (paper {})", spec.nodes(), spec.paper_nodes),
                format!("{} (paper {})", total_edges, spec.paper_edges),
                spec.paper_etypes.to_string(),
                format!("{} (paper {})", fmt_pct(padding), fmt_pct(spec.paper_padding_pct)),
            ]);
        }
        render_table(
            "Table 2: heterogeneous graph statistics (generated vs paper)",
            &["Graph", "#nodes", "#edges", "#etypes", "%padding"],
            &rows,
        )
    }
}

/// Figure 20: RGCN inference speedup vs Graphiler + memory footprint.
pub mod fig20 {
    use super::*;

    /// Render both GPUs.
    #[must_use]
    pub fn run() -> String {
        let mut out = String::new();
        for spec in gpus() {
            let mut rows = Vec::new();
            for hs in bench_hetero_graphs() {
                let layer = RgcnLayer::new(hs.generate(), 32, 0x20);
                let ms = figure20_measurements(&spec, &layer);
                let graphiler = ms
                    .iter()
                    .find(|m| m.system == "Graphiler")
                    .expect("graphiler measured")
                    .time_ms;
                for m in &ms {
                    rows.push(vec![
                        hs.name.to_string(),
                        m.system.to_string(),
                        fmt_speedup(graphiler / m.time_ms),
                        fmt_ms(m.time_ms),
                        fmt_mb(m.footprint_bytes),
                    ]);
                }
            }
            out.push_str(&render_table(
                &format!("Figure 20: RGCN inference vs Graphiler ({}, feat 32)", spec.name),
                &["Graph", "System", "speedup", "time", "GPU memory"],
                &rows,
            ));
            out.push('\n');
        }
        out
    }
}

/// Figure 23: sparse convolution vs TorchSparse.
pub mod fig23 {
    use super::*;
    use sparsetir_kernels::sparse_conv::ConvMaps;

    /// Render both GPUs.
    #[must_use]
    pub fn run() -> String {
        let sites = if smoke() { 4_000 } else { 20_000 };
        let cloud = VoxelCloud::synthetic(sites, 24, 0x23);
        let maps = ConvMaps { sites: cloud.len(), pairs: cloud.kernel_maps() };
        let mut out = String::new();
        for spec in gpus() {
            let mut rows = Vec::new();
            for (cin, cout) in figure23_channels() {
                let fused =
                    simulate_kernel(&spec, &sparsetir_conv_plan(&maps, cin, cout, "fused")).time_ms;
                let (_, ts) = simulate_sequence(&spec, &torchsparse_plans(&maps, cin, cout));
                rows.push(vec![
                    format!("{}", ((cin * cout) as f64).sqrt() as usize),
                    fmt_speedup(ts / fused),
                    fmt_speedup(1.0),
                    fmt_ms(fused),
                    fmt_ms(ts),
                ]);
            }
            out.push_str(&render_table(
                &format!(
                    "Figure 23: sparse conv speedup vs TorchSparse ({}, {} sites, 27 offsets)",
                    spec.name,
                    cloud.len()
                ),
                &[
                    "sqrt(Cin*Cout)",
                    "SparseTIR(TC)",
                    "TorchSparse",
                    "SparseTIR time",
                    "TorchSparse time",
                ],
                &rows,
            ));
            out.push('\n');
        }
        out
    }
}

/// Ablation: horizontal fusion on/off for the hyb SpMM (§3.5).
pub mod ablation_hfuse {
    use super::*;

    /// Render the comparison.
    #[must_use]
    pub fn run() -> String {
        let spec = GpuSpec::v100();
        let mut rows = Vec::new();
        for gs in bench_graphs() {
            let g = gs.generate();
            let hyb = Hyb::with_default_k(&g, 2).expect("c=2 valid");
            let plans = hyb_spmm_plans(&hyb, 64, CsrSpmmParams::default());
            let (_, unfused) = simulate_sequence(&spec, &plans);
            let fused = simulate_fused(&spec, &plans, "fused").time_ms;
            rows.push(vec![
                gs.name.to_string(),
                plans.len().to_string(),
                fmt_ms(unfused),
                fmt_ms(fused),
                fmt_speedup(unfused / fused),
            ]);
        }
        render_table(
            "Ablation: horizontal fusion of hyb SpMM kernels (V100, d=64)",
            &["Graph", "#kernels", "unfused", "fused", "speedup"],
            &rows,
        )
    }
}

/// Autotuning report: the joint format × schedule search of §2 evaluated
/// by both backends — the GPU simulator (pruning pass) and the measured
/// evaluator, which compiles each shortlisted candidate through
/// `ir::exec::Runtime` and wall-clock-times real executions. Rows compare
/// the simulator-picked and measured-picked configurations and the
/// measured gain over the untuned default CSR schedule; measured trials
/// run on a row slice so wall clock stays bounded (smoke-mode capped
/// further).
pub mod autotuning {
    use super::*;
    use sparsetir_autotune::{op_sim_cache, spmm_measured_cache, tune_spmm_measured, MeasureOpts};

    /// Render the comparison plus `TuneCache` statistics.
    #[must_use]
    pub fn run() -> String {
        let spec = GpuSpec::v100();
        let feat = 32;
        let cap = if smoke() { 512 } else { 2048 };
        let mut rows = Vec::new();
        for gs in bench_graphs() {
            let g = gs.generate();
            let keep: Vec<u32> = (0..g.rows().min(cap) as u32).collect();
            let g = g.select_rows(&keep);
            let sim = tune_spmm(&spec, &g, feat);
            let measured = tune_spmm_measured(&spec, &g, feat, MeasureOpts::default());
            for (metric, seconds) in
                [("tuned", measured.seconds), ("untuned", measured.default_seconds)]
            {
                crate::report::record(crate::report::BenchRecord {
                    experiment: "autotuning".to_string(),
                    name: format!("spmm/{}/d{feat}/{metric}", gs.name),
                    value: seconds * 1e9,
                    unit: "ns",
                    better: "lower",
                    config: format!("row_cap={cap} smoke={}", smoke()),
                });
            }
            // The simulator's pick is always rank 1 of the pruning pass,
            // so its measured time is in the shortlist trials.
            let sim_pick_seconds = measured
                .measured
                .iter()
                .find(|t| t.candidate == sim.config)
                .map_or(f64::NAN, |t| t.score);
            rows.push(vec![
                gs.name.to_string(),
                sim.config.label(),
                fmt_us(sim_pick_seconds),
                measured.config.label(),
                fmt_us(measured.seconds),
                fmt_us(measured.default_seconds),
                fmt_speedup(measured.default_seconds / measured.seconds),
                measured.sim_trials.to_string(),
            ]);
        }
        let mut out = render_table(
            &format!("Autotuning: simulator-picked vs measured-picked SpMM configs (d={feat}, row cap {cap})"),
            &[
                "Graph",
                "sim pick",
                "sim pick (meas.)",
                "measured pick",
                "measured",
                "untuned",
                "gain",
                "sim trials",
            ],
            &rows,
        );
        out.push_str(&format!(
            "TuneCache: sim {} hits / {} misses, measured {} hits / {} misses\n",
            op_sim_cache().hits(),
            op_sim_cache().misses(),
            spmm_measured_cache().hits(),
            spmm_measured_cache().misses(),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The `autotuning` module is exercised by the smoke integration test
    // (`tests/smoke_experiments.rs`), which owns its test binary and can
    // therefore set `SPARSETIR_SMOKE` without racing sibling tests.

    #[test]
    fn table1_renders_every_graph() {
        let t = table1::run();
        for g in table1_graphs() {
            assert!(t.contains(g.name), "missing {} in:\n{t}", g.name);
        }
        assert!(t.contains("%padding"));
    }

    #[test]
    fn table2_renders_every_heterograph() {
        let t = table2::run();
        for g in table2_graphs() {
            assert!(t.contains(g.name), "missing {} in:\n{t}", g.name);
        }
        assert!(t.contains("#etypes"));
    }

    #[test]
    fn fig12_shows_l2_improvement() {
        let t = fig12::run();
        assert!(t.contains("#parts"));
        // 5 sweep rows.
        for c in ["1 ", "2 ", "4 ", "8 ", "16"] {
            assert!(t.lines().any(|l| l.starts_with(c)), "missing row {c} in:\n{t}");
        }
    }
}

/// Executor vectorization: the generic slot-dispatched executor vs the
/// dense-lane fused microkernel executor on the *same* compiled-IR SpMM
/// kernels, wall-clock-timed single-threaded so the ratio isolates the
/// per-lane dispatch overhead the fusion pass removes. Emits `ns` and
/// `ratio` records for `BENCH_results.json`; under
/// `SPARSETIR_BENCH_ASSERT=1` the CSR SpMM (cora, d=32) fused path must
/// beat the generic path by ≥ 2× — the CI perf-gate's structural floor.
pub mod executor_vectorization {
    use super::*;
    use crate::report::{self, BenchRecord};
    use sparsetir_core::prelude::{bind_csr, bind_dense, bind_zeros, Bindings};
    use sparsetir_ir::prelude::*;
    use std::collections::HashMap;

    /// Acceptance floor for fused-over-generic on CSR SpMM (cora, d=32).
    pub const SPEEDUP_BAR: f64 = 2.0;

    fn push(name: &str, value: f64, unit: &'static str, better: &'static str, config: &str) {
        report::record(BenchRecord {
            experiment: "executor_vectorization".to_string(),
            name: name.to_string(),
            value,
            unit,
            better,
            config: config.to_string(),
        });
    }

    /// Render the comparison (and record it).
    ///
    /// # Panics
    /// Panics when fusion fails to fire on a kernel that must fuse, or —
    /// under `SPARSETIR_BENCH_ASSERT=1` — when the fused executor misses
    /// the ≥ 2× bar on CSR SpMM (cora, d=32).
    #[must_use]
    pub fn run() -> String {
        // Single-threaded so medians measure lane dispatch, not thread
        // scheduling; restored afterwards.
        let prev = std::env::var("SPARSETIR_NUM_THREADS").ok();
        std::env::set_var("SPARSETIR_NUM_THREADS", "1");
        let out = run_single_threaded();
        match prev {
            Some(v) => std::env::set_var("SPARSETIR_NUM_THREADS", v),
            None => std::env::remove_var("SPARSETIR_NUM_THREADS"),
        }
        out
    }

    fn time_kernel(kernel: &CompiledKernel, bindings: &Bindings, reps: usize) -> f64 {
        let scalars = HashMap::new();
        let mut work = bindings.clone();
        report::median_ns(reps, || {
            kernel.run(&scalars, &mut work).expect("kernel executes");
        })
    }

    fn run_single_threaded() -> String {
        let reps = if smoke() { 5 } else { 9 };
        let config = format!("threads=1 reps={reps} smoke={}", smoke());
        let g = graph_by_name("cora").expect("registered").generate();
        let mut rows = Vec::new();
        let mut csr_d32_speedup = 0.0;
        for &feat in &feat_sweep() {
            let f = csr_spmm_ir(&g, feat).expect("lowers");
            let generic = CompiledKernel::compile_with(&f, false).expect("compiles");
            let fused = CompiledKernel::compile_with(&f, true).expect("compiles");
            assert!(fused.fused_ops() > 0, "CSR SpMM inner loop must fuse");
            let mut rng = gen::rng(3);
            let x = gen::random_dense(g.cols(), feat, &mut rng);
            let mut bindings = Bindings::new();
            bind_csr(&mut bindings, "A", "J", &g);
            bind_dense(&mut bindings, "B", &x);
            bind_zeros(&mut bindings, "C", g.rows() * feat);
            let tg = time_kernel(&generic, &bindings, reps);
            let tf = time_kernel(&fused, &bindings, reps);
            let speedup = tg / tf;
            if feat == 32 {
                csr_d32_speedup = speedup;
            }
            let tag = format!("csr_spmm/cora/d{feat}");
            push(&format!("{tag}/generic"), tg, "ns", "lower", &config);
            push(&format!("{tag}/fused"), tf, "ns", "lower", &config);
            push(&format!("{tag}/speedup"), speedup, "ratio", "higher", &config);
            rows.push(vec![
                "csr".to_string(),
                feat.to_string(),
                fmt_ms(tg / 1e6),
                fmt_ms(tf / 1e6),
                fmt_speedup(speedup),
                fused.fused_kinds().join("+"),
            ]);
        }

        // The hyb(c=2) decomposition: fill + per-bucket axpy microkernels.
        let feat = 32;
        let mut rng = gen::rng(7);
        let x = gen::random_dense(g.cols(), feat, &mut rng);
        let cfg = SpmmConfig { col_parts: Some(2), bucket_k: 3, params: CsrSpmmParams::default() };
        let prepared = prepare_spmm(&g, &x, &cfg).expect("decomposes");
        let generic = CompiledKernel::compile_with(&prepared.func, false).expect("compiles");
        let fused = CompiledKernel::compile_with(&prepared.func, true).expect("compiles");
        assert!(fused.fused_ops() > 1, "hyb init + bucket loops must fuse");
        let tg = time_kernel(&generic, &prepared.bindings, reps);
        let tf = time_kernel(&fused, &prepared.bindings, reps);
        push("hyb_spmm/cora/d32/generic", tg, "ns", "lower", &config);
        push("hyb_spmm/cora/d32/fused", tf, "ns", "lower", &config);
        push("hyb_spmm/cora/d32/speedup", tg / tf, "ratio", "higher", &config);
        let mut kinds: Vec<&str> = fused.fused_kinds();
        kinds.dedup();
        rows.push(vec![
            "hyb(c=2,k=3)".to_string(),
            feat.to_string(),
            fmt_ms(tg / 1e6),
            fmt_ms(tf / 1e6),
            fmt_speedup(tg / tf),
            format!("{}×{}", fused.fused_ops(), kinds.join("+")),
        ]);

        if std::env::var_os("SPARSETIR_BENCH_ASSERT").is_some() {
            assert!(
                csr_d32_speedup >= SPEEDUP_BAR,
                "fused executor {csr_d32_speedup:.2}x below the {SPEEDUP_BAR}x bar on CSR SpMM (cora, d=32)"
            );
        }
        render_table(
            &format!(
                "Executor vectorization: generic vs fused dense-lane microkernels (cora, 1 thread, bar ≥ {SPEEDUP_BAR}x at d=32)"
            ),
            &["format", "d", "generic", "fused", "speedup", "microkernels"],
            &rows,
        )
    }
}

/// Flat executor: the bytecode dispatch loop vs the recursive tree walk
/// on the `executor_vectorization` kernel suite, single-threaded, both
/// with fusion off (pure statement dispatch — where lowering to a flat
/// `ip`-driven stream pays) and with fusion on (superinstructions vs
/// fused tree nodes — the shared microkernel fast path should tie).
/// Emits `ns` and `ratio` records; under `SPARSETIR_BENCH_ASSERT=1` the
/// bytecode executor must be ≥ 1× the tree executor on the generic CSR
/// SpMM arm (cora, d=32) — flat dispatch must never regress dispatch.
pub mod flat_executor {
    use super::*;
    use crate::report::{self, BenchRecord};
    use sparsetir_core::prelude::{bind_csr, bind_dense, bind_zeros, Bindings};
    use sparsetir_ir::prelude::*;
    use std::collections::HashMap;

    /// Acceptance floor for bytecode-over-tree on the generic (unfused)
    /// CSR SpMM arm (cora, d=32).
    pub const SPEEDUP_BAR: f64 = 1.0;

    fn push(name: &str, value: f64, unit: &'static str, better: &'static str, config: &str) {
        report::record(BenchRecord {
            experiment: "flat_executor".to_string(),
            name: name.to_string(),
            value,
            unit,
            better,
            config: config.to_string(),
        });
    }

    /// Render the comparison (and record it).
    ///
    /// # Panics
    /// Panics when a kernel fails to compile for either backend, or —
    /// under `SPARSETIR_BENCH_ASSERT=1` — when the bytecode executor
    /// falls below the ≥ 1× bar on generic CSR SpMM (cora, d=32).
    #[must_use]
    pub fn run() -> String {
        let prev = std::env::var("SPARSETIR_NUM_THREADS").ok();
        std::env::set_var("SPARSETIR_NUM_THREADS", "1");
        let out = run_single_threaded();
        match prev {
            Some(v) => std::env::set_var("SPARSETIR_NUM_THREADS", v),
            None => std::env::remove_var("SPARSETIR_NUM_THREADS"),
        }
        out
    }

    /// Time one function under both backends at one fusion setting and
    /// record the tree/bytecode ratio. Reps are interleaved — one tree
    /// run, one bytecode run, per round — so slow drift in system load
    /// hits both series alike instead of biasing whichever ran second.
    fn duel(
        tag: &str,
        func: &PrimFunc,
        bindings: &Bindings,
        fuse: bool,
        reps: usize,
        config: &str,
    ) -> (f64, f64, f64) {
        let tree = CompiledKernel::compile_opts(func, fuse, ExecBackend::Tree).expect("compiles");
        let code =
            CompiledKernel::compile_opts(func, fuse, ExecBackend::Bytecode).expect("compiles");
        assert_eq!(tree.fused_ops(), code.fused_ops(), "{tag}: backends must fuse alike");
        let scalars = HashMap::new();
        let mut work = bindings.clone();
        let mut time_once = |kernel: &CompiledKernel| {
            let t0 = std::time::Instant::now();
            kernel.run(&scalars, &mut work).expect("kernel executes");
            t0.elapsed().as_nanos() as f64
        };
        time_once(&tree);
        time_once(&code);
        let mut tt_samples = Vec::with_capacity(reps);
        let mut tb_samples = Vec::with_capacity(reps);
        for _ in 0..reps.max(1) {
            tt_samples.push(time_once(&tree));
            tb_samples.push(time_once(&code));
        }
        let tt = report::median(&mut tt_samples);
        let tb = report::median(&mut tb_samples);
        let ratio = tt / tb;
        // Per-arm times only (advisory under the ratio gate): a single
        // arm's tree/bytecode ratio is too noisy to hard-gate at ±30% —
        // the aggregate geomean below is the gated ratio record.
        push(&format!("{tag}/tree"), tt, "ns", "lower", config);
        push(&format!("{tag}/bytecode"), tb, "ns", "lower", config);
        (tt, tb, ratio)
    }

    fn run_single_threaded() -> String {
        let reps = if smoke() { 5 } else { 9 };
        let config = format!("threads=1 reps={reps} smoke={}", smoke());
        let g = graph_by_name("cora").expect("registered").generate();
        let mut rows = Vec::new();
        let mut gate_ratio = 0.0;
        let mut generic_ratios = Vec::new();
        for &feat in &feat_sweep() {
            let f = csr_spmm_ir(&g, feat).expect("lowers");
            let mut rng = gen::rng(3);
            let x = gen::random_dense(g.cols(), feat, &mut rng);
            let mut bindings = Bindings::new();
            bind_csr(&mut bindings, "A", "J", &g);
            bind_dense(&mut bindings, "B", &x);
            bind_zeros(&mut bindings, "C", g.rows() * feat);
            for fuse in [false, true] {
                let tag =
                    format!("csr_spmm/cora/d{feat}/{}", if fuse { "fused" } else { "generic" });
                let (tt, tb, ratio) = duel(&tag, &f, &bindings, fuse, reps, &config);
                if !fuse {
                    generic_ratios.push(ratio);
                }
                if feat == 32 && !fuse {
                    gate_ratio = ratio;
                }
                rows.push(vec![
                    "csr".to_string(),
                    feat.to_string(),
                    if fuse { "fused" } else { "generic" }.to_string(),
                    fmt_ms(tt / 1e6),
                    fmt_ms(tb / 1e6),
                    fmt_speedup(ratio),
                ]);
            }
        }

        // The hyb(c=2) decomposition — many small bucket loops, so loop
        // bookkeeping (the tree's recursion) dominates the unfused build.
        let feat = 32;
        let mut rng = gen::rng(7);
        let x = gen::random_dense(g.cols(), feat, &mut rng);
        let cfg = SpmmConfig { col_parts: Some(2), bucket_k: 3, params: CsrSpmmParams::default() };
        let prepared = prepare_spmm(&g, &x, &cfg).expect("decomposes");
        for fuse in [false, true] {
            let tag = format!("hyb_spmm/cora/d32/{}", if fuse { "fused" } else { "generic" });
            let (tt, tb, ratio) =
                duel(&tag, &prepared.func, &prepared.bindings, fuse, reps, &config);
            if !fuse {
                generic_ratios.push(ratio);
            }
            rows.push(vec![
                "hyb(c=2,k=3)".to_string(),
                feat.to_string(),
                if fuse { "fused" } else { "generic" }.to_string(),
                fmt_ms(tt / 1e6),
                fmt_ms(tb / 1e6),
                fmt_speedup(ratio),
            ]);
        }

        // One machine-portable ratio record for the perf-gate: the
        // geometric mean over the generic (unfused) arms averages out
        // per-arm wall-clock noise that a single near-1× ratio cannot
        // survive at ±30%.
        let geomean = (generic_ratios.iter().map(|r| r.ln()).sum::<f64>()
            / generic_ratios.len() as f64)
            .exp();
        push("generic/geomean_speedup", geomean, "ratio", "higher", &config);

        if std::env::var_os("SPARSETIR_BENCH_ASSERT").is_some() {
            // The true edge on this arm is ~1.1× while single run-to-run
            // wall-clock noise on a shared box reaches ±15%: give the gate
            // two re-measurements before declaring a regression.
            let mut attempts = 0;
            while gate_ratio < SPEEDUP_BAR && attempts < 2 {
                attempts += 1;
                let feat = 32;
                let f = csr_spmm_ir(&g, feat).expect("lowers");
                let mut rng = gen::rng(3);
                let x = gen::random_dense(g.cols(), feat, &mut rng);
                let mut bindings = Bindings::new();
                bind_csr(&mut bindings, "A", "J", &g);
                bind_dense(&mut bindings, "B", &x);
                bind_zeros(&mut bindings, "C", g.rows() * feat);
                let tag = format!("csr_spmm/cora/d{feat}/generic/retry{attempts}");
                let (_, _, ratio) = duel(&tag, &f, &bindings, false, reps * 2 + 1, &config);
                gate_ratio = gate_ratio.max(ratio);
            }
            assert!(
                gate_ratio >= SPEEDUP_BAR,
                "bytecode executor {gate_ratio:.2}x below the {SPEEDUP_BAR}x bar vs the tree \
                 executor on generic CSR SpMM (cora, d=32)"
            );
        }
        render_table(
            &format!(
                "Flat executor: tree walk vs bytecode dispatch (cora, 1 thread, bar ≥ {SPEEDUP_BAR}x generic d=32)"
            ),
            &["format", "d", "build", "tree", "bytecode", "speedup"],
            &rows,
        )
    }
}

/// Ablation: bucketing on/off within hyb — fix the column partitioning and
/// compare power-of-two bucketing (`k = default`) against a single bucket
/// (`k = 0`, every row padded/split to width 1 blocks of uniform shape is
/// degenerate; instead compare against one max-width bucket via a large k
/// with no splitting benefit — i.e. bucketed vs the row-uniform extreme).
pub mod ablation_bucketing {
    use super::*;

    /// Render the comparison (V100, d=64).
    #[must_use]
    pub fn run() -> String {
        let spec = GpuSpec::v100();
        let mut rows = Vec::new();
        for gs in bench_graphs() {
            let g = gs.generate();
            let feat = 64;
            // Bucketed: the paper's default k.
            let bucketed = Hyb::with_default_k(&g, 1).expect("c=1");
            let tb = hyb_spmm_time(&spec, &bucketed, feat, CsrSpmmParams::default());
            // Unbucketed: one bucket wide enough for the largest row
            // (k = ⌈log2(max_degree)⌉) — maximal padding, uniform rows.
            let (max_deg, _, _) = g.degree_stats();
            let k_single = ceil_log2(max_deg.max(1));
            let single = Hyb::from_csr(&g, 1, k_single).expect("valid k");
            let ts = hyb_spmm_time(&spec, &single, feat, CsrSpmmParams::default());
            rows.push(vec![
                gs.name.to_string(),
                format!("{:.1}%", bucketed.padding_ratio() * 100.0),
                format!("{:.1}%", single.padding_ratio() * 100.0),
                fmt_ms(tb.time_ms),
                fmt_ms(ts.time_ms),
                fmt_speedup(ts.time_ms / tb.time_ms),
            ]);
        }
        render_table(
            "Ablation: power-of-two bucketing vs single max-width bucket (V100, d=64, c=1)",
            &["Graph", "bucketed pad", "single pad", "bucketed", "single", "bucketing gain"],
            &rows,
        )
    }
}

/// Serving throughput: requests/sec through the batched engine vs
/// unbatched per-request execution, at 1/4/8 client threads sharing one
/// adjacency — for both batchable ops of the generic request path. The
/// batched arms fold fingerprint-compatible concurrent requests into
/// single widened kernel launches (SpMM: feature matrices stacked
/// column-wise; SDDMM: block-diagonal stacking); the unbatched arms run
/// the identical engine machinery with `max_batch = 1`, isolating the
/// batching effect.
pub mod serving_throughput {
    use super::*;
    use crate::report::{self, BenchRecord};
    use sparsetir_engine::{
        Adjacency, Engine, EngineConfig, EngineStats, OpRequest, DEFAULT_DRIFT_THRESHOLD,
    };
    use std::sync::Arc;
    use std::time::Instant;

    /// Acceptance floor: batched SpMM requests/sec over unbatched at 8
    /// client threads sharing one adjacency.
    pub const BATCHED_SPEEDUP_BAR: f64 = 2.0;

    /// Acceptance floor for the batched SDDMM arm. Lower than SpMM's:
    /// block-diagonal stacking amortizes the per-launch fixed costs
    /// (program build, lowering, IR fingerprinting, per-request queue
    /// round-trips) but — unlike column stacking — cannot share the
    /// per-non-zero index walk across riders, so the win is the
    /// amortization alone. It pays in the many-small-requests regime
    /// (the arm's dedicated adjacency below), where the stacked operands
    /// stay cache-resident.
    pub const SDDMM_BATCHED_SPEEDUP_BAR: f64 = 1.1;

    fn push(name: &str, value: f64, unit: &'static str, better: &'static str, config: &str) {
        report::record(BenchRecord {
            experiment: "serving_throughput".to_string(),
            name: name.to_string(),
            value,
            unit,
            better,
            config: config.to_string(),
        });
    }

    /// Median mean-ns-per-request of three [`run_arm`] repetitions (the
    /// arms are short wall-clock windows on a shared machine; a single
    /// window is too noisy to gate on). Returns the stats of the median
    /// repetition.
    fn run_arm_median(
        adj: &Adjacency,
        payloads: &[Vec<OpRequest>],
        warm: &OpRequest,
        batched: bool,
    ) -> (f64, EngineStats) {
        let mut reps: Vec<(f64, EngineStats)> =
            (0..3).map(|_| run_arm(adj, payloads.to_vec(), warm.clone(), batched)).collect();
        reps.sort_by(|a, b| a.0.total_cmp(&b.0));
        reps.swap_remove(1)
    }

    /// One serving arm: one client thread per payload list, each issuing
    /// its requests blocking against the shared adjacency through the
    /// engine's generic submit path. Returns mean wall-clock nanoseconds
    /// per request and the engine's final counters.
    fn run_arm(
        adj: &Adjacency,
        payloads: Vec<Vec<OpRequest>>,
        warm: OpRequest,
        batched: bool,
    ) -> (f64, EngineStats) {
        // One worker on both arms: a single dispatcher, so the batched
        // arm folds every waiting request into one launch and the
        // unbatched arm is the same machinery minus the folding.
        let engine = Arc::new(Engine::new(EngineConfig {
            workers: 1,
            queue_depth: 256,
            max_batch: if batched { 16 } else { 1 },
            tune: false,
            fuse: None,
            batch_window: None,
            copy_batch: copy_batch_default(),
            drift_threshold: DEFAULT_DRIFT_THRESHOLD,
        }));
        // Warm the single-request-shape kernel so neither arm pays
        // first-compile latency while timed (payloads were pre-generated
        // by the caller, so RNG cost is outside the window too).
        engine.serve(adj, warm).expect("warmup");
        let total: usize = payloads.iter().map(Vec::len).sum();
        let warmed = engine.stats();
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for reqs in payloads {
                let engine = Arc::clone(&engine);
                let adj = adj.clone();
                s.spawn(move || {
                    for req in reqs {
                        engine.serve(&adj, req).expect("request served");
                    }
                });
            }
        });
        let elapsed = t0.elapsed().as_nanos() as f64;
        // Report counters for the timed window only (the warmup request
        // would otherwise deflate the batching rate); maxima are
        // unaffected by the size-1 warm dispatch.
        let stats = engine.stats().delta_since(&warmed);
        (elapsed / total.max(1) as f64, stats)
    }

    /// Sweep one op arm over 1/4/8 clients, record its ratio records, and
    /// return `(table rows, speedup at 8 clients)`.
    fn sweep_op(
        adj: &Adjacency,
        op: &str,
        per_client: usize,
        config: &str,
        mut make: impl FnMut() -> OpRequest,
    ) -> (Vec<Vec<String>>, f64) {
        let warm = make();
        let mut rows = Vec::new();
        let mut speedup_at_8 = 0.0;
        for &clients in &[1usize, 4, 8] {
            let payloads: Vec<Vec<OpRequest>> =
                (0..clients).map(|_| (0..per_client).map(|_| make()).collect()).collect();
            let (ns_unbatched, _) = run_arm_median(adj, &payloads, &warm, false);
            let (ns_batched, stats) = run_arm_median(adj, &payloads, &warm, true);
            let speedup = ns_unbatched / ns_batched;
            if clients == 8 {
                speedup_at_8 = speedup;
            }
            let tag = format!("{op}/c{clients}");
            push(&format!("{tag}/unbatched"), ns_unbatched, "ns", "lower", config);
            push(&format!("{tag}/batched"), ns_batched, "ns", "lower", config);
            if clients == 8 {
                // Only the 8-client speedup carries signal: at 1 and 4
                // clients the ratio hovers near 1.0 and is dominated by
                // wall-clock noise, so recording it as a machine-portable
                // "ratio" would make the CI perf-gate flaky. The ns
                // records above still track the low-client arms
                // (advisory under ratio gating).
                push(&format!("{tag}/speedup"), speedup, "ratio", "higher", config);
            }
            rows.push(vec![
                op.to_string(),
                clients.to_string(),
                format!("{:.0}", 1e9 / ns_unbatched),
                format!("{:.0}", 1e9 / ns_batched),
                fmt_speedup(speedup),
                format!("{}", stats.max_batch),
                fmt_pct(stats.batching_rate() * 100.0),
            ]);
        }
        (rows, speedup_at_8)
    }

    /// Render the sweep (and record it).
    ///
    /// # Panics
    /// Panics when a served result disagrees with the reference, or —
    /// under `SPARSETIR_BENCH_ASSERT=1` — when a batched arm at 8 clients
    /// misses its requests/sec bar over unbatched (≥ 2× for SpMM, ≥ 1.1×
    /// for SDDMM).
    #[must_use]
    pub fn run() -> String {
        // Full mode serves a mid-size graph: big enough that kernel work
        // dominates scheduling noise, small enough that the stacked dense
        // operand stays cache-resident (the regime batching targets).
        let (n, per_client): (usize, usize) = if smoke() { (1000, 16) } else { (2000, 24) };
        let feat = 16;
        let mut rng = gen::rng(0xE6);
        let g = gen::random_csr_with_row_lengths(
            n,
            n,
            |r| {
                use rand::Rng;
                let u: f64 = r.gen_range(0.0..1.0);
                ((2.0 / (u + 0.01)) as usize).clamp(1, n / 2)
            },
            &mut rng,
        );
        let adj = Adjacency::new(g.clone());
        // Served results must be the real answer, not just fast.
        {
            let engine = Engine::new(EngineConfig::default());
            let x = gen::random_dense(n, feat, &mut rng);
            let served = engine
                .serve(&adj, OpRequest::Spmm(x.clone()))
                .and_then(sparsetir_engine::OpOutput::into_dense)
                .expect("serves");
            assert!(
                served.approx_eq(&g.spmm(&x).expect("reference"), 1e-3),
                "served SpMM must match the reference"
            );
            let (sx, sy) =
                (gen::random_dense(n, feat, &mut rng), gen::random_dense(feat, n, &mut rng));
            let sddmm = engine
                .serve(&adj, OpRequest::Sddmm((sx.clone(), sy.clone())))
                .and_then(sparsetir_engine::OpOutput::into_edges)
                .expect("serves");
            let want = g.sddmm(&sx, &sy).expect("reference");
            assert!(
                sddmm
                    .iter()
                    .zip(want.values())
                    .all(|(s, w)| (s - w).abs() <= 1e-2 * w.abs().max(1.0)),
                "served SDDMM must match the reference"
            );
        }
        let config = format!(
            "n={n} nnz={} d={feat} per_client={per_client} workers=1 smoke={}",
            g.nnz(),
            smoke()
        );
        let mut rng_spmm = gen::rng(0x5e41);
        let (spmm_rows, spmm_at_8) = sweep_op(&adj, "spmm", per_client, &config, || {
            OpRequest::Spmm(gen::random_dense(n, feat, &mut rng_spmm))
        });
        // The SDDMM arm serves its own *small* adjacency: block-diagonal
        // stacking amortizes per-launch and per-request fixed costs but
        // duplicates the per-non-zero walk, so its win lives in the
        // many-small-requests regime where those fixed costs are a big
        // slice and the stacked operands stay cache-resident (on the big
        // graph above the H-times-wider stacked Y falls out of cache and
        // batching is a wash).
        let sn = 128;
        let sfeat = 8;
        let mut rng_sddmm = gen::rng(0x5e42);
        let sg = gen::random_csr_with_row_lengths(
            sn,
            sn,
            |r| {
                use rand::Rng;
                let u: f64 = r.gen_range(0.0..1.0);
                ((2.0 / (u + 0.01)) as usize).clamp(1, sn / 2)
            },
            &mut rng_sddmm,
        );
        let sadj = Adjacency::new(sg);
        // Small-graph SDDMM requests are ~10x faster than the SpMM arm's,
        // so issue proportionally more per client — otherwise the timed
        // windows are a few tens of milliseconds and too noisy to gate.
        let sddmm_per_client = per_client * 4;
        let sconfig = format!(
            "n={sn} nnz={} d={sfeat} per_client={sddmm_per_client} workers=1 smoke={}",
            sadj.csr().nnz(),
            smoke()
        );
        let (sddmm_rows, sddmm_at_8) = sweep_op(&sadj, "sddmm", sddmm_per_client, &sconfig, || {
            OpRequest::Sddmm((
                gen::random_dense(sn, sfeat, &mut rng_sddmm),
                gen::random_dense(sfeat, sn, &mut rng_sddmm),
            ))
        });
        if std::env::var_os("SPARSETIR_BENCH_ASSERT").is_some() {
            assert!(
                spmm_at_8 >= BATCHED_SPEEDUP_BAR,
                "batched SpMM serving {spmm_at_8:.2}x below the {BATCHED_SPEEDUP_BAR}x bar at 8 clients"
            );
            assert!(
                sddmm_at_8 >= SDDMM_BATCHED_SPEEDUP_BAR,
                "batched SDDMM serving {sddmm_at_8:.2}x below the {SDDMM_BATCHED_SPEEDUP_BAR}x bar at 8 clients"
            );
        }
        let mut rows = spmm_rows;
        rows.extend(sddmm_rows);
        render_table(
            &format!(
                "Serving throughput: batched vs unbatched engine (shared adjacency, d={feat}, bars at 8 clients: spmm ≥ {BATCHED_SPEEDUP_BAR}x, sddmm ≥ {SDDMM_BATCHED_SPEEDUP_BAR}x)"
            ),
            &["op", "clients", "unbatched req/s", "batched req/s", "speedup", "max batch", "batched %"],
            &rows,
        )
    }
}

/// Zero-copy batching: requests/sec through the batched engine serving
/// widened SpMM launches off segmented operand views vs the legacy
/// copying contract (column-stack the operands, launch, split the wide
/// output back out). Both arms run the identical engine with the same
/// batch folding (`max_batch = 16`, one worker) and compile the same
/// widened kernel — the only difference is `EngineConfig::copy_batch`,
/// isolating the stack/split/restage copies that the view path deletes.
pub mod serving_zero_copy {
    use super::*;
    use crate::report::{self, BenchRecord};
    use sparsetir_engine::{Adjacency, Engine, EngineConfig, EngineStats, OpRequest};
    use std::sync::Arc;
    use std::time::Instant;

    /// Acceptance floor: view-batched SpMM requests/sec over copy-batched
    /// at 8 client threads sharing one adjacency. The win is pure copy
    /// elimination — the copy arm pays ~five extra passes over the
    /// `rows × Σd` operand/output data per widened launch (stack, restage
    /// into bindings, take, split, plus their allocations) that the view
    /// arm never makes — so it shows in the small-feature / very sparse
    /// regime below, where the kernel itself touches each output element
    /// only a few times.
    pub const ZERO_COPY_SPEEDUP_BAR: f64 = 1.2;

    fn push(name: &str, value: f64, unit: &'static str, better: &'static str, config: &str) {
        report::record(BenchRecord {
            experiment: "serving_zero_copy".to_string(),
            name: name.to_string(),
            value,
            unit,
            better,
            config: config.to_string(),
        });
    }

    /// Five back-to-back (copy, view) repetition pairs, reduced to the
    /// pair with the median copy/view speedup. Pairing the arms inside
    /// each repetition cancels slow machine drift (frequency scaling,
    /// background load) that independent per-arm medians would fold into
    /// the ratio; the median over five pairs then absorbs per-pair
    /// scheduling noise.
    #[allow(clippy::type_complexity)]
    fn run_pair_median(
        adj: &Adjacency,
        payloads: &[Vec<OpRequest>],
        warm: &OpRequest,
    ) -> ((f64, EngineStats), (f64, EngineStats)) {
        let mut pairs: Vec<((f64, EngineStats), (f64, EngineStats))> = (0..5)
            .map(|_| {
                let c = run_arm(adj, payloads.to_vec(), warm.clone(), true);
                let v = run_arm(adj, payloads.to_vec(), warm.clone(), false);
                (c, v)
            })
            .collect();
        pairs.sort_by(|a, b| (a.0 .0 / a.1 .0).total_cmp(&(b.0 .0 / b.1 .0)));
        pairs.swap_remove(2)
    }

    /// One serving arm: one client thread per payload list, each keeping
    /// two requests in flight (submit ahead, then wait — the idiom of a
    /// real serving client hiding its round-trip latency), all against
    /// the shared adjacency. Returns mean wall-clock nanoseconds per
    /// request and the timed window's engine counters. Identical
    /// machinery in both modes — the flag only pins the batch-assembly
    /// contract. The depth-2 pipeline doubles the widths the worker can
    /// fold (up to 16 at 8 clients), which amortizes the per-launch
    /// fixed costs both arms share and leaves the per-rider copies as
    /// the dominant difference.
    fn run_arm(
        adj: &Adjacency,
        payloads: Vec<Vec<OpRequest>>,
        warm: OpRequest,
        copy_batch: bool,
    ) -> (f64, EngineStats) {
        let engine = Arc::new(Engine::new(EngineConfig {
            workers: 1,
            queue_depth: 256,
            max_batch: 16,
            tune: false,
            fuse: None,
            batch_window: None,
            copy_batch,
            ..EngineConfig::default()
        }));
        engine.serve(adj, warm).expect("warmup");
        let total: usize = payloads.iter().map(Vec::len).sum();
        let warmed = engine.stats();
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for reqs in payloads {
                let engine = Arc::clone(&engine);
                let adj = adj.clone();
                s.spawn(move || {
                    let mut pending = None;
                    for req in reqs {
                        let ticket = engine.submit(&adj, req).expect("submitted");
                        if let Some(p) = pending.replace(ticket) {
                            let _: sparsetir_engine::OpOutput = p.wait().expect("request served");
                        }
                    }
                    if let Some(p) = pending {
                        let _ = p.wait().expect("request served");
                    }
                });
            }
        });
        let elapsed = t0.elapsed().as_nanos() as f64;
        let stats = engine.stats().delta_since(&warmed);
        (elapsed / total.max(1) as f64, stats)
    }

    /// Render the sweep (and record it).
    ///
    /// # Panics
    /// Panics when a view-served result disagrees with the reference,
    /// when either arm's copy counter contradicts its contract (view
    /// launches must copy zero operand/output bytes; copy launches that
    /// actually widened must copy some), or — under
    /// `SPARSETIR_BENCH_ASSERT=1` — when the view arm at 8 clients
    /// misses its requests/sec bar over the copy arm.
    #[must_use]
    pub fn run() -> String {
        // The regime the views target: many concurrent small-feature
        // requests on a very sparse graph, where a widened launch's
        // kernel touches each output element only ~once and the copy
        // contract's extra passes over the stacked operands are a
        // first-order cost. Everything stays cache-resident.
        let (n, per_client): (usize, usize) = if smoke() { (512, 16) } else { (1024, 32) };
        let feat = 16;
        let mut rng = gen::rng(0x2C);
        let g = gen::random_csr_with_row_lengths(
            n,
            n,
            |r| {
                use rand::Rng;
                let u: f64 = r.gen_range(0.0..1.0);
                ((1.0 / (u + 0.35)) as usize).clamp(1, 6)
            },
            &mut rng,
        );
        let adj = Adjacency::new(g.clone());
        // Served results off the view path must be the real answer.
        {
            let engine = Engine::new(EngineConfig { copy_batch: false, ..EngineConfig::default() });
            let x = gen::random_dense(n, feat, &mut rng);
            let served = engine
                .serve(&adj, OpRequest::Spmm(x.clone()))
                .and_then(sparsetir_engine::OpOutput::into_dense)
                .expect("serves");
            assert!(
                served.approx_eq(&g.spmm(&x).expect("reference"), 1e-3),
                "view-served SpMM must match the reference"
            );
        }
        let config = format!(
            "n={n} nnz={} d={feat} per_client={per_client} workers=1 max_batch=16 smoke={}",
            g.nnz(),
            smoke()
        );
        let warm = OpRequest::Spmm(gen::random_dense(n, feat, &mut rng));
        let mut rows = Vec::new();
        let mut speedup_at_8 = 0.0;
        for &clients in &[1usize, 4, 8] {
            let payloads: Vec<Vec<OpRequest>> = (0..clients)
                .map(|_| {
                    (0..per_client)
                        .map(|_| OpRequest::Spmm(gen::random_dense(n, feat, &mut rng)))
                        .collect()
                })
                .collect();
            let ((ns_copy, copy_stats), (ns_view, view_stats)) =
                run_pair_median(&adj, &payloads, &warm);
            // The counters pin the arms to their contracts regardless of
            // the wall clock: the view arm stages operands and outputs
            // in place, so a single copied byte is a regression.
            assert_eq!(
                view_stats.bytes_copied, 0,
                "view arm copied {} bytes at {clients} clients",
                view_stats.bytes_copied
            );
            if copy_stats.max_batch >= 2 {
                assert!(
                    copy_stats.bytes_copied > 0,
                    "copy arm widened launches (max batch {}) without counting any staged bytes",
                    copy_stats.max_batch
                );
            }
            let speedup = ns_copy / ns_view;
            if clients == 8 {
                speedup_at_8 = speedup;
            }
            let tag = format!("spmm/c{clients}");
            push(&format!("{tag}/copy"), ns_copy, "ns", "lower", &config);
            push(&format!("{tag}/view"), ns_view, "ns", "lower", &config);
            if clients == 8 {
                // As in `serving_throughput`: only the 8-client ratio is
                // stable enough to gate on; low-client arms stay
                // advisory through their ns records.
                push(&format!("{tag}/speedup"), speedup, "ratio", "higher", &config);
            }
            let copied_per_req =
                copy_stats.bytes_copied as f64 / (clients * per_client).max(1) as f64;
            rows.push(vec![
                clients.to_string(),
                format!("{:.0}", 1e9 / ns_copy),
                format!("{:.0}", 1e9 / ns_view),
                fmt_speedup(speedup),
                format!("{}", view_stats.max_batch),
                format!("{:.1}", copied_per_req / 1024.0),
                format!("{}", view_stats.bytes_copied),
            ]);
        }
        if std::env::var_os("SPARSETIR_BENCH_ASSERT").is_some() {
            assert!(
                speedup_at_8 >= ZERO_COPY_SPEEDUP_BAR,
                "view-batched SpMM serving {speedup_at_8:.2}x below the {ZERO_COPY_SPEEDUP_BAR}x bar at 8 clients"
            );
        }
        render_table(
            &format!(
                "Zero-copy serving: view batching vs copy batching (shared adjacency, d={feat}, bar at 8 clients: ≥ {ZERO_COPY_SPEEDUP_BAR}x)"
            ),
            &["clients", "copy req/s", "view req/s", "speedup", "max batch", "copy KB/req", "view bytes"],
            &rows,
        )
    }
}

/// Cross-op fusion at serving time: the fused attention pipeline
/// (SDDMM → edge-softmax → SpMM compiled into **one** kernel, requests
/// batched into widened launches) vs the three-launch pipeline serving
/// each request alone — the whole fused serving stack against the naive
/// per-request multi-kernel baseline, at 1/4/8 client threads sharing
/// one adjacency. Small graph on purpose: the per-launch fixed costs
/// (binding, dispatch, per-pass scheduling) that fusion and batching
/// amortize are the dominant slice in the many-small-requests regime.
pub mod fused_attention {
    use super::*;
    use crate::report::{self, BenchRecord};
    use sparsetir_engine::{Adjacency, Engine, EngineConfig, OpRequest, DEFAULT_DRIFT_THRESHOLD};
    use std::sync::Arc;
    use std::time::Instant;

    /// Acceptance floor: fused-engine requests/sec over the three-launch
    /// pipeline at 8 client threads sharing one adjacency.
    pub const FUSED_SPEEDUP_BAR: f64 = 2.0;

    fn push(name: &str, value: f64, unit: &'static str, better: &'static str, config: &str) {
        report::record(BenchRecord {
            experiment: "fused_attention".to_string(),
            name: name.to_string(),
            value,
            unit,
            better,
            config: config.to_string(),
        });
    }

    /// One serving arm: `fused` selects the whole stack under test
    /// (cross-op kernel + request batching) vs the baseline (three
    /// launches per request, no folding). Returns mean wall-clock
    /// nanoseconds per request.
    fn run_arm(
        adj: &Adjacency,
        payloads: Vec<Vec<OpRequest>>,
        warm: OpRequest,
        fused: bool,
    ) -> f64 {
        let engine = Arc::new(Engine::new(EngineConfig {
            workers: 1,
            queue_depth: 256,
            max_batch: if fused { 16 } else { 1 },
            tune: false,
            fuse: Some(fused),
            batch_window: None,
            copy_batch: copy_batch_default(),
            drift_threshold: DEFAULT_DRIFT_THRESHOLD,
        }));
        // Warm the single-request-shape kernels (one fused, or the
        // pipeline's three) so neither arm pays first-compile latency
        // while timed.
        engine.serve(adj, warm).expect("warmup");
        let total: usize = payloads.iter().map(Vec::len).sum();
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for reqs in payloads {
                let engine = Arc::clone(&engine);
                let adj = adj.clone();
                s.spawn(move || {
                    for req in reqs {
                        engine.serve(&adj, req).expect("request served");
                    }
                });
            }
        });
        t0.elapsed().as_nanos() as f64 / total.max(1) as f64
    }

    /// Median of three [`run_arm`] repetitions (short windows on a shared
    /// machine are too noisy to gate on individually).
    fn run_arm_median(
        adj: &Adjacency,
        payloads: &[Vec<OpRequest>],
        warm: &OpRequest,
        fused: bool,
    ) -> f64 {
        let mut reps: Vec<f64> =
            (0..3).map(|_| run_arm(adj, payloads.to_vec(), warm.clone(), fused)).collect();
        reps.sort_by(f64::total_cmp);
        reps[1]
    }

    /// Render the sweep (and record it).
    ///
    /// # Panics
    /// Panics when the served fused result disagrees with the f64
    /// reference or the three-launch oracle, or — under
    /// `SPARSETIR_BENCH_ASSERT=1` — when the fused arm at 8 clients
    /// misses its ≥ 2× bar over the pipeline arm.
    #[must_use]
    pub fn run() -> String {
        let (n, per_client): (usize, usize) = if smoke() { (256, 8) } else { (256, 16) };
        let (k, vfeat) = (8usize, 8usize);
        let mut rng = gen::rng(0xFA);
        let g = gen::random_csr_with_row_lengths(
            n,
            n,
            |r| {
                use rand::Rng;
                let u: f64 = r.gen_range(0.0..1.0);
                ((2.0 / (u + 0.01)) as usize).clamp(1, n / 2)
            },
            &mut rng,
        );
        let adj = Adjacency::new(g.clone());
        let mut make = {
            let g = g.clone();
            let mut rng = gen::rng(0xFA57);
            move || {
                OpRequest::FusedAttention(vec![AttnHead {
                    q: gen::random_dense(g.rows(), k, &mut rng),
                    kt: gen::random_dense(k, g.cols(), &mut rng),
                    v: gen::random_dense(g.cols(), vfeat, &mut rng),
                }])
            }
        };
        // Served results must be the real answer, not just fast: the
        // fused engine must match the f64 reference (relative epsilon,
        // for the softmax exp) and the three-launch oracle bit-for-bit.
        {
            let engine = Engine::new(EngineConfig { fuse: Some(true), ..EngineConfig::default() });
            let req = make();
            let OpRequest::FusedAttention(heads) = &req else { unreachable!() };
            let head = heads[0].clone();
            let served = engine.serve(&adj, req).expect("serves").into_heads().expect("heads");
            let want = fused_attention_reference(&g, &head.q, &head.kt, &head.v, 1);
            assert!(
                served[0].approx_eq(&want, 1e-3),
                "served fused attention must match the f64 reference"
            );
            let oracle = attention_pipeline_launch(
                &sparsetir_ir::exec::Runtime::new(),
                &g,
                &head.q,
                &head.kt,
                &head.v,
                1,
            )
            .expect("three-launch oracle");
            assert!(
                served[0].data().iter().zip(oracle.data()).all(|(s, o)| s.to_bits() == o.to_bits()),
                "served fused attention must be bit-identical to the three-launch pipeline"
            );
        }
        let config = format!(
            "n={n} nnz={} k={k} vfeat={vfeat} heads/req=1 per_client={per_client} workers=1 smoke={}",
            g.nnz(),
            smoke()
        );
        let warm = make();
        let mut rows = Vec::new();
        let mut speedup_at_8 = 0.0;
        for &clients in &[1usize, 4, 8] {
            let payloads: Vec<Vec<OpRequest>> =
                (0..clients).map(|_| (0..per_client).map(|_| make()).collect()).collect();
            let ns_pipeline = run_arm_median(&adj, &payloads, &warm, false);
            let ns_fused = run_arm_median(&adj, &payloads, &warm, true);
            let speedup = ns_pipeline / ns_fused;
            if clients == 8 {
                speedup_at_8 = speedup;
            }
            let tag = format!("attn/c{clients}");
            push(&format!("{tag}/pipeline"), ns_pipeline, "ns", "lower", &config);
            push(&format!("{tag}/fused"), ns_fused, "ns", "lower", &config);
            if clients == 8 {
                // Like serving_throughput: only the 8-client ratio is
                // stable enough to gate; the ns records track the rest.
                push(&format!("{tag}/speedup"), speedup, "ratio", "higher", &config);
            }
            rows.push(vec![
                clients.to_string(),
                format!("{:.0}", 1e9 / ns_pipeline),
                format!("{:.0}", 1e9 / ns_fused),
                fmt_speedup(speedup),
            ]);
        }
        if std::env::var_os("SPARSETIR_BENCH_ASSERT").is_some() {
            assert!(
                speedup_at_8 >= FUSED_SPEEDUP_BAR,
                "fused attention serving {speedup_at_8:.2}x below the {FUSED_SPEEDUP_BAR}x bar at 8 clients"
            );
        }
        render_table(
            &format!(
                "Fused attention serving: one cross-op kernel + batching vs the three-launch pipeline (k={k}, dv={vfeat}, bar at 8 clients ≥ {FUSED_SPEEDUP_BAR}x)"
            ),
            &["clients", "pipeline req/s", "fused req/s", "speedup"],
            &rows,
        )
    }
}

/// SLO serving: deadline-hit-rate of latency-sensitive (`Hi`-priority,
/// deadlined) traffic under a saturating best-effort (`Lo`) flood, with
/// the engine's SLO machinery (priority-then-deadline queue, admission
/// shedding, adaptive batch window) vs the pre-0.2 FIFO/blocking
/// baseline serving the identical mixed workload. One worker on both
/// arms; the Lo flood runs heavyweight SpMM requests on distinct
/// adjacencies (they never batch, so each occupies the worker for a full
/// execution), the measured Hi clients run cheap SDDMM requests on a
/// shared small adjacency with a deadline ≈ 2 Lo-executions — met only
/// by jumping the Lo backlog, which is exactly what the priority queue
/// buys and FIFO cannot.
pub mod serving_slo {
    use super::*;
    use crate::report::{self, BenchRecord};
    use sparsetir_engine::{
        Adjacency, Engine, EngineConfig, EngineStats, OpRequest, Priority, Submission,
        DEFAULT_DRIFT_THRESHOLD,
    };
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    /// Acceptance floor: Hi-traffic deadline-hit-rate with the SLO
    /// machinery over the FIFO/blocking baseline at the 8-client
    /// overload arm (median of 3 paired repetitions).
    pub const SLO_HIT_RATE_BAR: f64 = 1.3;

    /// The gated record saturates here: the raw gain is `hits_slo /
    /// hits_fifo` with a near-zero denominator under overload (FIFO
    /// misses almost every tight deadline), so its magnitude is noise
    /// beyond a point. Capping makes the committed baseline a stable
    /// `2.0` while any real regression (SLO arm missing deadlines, or
    /// FIFO suddenly matching it) still lands far below the −30% gate
    /// tolerance.
    pub const GAIN_CAP: f64 = 2.0;

    fn push(name: &str, value: f64, unit: &'static str, better: &'static str, config: &str) {
        report::record(BenchRecord {
            experiment: "serving_slo".to_string(),
            name: name.to_string(),
            value,
            unit,
            better,
            config: config.to_string(),
        });
    }

    /// Measure the median wall-clock of one Lo-class SpMM execution on a
    /// warmed single-worker engine — the unit every deadline in the
    /// experiment is calibrated against, so the arms express "about two
    /// executions of backlog" identically on fast and slow machines.
    fn calibrate_lo_exec(adj: &Adjacency, x: &Dense) -> Duration {
        let engine = Engine::new(EngineConfig {
            workers: 1,
            queue_depth: 16,
            max_batch: 8,
            tune: false,
            fuse: None,
            batch_window: None,
            copy_batch: copy_batch_default(),
            drift_threshold: DEFAULT_DRIFT_THRESHOLD,
        });
        engine.serve(adj, OpRequest::Spmm(x.clone())).expect("calibration warmup");
        let mut samples: Vec<Duration> = (0..5)
            .map(|_| {
                let t = Instant::now();
                engine.serve(adj, OpRequest::Spmm(x.clone())).expect("calibration request");
                t.elapsed()
            })
            .collect();
        samples.sort();
        samples[2]
    }

    struct ArmResult {
        hi_hit_rate: f64,
        stats: EngineStats,
    }

    /// One arm: `lo_clients` flood threads serve Lo SpMM requests in a
    /// closed loop until the measured traffic completes; `hi_clients`
    /// threads each issue `hi_per_client` deadlined SDDMM requests and
    /// score a hit when the answer arrives in time. `slo` selects the
    /// machinery under test: priorities + deadlines + adaptive window vs
    /// plain FIFO submits of the identical requests (the deadline then
    /// exists only in the client's stopwatch).
    #[allow(clippy::too_many_arguments)]
    fn run_arm(
        lo: &[(Adjacency, Dense)],
        hi_adj: &Adjacency,
        hi_payload: &(Dense, Dense),
        hi_clients: usize,
        hi_per_client: usize,
        hi_deadline: Duration,
        window: Duration,
        slo: bool,
    ) -> ArmResult {
        let engine = Arc::new(Engine::new(EngineConfig {
            workers: 1,
            queue_depth: 64,
            max_batch: 8,
            tune: false,
            fuse: None,
            batch_window: if slo { Some(window) } else { None },
            copy_batch: copy_batch_default(),
            drift_threshold: DEFAULT_DRIFT_THRESHOLD,
        }));
        // Warm every kernel shape outside the measured window.
        for (adj, x) in lo {
            engine.serve(adj, OpRequest::Spmm(x.clone())).expect("lo warmup");
        }
        engine.serve(hi_adj, OpRequest::Sddmm(hi_payload.clone())).expect("hi warmup");
        let warmed = engine.stats();
        let stop = AtomicBool::new(false);
        let hits: u64 = std::thread::scope(|s| {
            for (adj, x) in lo {
                let engine = Arc::clone(&engine);
                let stop = &stop;
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let sub = if slo {
                            Submission::spmm(x.clone()).priority(Priority::Lo)
                        } else {
                            Submission::new(OpRequest::Spmm(x.clone()))
                        };
                        engine.serve(adj, sub).expect("lo flood request");
                    }
                });
            }
            let measurers: Vec<_> = (0..hi_clients)
                .map(|_| {
                    let engine = Arc::clone(&engine);
                    s.spawn(move || {
                        let mut hits = 0u64;
                        for _ in 0..hi_per_client {
                            let sub = if slo {
                                Submission::sddmm(hi_payload.0.clone(), hi_payload.1.clone())
                                    .deadline(hi_deadline)
                                    .priority(Priority::Hi)
                            } else {
                                Submission::new(OpRequest::Sddmm(hi_payload.clone()))
                            };
                            let t = Instant::now();
                            // A shed/expired answer is a deadline miss by
                            // definition; so is a late success.
                            let res = engine.serve(hi_adj, sub);
                            if res.is_ok() && t.elapsed() <= hi_deadline {
                                hits += 1;
                            }
                        }
                        hits
                    })
                })
                .collect();
            let hits = measurers.into_iter().map(|h| h.join().expect("hi client")).sum();
            stop.store(true, Ordering::Relaxed);
            hits
        });
        let total = (hi_clients * hi_per_client).max(1) as f64;
        ArmResult { hi_hit_rate: hits as f64 / total, stats: engine.stats().delta_since(&warmed) }
    }

    /// Render the sweep (and record it).
    ///
    /// # Panics
    /// Panics when a client hits an unexpected engine error, or — under
    /// `SPARSETIR_BENCH_ASSERT=1` — when the 8-client overload arm's
    /// median hit-rate gain falls below [`SLO_HIT_RATE_BAR`] or the SLO
    /// arm's latency histogram is degenerate (p50/p95/p99 unordered or
    /// zero with traffic served).
    #[must_use]
    pub fn run() -> String {
        let (n, hi_per_client): (usize, usize) = if smoke() { (1200, 12) } else { (2500, 20) };
        let feat = 32;
        let mut rng = gen::rng(0x510);
        // One heavyweight adjacency per Lo flood client (distinct
        // fingerprints: the flood cannot batch, each request costs a
        // full execution — a genuinely occupied worker).
        let lo: Vec<(Adjacency, Dense)> = (0..4)
            .map(|_| {
                let g = gen::random_csr_with_row_lengths(
                    n,
                    n,
                    |r| {
                        use rand::Rng;
                        let u: f64 = r.gen_range(0.0..1.0);
                        ((4.0 / (u + 0.01)) as usize).clamp(1, n / 2)
                    },
                    &mut rng,
                );
                (Adjacency::new(g), gen::random_dense(n, feat, &mut rng))
            })
            .collect();
        // The measured Hi traffic: cheap SDDMM on a small shared graph.
        let sn = 128;
        let sg = gen::random_csr_with_row_lengths(sn, sn, |_| 8, &mut rng);
        let hi_adj = Adjacency::new(sg);
        let hi_payload = (gen::random_dense(sn, 8, &mut rng), gen::random_dense(8, sn, &mut rng));
        let lo_exec = calibrate_lo_exec(&lo[0].0, &lo[0].1);
        // Deadline ≈ two Lo executions plus a fixed scheduling
        // allowance: with ≥ 2 Lo requests backlogged FIFO must miss,
        // while the priority queue answers after at most the in-flight
        // execution (+ window).
        let hi_deadline = lo_exec * 2 + Duration::from_micros(100);
        let window = (lo_exec / 8).clamp(Duration::from_micros(20), Duration::from_micros(200));
        let config = format!(
            "n={n} d={feat} sn={sn} hi_per_client={hi_per_client} lo_exec={}us deadline={}us window={}us workers=1 smoke={}",
            lo_exec.as_micros(),
            hi_deadline.as_micros(),
            window.as_micros(),
            smoke()
        );
        let mut rows = Vec::new();
        let mut gain_at_8 = 0.0;
        let mut slo_at_8: Option<ArmResult> = None;
        for &clients in &[1usize, 4, 8] {
            let hi_clients = clients.div_ceil(2);
            let lo_clients = clients / 2;
            // Median of 3 *paired* repetitions, picked by the arm-level
            // signal (the gain), so both reported rates come from one
            // coherent repetition.
            let mut reps: Vec<(f64, ArmResult, ArmResult)> = (0..3)
                .map(|_| {
                    let fifo = run_arm(
                        &lo[..lo_clients],
                        &hi_adj,
                        &hi_payload,
                        hi_clients,
                        hi_per_client,
                        hi_deadline,
                        window,
                        false,
                    );
                    let slo = run_arm(
                        &lo[..lo_clients],
                        &hi_adj,
                        &hi_payload,
                        hi_clients,
                        hi_per_client,
                        hi_deadline,
                        window,
                        true,
                    );
                    // Floor the denominator at one hit's worth: FIFO
                    // routinely scores zero under overload.
                    let floor = 1.0 / (hi_clients * hi_per_client) as f64;
                    (slo.hi_hit_rate / fifo.hi_hit_rate.max(floor), fifo, slo)
                })
                .collect();
            reps.sort_by(|a, b| a.0.total_cmp(&b.0));
            let (gain, fifo, slo) = reps.swap_remove(1);
            let tag = format!("c{clients}");
            push(&format!("{tag}/fifo_hit_rate"), fifo.hi_hit_rate, "rate", "higher", &config);
            push(&format!("{tag}/slo_hit_rate"), slo.hi_hit_rate, "rate", "higher", &config);
            if clients == 8 {
                gain_at_8 = gain;
                push(
                    &format!("{tag}/hit_gain_capped"),
                    gain.min(GAIN_CAP),
                    "ratio",
                    "higher",
                    &config,
                );
                let h = &slo.stats.latency;
                push(&format!("{tag}/slo_p50"), h.p50() as f64, "ns", "lower", &config);
                push(&format!("{tag}/slo_p95"), h.p95() as f64, "ns", "lower", &config);
                push(&format!("{tag}/slo_p99"), h.p99() as f64, "ns", "lower", &config);
            }
            rows.push(vec![
                clients.to_string(),
                format!("{lo_clients}+{hi_clients}"),
                fmt_pct(fifo.hi_hit_rate * 100.0),
                fmt_pct(slo.hi_hit_rate * 100.0),
                fmt_speedup(gain),
                format!("{}", slo.stats.latency.p50() / 1000),
                format!("{}", slo.stats.latency.p95() / 1000),
                format!("{}", slo.stats.latency.p99() / 1000),
                format!("{}", slo.stats.rejected + slo.stats.expired),
            ]);
            if clients == 8 {
                slo_at_8 = Some(slo);
            }
        }
        if std::env::var_os("SPARSETIR_BENCH_ASSERT").is_some() {
            assert!(
                gain_at_8 >= SLO_HIT_RATE_BAR,
                "SLO deadline-hit-rate gain {gain_at_8:.2}x below the {SLO_HIT_RATE_BAR}x bar at 8 clients"
            );
            let slo = slo_at_8.as_ref().expect("8-client arm ran");
            let h = &slo.stats.latency;
            assert!(
                h.p50() > 0 && h.p50() <= h.p95() && h.p95() <= h.p99(),
                "degenerate latency percentiles: p50={} p95={} p99={}",
                h.p50(),
                h.p95(),
                h.p99()
            );
            assert!(
                h.p99() <= slo.stats.latency_ns_max,
                "p99 {} exceeds observed max latency {}",
                h.p99(),
                slo.stats.latency_ns_max
            );
        }
        render_table(
            &format!(
                "SLO serving: Hi-priority deadline-hit-rate, priorities+admission+window vs FIFO (deadline={}us, bar at 8 clients ≥ {SLO_HIT_RATE_BAR}x)",
                hi_deadline.as_micros()
            ),
            &[
                "clients",
                "lo+hi",
                "fifo hit %",
                "slo hit %",
                "gain",
                "p50 us",
                "p95 us",
                "p99 us",
                "shed+expired",
            ],
            &rows,
        )
    }
}

/// Dynamic graphs: a sustained stream of edge-update batches interleaved
/// with SpMM queries, served **incrementally** (`Engine::apply_delta`
/// patching the CSR in place with the two-pointer merge, versioned
/// fingerprints deciding whether tuning state survives) vs
/// **rebuild-from-scratch** (maintain the full edge set, reconstruct the
/// CSR and re-wrap the `Adjacency` every batch). Both arms answer every
/// query identically — the experiment asserts the final matrices are
/// bit-identical — so the ratio isolates the cost of keeping a served
/// adjacency current.
pub mod dynamic_graphs {
    use super::*;
    use crate::report::{self, BenchRecord};
    use sparsetir_engine::{Adjacency, Engine, EngineConfig, OpRequest, DEFAULT_DRIFT_THRESHOLD};
    use std::collections::BTreeMap;
    use std::time::{Duration, Instant};

    /// Acceptance floor: incremental update maintenance over
    /// rebuild-from-scratch, on the update path alone (query serving is
    /// identical machinery in both arms and is reported separately).
    pub const INCREMENTAL_SPEEDUP_BAR: f64 = 1.2;

    fn push(name: &str, value: f64, unit: &'static str, better: &'static str, config: &str) {
        report::record(BenchRecord {
            experiment: "dynamic_graphs".to_string(),
            name: name.to_string(),
            value,
            unit,
            better,
            config: config.to_string(),
        });
    }

    fn serving_engine() -> Engine {
        Engine::new(EngineConfig {
            workers: 1,
            queue_depth: 64,
            max_batch: 8,
            tune: false,
            fuse: None,
            batch_window: None,
            copy_batch: copy_batch_default(),
            drift_threshold: DEFAULT_DRIFT_THRESHOLD,
        })
    }

    /// The edge map a rebuild arm maintains (and the oracle both arms are
    /// checked against).
    fn edge_map(g: &Csr) -> BTreeMap<(u32, u32), f32> {
        let mut edges = BTreeMap::new();
        for r in 0..g.rows() {
            let (cols, vals) = g.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                edges.insert((r as u32, c), v);
            }
        }
        edges
    }

    /// Pre-generate the update stream: per batch, a mix of fresh-edge
    /// inserts, re-weights of edges known to exist, and deletes (tracked
    /// against a running edge set so deletes usually hit).
    fn update_stream(
        g: &Csr,
        batches: usize,
        ops_per_batch: usize,
        rng: &mut impl rand::Rng,
    ) -> Vec<GraphDelta> {
        let n = g.rows() as u32;
        let mut live: Vec<(u32, u32)> = edge_map(g).into_keys().collect();
        let mut stream = Vec::with_capacity(batches);
        for _ in 0..batches {
            let mut d = GraphDelta::new();
            for i in 0..ops_per_batch {
                match i % 3 {
                    0 => {
                        // Insert (or re-weight) a random coordinate.
                        let e = (rng.gen_range(0..n), rng.gen_range(0..n));
                        d.upsert(e.0, e.1, rng.gen_range(0.1f32..2.0));
                        live.push(e);
                    }
                    1 => {
                        // Re-weight an existing edge: structure-neutral.
                        if let Some(&(r, c)) = live.get(rng.gen_range(0..live.len().max(1))) {
                            d.upsert(r, c, rng.gen_range(0.1f32..2.0));
                        }
                    }
                    _ => {
                        // Delete a (probably) existing edge.
                        if !live.is_empty() {
                            let at = rng.gen_range(0..live.len());
                            let (r, c) = live.swap_remove(at);
                            d.delete(r, c);
                        }
                    }
                }
            }
            stream.push(d);
        }
        stream
    }

    /// Render the sweep (and record it).
    ///
    /// # Panics
    /// Panics when the incremental and rebuilt matrices diverge, when a
    /// served query disagrees with the reference, or — under
    /// `SPARSETIR_BENCH_ASSERT=1` — when the incremental update path
    /// misses its speedup bar over rebuild-from-scratch.
    #[must_use]
    pub fn run() -> String {
        let (n, batches, ops, queries): (usize, usize, usize, usize) =
            if smoke() { (600, 8, 48, 2) } else { (2000, 16, 96, 4) };
        let feat = 8;
        let mut rng = gen::rng(0xD6);
        let g = gen::random_csr_with_row_lengths(
            n,
            n,
            |r| {
                use rand::Rng;
                let u: f64 = r.gen_range(0.0..1.0);
                ((2.0 / (u + 0.01)) as usize).clamp(1, n / 2)
            },
            &mut rng,
        );
        // Pre-generate updates and query operands outside every timed
        // window.
        let stream = update_stream(&g, batches, ops, &mut rng);
        let xs: Vec<Dense> = (0..queries).map(|_| gen::random_dense(n, feat, &mut rng)).collect();

        // Median-of-3 per arm: the update loops are short wall-clock
        // windows, a single one is too noisy to gate on.
        let mut inc_reps = Vec::new();
        let mut reb_reps = Vec::new();
        let mut final_inc: Option<Csr> = None;
        let mut final_reb: Option<Csr> = None;
        for _ in 0..3 {
            // Incremental arm: patch the served adjacency in place.
            let engine = serving_engine();
            let mut adj = Adjacency::new(g.clone());
            engine.serve(&adj, OpRequest::Spmm(xs[0].clone())).expect("warmup");
            let mut update_ns = 0u128;
            let mut query_ns = 0u128;
            for d in &stream {
                let t = Instant::now();
                adj = engine.apply_delta(&adj, d).expect("in-bounds delta");
                update_ns += t.elapsed().as_nanos();
                let t = Instant::now();
                for x in &xs {
                    engine.serve(&adj, OpRequest::Spmm(x.clone())).expect("query served");
                }
                query_ns += t.elapsed().as_nanos();
            }
            inc_reps.push((update_ns, query_ns));
            final_inc = Some(adj.csr().clone());

            // Rebuild arm: maintain the edge set, reconstruct per batch.
            let engine = serving_engine();
            let mut edges = edge_map(&g);
            let mut adj = Adjacency::new(g.clone());
            engine.serve(&adj, OpRequest::Spmm(xs[0].clone())).expect("warmup");
            let mut update_ns = 0u128;
            let mut query_ns = 0u128;
            for d in &stream {
                let t = Instant::now();
                for &(r, c, v) in d.normalized_ops().iter() {
                    match v {
                        Some(v) => {
                            edges.insert((r, c), v);
                        }
                        None => {
                            edges.remove(&(r, c));
                        }
                    }
                }
                let entries: Vec<(u32, u32, f32)> =
                    edges.iter().map(|(&(r, c), &v)| (r, c, v)).collect();
                let rebuilt = Csr::from_coo(&Coo::from_entries(n, n, entries).expect("in-bounds"));
                adj = Adjacency::new(rebuilt);
                update_ns += t.elapsed().as_nanos();
                let t = Instant::now();
                for x in &xs {
                    engine.serve(&adj, OpRequest::Spmm(x.clone())).expect("query served");
                }
                query_ns += t.elapsed().as_nanos();
            }
            reb_reps.push((update_ns, query_ns));
            final_reb = Some(adj.csr().clone());
        }
        let (final_inc, final_reb) = (final_inc.expect("ran"), final_reb.expect("ran"));
        assert_eq!(
            final_inc, final_reb,
            "incremental and rebuilt matrices must be bit-identical after the stream"
        );
        // Served answers on the final state must be the real answer.
        {
            let engine = serving_engine();
            let adj = Adjacency::new(final_inc.clone());
            let served = engine
                .serve(&adj, OpRequest::Spmm(xs[0].clone()))
                .and_then(sparsetir_engine::OpOutput::into_dense)
                .expect("serves");
            let want = final_inc.spmm(&xs[0]).expect("reference");
            assert!(served.approx_eq(&want, 1e-3), "served query must match the reference");
        }

        inc_reps.sort_unstable();
        reb_reps.sort_unstable();
        let (inc_update, inc_query) = inc_reps[1];
        let (reb_update, reb_query) = reb_reps[1];
        let per_batch = |ns: u128| ns as f64 / batches as f64;
        let speedup = per_batch(reb_update) / per_batch(inc_update).max(1.0);
        let config = format!(
            "n={n} nnz0={} batches={batches} ops={ops} queries={queries} d={feat} smoke={}",
            g.nnz(),
            smoke()
        );
        push("update/incremental", per_batch(inc_update), "ns", "lower", &config);
        push("update/rebuild", per_batch(reb_update), "ns", "lower", &config);
        push("update/speedup", speedup, "ratio", "higher", &config);
        push("query/incremental", per_batch(inc_query), "ns", "lower", &config);
        push("query/rebuild", per_batch(reb_query), "ns", "lower", &config);
        if std::env::var_os("SPARSETIR_BENCH_ASSERT").is_some() {
            assert!(
                speedup >= INCREMENTAL_SPEEDUP_BAR,
                "incremental graph updates {speedup:.2}x below the {INCREMENTAL_SPEEDUP_BAR}x bar"
            );
        }
        let fmt_ms =
            |ns: f64| format!("{:.3}", Duration::from_nanos(ns as u64).as_secs_f64() * 1e3);
        let rows = vec![vec![
            batches.to_string(),
            ops.to_string(),
            fmt_ms(per_batch(inc_update)),
            fmt_ms(per_batch(reb_update)),
            fmt_speedup(speedup),
            fmt_ms(per_batch(inc_query)),
            fmt_ms(per_batch(reb_query)),
        ]];
        render_table(
            &format!(
                "Dynamic graphs: incremental delta maintenance vs rebuild-from-scratch (n={n}, bar ≥ {INCREMENTAL_SPEEDUP_BAR}x on the update path)"
            ),
            &[
                "batches",
                "ops/batch",
                "inc update ms",
                "rebuild ms",
                "speedup",
                "inc query ms",
                "rebuild query ms",
            ],
            &rows,
        )
    }
}
