//! Table formatting and aggregation helpers shared by the experiment
//! harnesses.

/// Geometric mean (0 when empty).
#[must_use]
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|x| x.max(1e-12).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Render an aligned text table.
#[must_use]
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    let mut header_line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        header_line.push_str(&format!("{h:<w$}  ", w = w));
    }
    out.push_str(header_line.trim_end());
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            line.push_str(&format!("{cell:<w$}  ", w = w));
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Format a speedup with two decimals.
#[must_use]
pub fn fmt_speedup(x: f64) -> String {
    format!("{x:.2}x")
}

/// Format milliseconds with three significant decimals.
#[must_use]
pub fn fmt_ms(x: f64) -> String {
    format!("{x:.3}ms")
}

/// Format a seconds value as microseconds (measured tuning trials).
#[must_use]
pub fn fmt_us(seconds: f64) -> String {
    format!("{:.1} µs", seconds * 1e6)
}

/// Format a percentage.
#[must_use]
pub fn fmt_pct(x: f64) -> String {
    format!("{x:.1}%")
}

/// Format bytes as MB.
#[must_use]
pub fn fmt_mb(bytes: u64) -> String {
    format!("{:.1}MB", bytes as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_uniform_is_value() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            "T",
            &["name", "value"],
            &[vec!["a".into(), "1".into()], vec!["long-name".into(), "2".into()]],
        );
        assert!(t.contains("== T =="));
        assert!(t.contains("long-name"));
    }
}
