//! # sparsetir-bench
//!
//! The benchmark harness regenerating every table and figure of the
//! paper's evaluation (one binary per experiment, see DESIGN.md §4's
//! per-experiment index). Absolute times come from the GPU simulator —
//! the documented substitution for the paper's V100/RTX 3070 testbeds —
//! so the *relative* numbers (speedups, hit rates, crossovers) are the
//! reproduction targets.

#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod util;
