//! Regenerates the paper's fig13 (see DESIGN.md §4).
fn main() {
    print!("{}", sparsetir_bench::experiments::fig13::run());
}
