//! Regenerates the paper's fig19 (see DESIGN.md §4).
fn main() {
    print!("{}", sparsetir_bench::experiments::fig19::run());
}
