//! Regenerates the paper's fig14 (see DESIGN.md §4).
fn main() {
    print!("{}", sparsetir_bench::experiments::fig14::run());
}
