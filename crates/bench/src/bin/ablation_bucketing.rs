//! Regenerates the bucketing on/off ablation (see DESIGN.md §5.6).
fn main() {
    print!("{}", sparsetir_bench::experiments::ablation_bucketing::run());
}
