//! Runs the serving-throughput experiment (batched vs unbatched engine
//! at 1/4/8 client threads) and writes `BENCH_results.json`.
//! `SPARSETIR_BENCH_ASSERT=1` enforces the ≥ 2× batched-over-unbatched
//! requests/sec bar at 8 clients.

use sparsetir_bench::{experiments, report};

fn main() {
    print!("{}", experiments::serving_throughput::run());
    let records = report::take_records();
    let path = std::path::Path::new("BENCH_results.json");
    report::write_results(path, &records, experiments::smoke()).expect("write BENCH_results.json");
    eprintln!("[serving_throughput] wrote {} records to {}", records.len(), path.display());
}
