//! Runs the perf-gated experiments — `executor_vectorization`,
//! `flat_executor`, `serving_throughput`, `serving_zero_copy`,
//! `fused_attention`, `serving_slo` and `dynamic_graphs` — in one
//! process and writes their combined records to `BENCH_results.json`,
//! the input of the CI perf-gate and of
//! `scripts/update_bench_baseline.sh`.
//! `SPARSETIR_BENCH_ASSERT=1` arms every bar: ≥ 2× fused-over-generic on
//! CSR SpMM, ≥ 1× bytecode-over-tree on generic CSR SpMM, ≥ 2× batched
//! SpMM serving at 8 clients, ≥ 1.1× batched SDDMM serving at 8 clients,
//! ≥ 1.2× zero-copy view batching over copy batching at 8 clients,
//! ≥ 2× fused attention serving over the three-launch pipeline at 8
//! clients, ≥ 1.3× SLO deadline-hit-rate over the FIFO baseline at 8
//! clients (with non-degenerate p50/p95/p99), ≥ 1.2× incremental graph
//! updates over rebuild-from-scratch.

use sparsetir_bench::{experiments, report};

fn main() {
    print!("{}", experiments::executor_vectorization::run());
    println!();
    print!("{}", experiments::flat_executor::run());
    println!();
    print!("{}", experiments::serving_throughput::run());
    println!();
    print!("{}", experiments::serving_zero_copy::run());
    println!();
    print!("{}", experiments::fused_attention::run());
    println!();
    print!("{}", experiments::serving_slo::run());
    println!();
    print!("{}", experiments::dynamic_graphs::run());
    let records = report::take_records();
    let path = std::path::Path::new("BENCH_results.json");
    report::write_results(path, &records, experiments::smoke()).expect("write BENCH_results.json");
    eprintln!("[perf_suite] wrote {} records to {}", records.len(), path.display());
}
