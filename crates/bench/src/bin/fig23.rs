//! Regenerates the paper's fig23 (see DESIGN.md §4).
fn main() {
    print!("{}", sparsetir_bench::experiments::fig23::run());
}
