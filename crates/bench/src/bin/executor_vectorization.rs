//! Runs the executor-vectorization bench (generic slot dispatch vs fused
//! dense-lane microkernels) and writes `BENCH_results.json` — the input
//! of the CI perf-gate. `SPARSETIR_BENCH_ASSERT=1` enforces the ≥ 2×
//! fused-over-generic bar on CSR SpMM (cora, d=32).

use sparsetir_bench::{experiments, report};

fn main() {
    print!("{}", experiments::executor_vectorization::run());
    let records = report::take_records();
    let path = std::path::Path::new("BENCH_results.json");
    report::write_results(path, &records, experiments::smoke()).expect("write BENCH_results.json");
    eprintln!("[executor_vectorization] wrote {} records to {}", records.len(), path.display());
}
