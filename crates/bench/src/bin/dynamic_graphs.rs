//! Runs the dynamic-graphs experiment (sustained edge-update stream +
//! query throughput: incremental `Engine::apply_delta` maintenance vs
//! rebuild-from-scratch per batch) and writes `BENCH_results.json`.
//! `SPARSETIR_BENCH_ASSERT=1` enforces the ≥ 1.2× incremental-update
//! speedup bar and the bit-identical final-matrix check always runs.

use sparsetir_bench::{experiments, report};

fn main() {
    print!("{}", experiments::dynamic_graphs::run());
    let records = report::take_records();
    let path = std::path::Path::new("BENCH_results.json");
    report::write_results(path, &records, experiments::smoke()).expect("write BENCH_results.json");
    eprintln!("[dynamic_graphs] wrote {} records to {}", records.len(), path.display());
}
