//! Regenerates the paper's fig20 (see DESIGN.md §4).
fn main() {
    print!("{}", sparsetir_bench::experiments::fig20::run());
}
