//! Regenerates the paper's table1 (see DESIGN.md §4).
fn main() {
    print!("{}", sparsetir_bench::experiments::table1::run());
}
