//! Runs every experiment harness in sequence (the full reproduction).
use sparsetir_bench::experiments as e;

fn main() {
    for (name, run) in [
        ("table1", e::table1::run as fn() -> String),
        ("fig12", e::fig12::run),
        ("fig13", e::fig13::run),
        ("fig14", e::fig14::run),
        ("fig15", e::fig15::run),
        ("fig16", e::fig16::run),
        ("fig17", e::fig17::run),
        ("fig19", e::fig19::run),
        ("table2", e::table2::run),
        ("fig20", e::fig20::run),
        ("fig23", e::fig23::run),
        ("ablation_hfuse", e::ablation_hfuse::run),
        ("ablation_bucketing", e::ablation_bucketing::run),
        ("autotuning", e::autotuning::run),
    ] {
        eprintln!("[all_experiments] running {name} …");
        print!("{}", run());
        println!();
    }
}
