//! Runs every experiment harness in sequence (the full reproduction) and
//! writes the collected timing records to `BENCH_results.json`.
use sparsetir_bench::{experiments as e, report};

fn main() {
    for (name, run) in [
        ("table1", e::table1::run as fn() -> String),
        ("fig12", e::fig12::run),
        ("fig13", e::fig13::run),
        ("fig14", e::fig14::run),
        ("fig15", e::fig15::run),
        ("fig16", e::fig16::run),
        ("fig17", e::fig17::run),
        ("fig19", e::fig19::run),
        ("table2", e::table2::run),
        ("fig20", e::fig20::run),
        ("fig23", e::fig23::run),
        ("ablation_hfuse", e::ablation_hfuse::run),
        ("ablation_bucketing", e::ablation_bucketing::run),
        ("autotuning", e::autotuning::run),
        ("executor_vectorization", e::executor_vectorization::run),
        ("flat_executor", e::flat_executor::run),
        ("serving_throughput", e::serving_throughput::run),
        ("serving_zero_copy", e::serving_zero_copy::run),
        ("fused_attention", e::fused_attention::run),
        ("serving_slo", e::serving_slo::run),
        ("dynamic_graphs", e::dynamic_graphs::run),
    ] {
        eprintln!("[all_experiments] running {name} …");
        print!("{}", run());
        println!();
    }
    let records = report::take_records();
    let path = std::path::Path::new("BENCH_results.json");
    report::write_results(path, &records, e::smoke()).expect("write BENCH_results.json");
    eprintln!("[all_experiments] wrote {} records to {}", records.len(), path.display());
}
