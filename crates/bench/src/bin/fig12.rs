//! Regenerates the paper's fig12 (see DESIGN.md §4).
fn main() {
    print!("{}", sparsetir_bench::experiments::fig12::run());
}
