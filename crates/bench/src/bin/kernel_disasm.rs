//! Dump the flat-bytecode disassembly of a canonical kernel to stdout.
//!
//! ```text
//! kernel_disasm <csr_spmm|hyb_spmm|batched_sddmm|fused_attention|all> [feat]
//! ```
//!
//! Uses the same deterministic fixture matrix as the golden-file tests
//! (`crates/ir/tests/golden/`), so the output for the default `feat`
//! matches the committed listings; pass a different `feat` to inspect how
//! the shape changes lowering. The `SPARSETIR_TREE_EXEC` /
//! `SPARSETIR_NO_FUSE` knobs apply: disassembly is backend-independent,
//! but disabling fusion shows the stream without superinstructions.

use sparsetir_ir::prelude::*;
use sparsetir_kernels::prelude::*;
use sparsetir_kernels::sddmm::batched_sddmm_ir;
use sparsetir_smat::prelude::*;

/// The golden-file fixture: deterministic 6×6 matrix, row degrees 0–5.
fn fixture_csr() -> Csr {
    let indptr = vec![0, 3, 4, 4, 9, 10, 12];
    let indices: Vec<u32> = vec![0, 2, 4, 1, 0, 1, 2, 3, 5, 3, 2, 4];
    let values: Vec<f32> = (0..12).map(|i| 0.5 + i as f32 * 0.25).collect();
    Csr::new(6, 6, indptr, indices, values).expect("valid fixture matrix")
}

fn build(kernel: &str, feat: usize) -> Result<PrimFunc, Box<dyn std::error::Error>> {
    let a = fixture_csr();
    match kernel {
        "csr_spmm" => csr_spmm_ir(&a, feat),
        "hyb_spmm" => {
            let x = Dense::from_fn(a.cols(), feat, |i, j| (i * feat + j) as f32 * 0.125 - 1.0);
            let cfg =
                SpmmConfig { col_parts: Some(2), bucket_k: 2, params: CsrSpmmParams::default() };
            Ok(prepare_spmm(&a, &x, &cfg)?.func)
        }
        "batched_sddmm" => batched_sddmm_ir(&a, 2, feat),
        "fused_attention" => fused_attention_ir(&a, 2, feat, 3),
        other => Err(format!("unknown kernel `{other}`").into()),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let kernel = args.next().unwrap_or_else(|| {
        eprintln!(
            "usage: kernel_disasm <csr_spmm|hyb_spmm|batched_sddmm|fused_attention|all> [feat]"
        );
        std::process::exit(2);
    });
    let feat: usize = args.next().map_or(4, |s| s.parse().expect("feat must be an integer"));
    let names = if kernel == "all" {
        vec!["csr_spmm", "hyb_spmm", "batched_sddmm", "fused_attention"]
    } else {
        vec![kernel.as_str()]
    };
    for (i, name) in names.iter().enumerate() {
        let func = match build(name, feat) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("kernel_disasm: {e}");
                std::process::exit(2);
            }
        };
        let compiled = match CompiledKernel::compile(&func) {
            Ok(k) => k,
            Err(e) => {
                eprintln!("kernel_disasm: compile failed: {e}");
                std::process::exit(1);
            }
        };
        if i > 0 {
            println!();
        }
        print!("{}", compiled.disassemble());
    }
}
