//! Regenerates the paper's fig16 (see DESIGN.md §4).
fn main() {
    print!("{}", sparsetir_bench::experiments::fig16::run());
}
