//! Regenerates the paper's ablation_hfuse (see DESIGN.md §4).
fn main() {
    print!("{}", sparsetir_bench::experiments::ablation_hfuse::run());
}
