//! CI perf-gate: compares `BENCH_results.json` against the committed
//! `BENCH_baseline.json` with a relative tolerance (±30% by default) and
//! exits non-zero on regression, printing one line per offending metric.
//!
//! `SPARSETIR_BENCH_GATE` selects which units are *fatal*: `all`
//! (default — same-machine comparisons, the baseline-refresh workflow)
//! or `ratio` (CI on shared runners, where absolute-nanosecond records
//! measured on other hardware are reported but only machine-portable
//! speedup ratios fail the job). Paths and tolerance are overridable via
//! `SPARSETIR_BENCH_RESULTS`, `SPARSETIR_BENCH_BASELINE` and
//! `SPARSETIR_BENCH_TOL`. Refresh the baseline intentionally with
//! `scripts/update_bench_baseline.sh`.

use sparsetir_bench::report;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let results = PathBuf::from(
        std::env::var("SPARSETIR_BENCH_RESULTS").unwrap_or_else(|_| "BENCH_results.json".into()),
    );
    let baseline = PathBuf::from(
        std::env::var("SPARSETIR_BENCH_BASELINE").unwrap_or_else(|_| "BENCH_baseline.json".into()),
    );
    let tolerance = std::env::var("SPARSETIR_BENCH_TOL")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.30);
    let ratio_only =
        matches!(std::env::var("SPARSETIR_BENCH_GATE").as_deref(), Ok("ratio") | Ok("ratios"));

    let cmp = match report::compare_files(&results, &baseline, tolerance) {
        Ok(cmp) => cmp,
        Err(msg) => {
            eprintln!("perf-gate error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "perf-gate: {} metric(s) compared against {} (tolerance ±{:.0}%, gating {})",
        cmp.compared,
        baseline.display(),
        tolerance * 100.0,
        if ratio_only { "ratio records only" } else { "all records" }
    );
    for m in &cmp.missing {
        println!("  missing from results (not gated): {m}");
    }
    for i in &cmp.improvements {
        println!("  improvement (consider refreshing the baseline): {}", i.detail);
    }
    if cmp.compared == 0 {
        eprintln!("perf-gate: nothing compared — baseline and results share no metrics");
        return ExitCode::FAILURE;
    }
    let (fatal, advisory): (Vec<_>, Vec<_>) =
        cmp.regressions.iter().partition(|d| !ratio_only || d.unit == "ratio");
    for r in &advisory {
        println!("  regression (non-ratio, advisory under ratio gating): {}", r.detail);
    }
    if fatal.is_empty() {
        println!("perf-gate: OK");
        ExitCode::SUCCESS
    } else {
        for r in &fatal {
            eprintln!("  REGRESSION: {}", r.detail);
        }
        eprintln!(
            "perf-gate: {} regression(s) beyond ±{:.0}% — run scripts/update_bench_baseline.sh if intentional",
            fatal.len(),
            tolerance * 100.0
        );
        ExitCode::FAILURE
    }
}
