//! Runs the flat-executor bench (bytecode dispatch loop vs recursive
//! tree walk on the executor-vectorization kernel suite) and writes
//! `BENCH_results.json` — the input of the CI perf-gate.
//! `SPARSETIR_BENCH_ASSERT=1` enforces the ≥ 1× bytecode-over-tree bar
//! on generic CSR SpMM (cora, d=32).

use sparsetir_bench::{experiments, report};

fn main() {
    print!("{}", experiments::flat_executor::run());
    let records = report::take_records();
    let path = std::path::Path::new("BENCH_results.json");
    report::write_results(path, &records, experiments::smoke()).expect("write BENCH_results.json");
    eprintln!("[flat_executor] wrote {} records to {}", records.len(), path.display());
}
