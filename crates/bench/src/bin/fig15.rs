//! Regenerates the paper's fig15 (see DESIGN.md §4).
fn main() {
    print!("{}", sparsetir_bench::experiments::fig15::run());
}
