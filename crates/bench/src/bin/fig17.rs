//! Regenerates the paper's fig17 (see DESIGN.md §4).
fn main() {
    print!("{}", sparsetir_bench::experiments::fig17::run());
}
