//! Runs the SLO-serving experiment (Hi-priority deadline-hit-rate under
//! a saturating Lo flood, SLO machinery vs FIFO baseline at 1/4/8
//! clients) and writes `BENCH_results.json`. `SPARSETIR_BENCH_ASSERT=1`
//! enforces the ≥ 1.3× hit-rate-gain bar at 8 clients and the
//! non-degenerate p50/p95/p99 check.

use sparsetir_bench::{experiments, report};

fn main() {
    print!("{}", experiments::serving_slo::run());
    let records = report::take_records();
    let path = std::path::Path::new("BENCH_results.json");
    report::write_results(path, &records, experiments::smoke()).expect("write BENCH_results.json");
    eprintln!("[serving_slo] wrote {} records to {}", records.len(), path.display());
}
