//! Regenerates the paper's table2 (see DESIGN.md §4).
fn main() {
    print!("{}", sparsetir_bench::experiments::table2::run());
}
