//! Machine-readable benchmark reporting: experiments record
//! [`BenchRecord`]s into a process-wide collector, the harness binaries
//! flush them to `BENCH_results.json`, and the CI perf-gate compares that
//! file against a committed `BENCH_baseline.json` with a relative
//! tolerance (±30% by default), failing on regression.
//!
//! The JSON schema (`"schema": 1`):
//!
//! ```json
//! {
//!   "schema": 1,
//!   "git_sha": "abc123…",
//!   "smoke": true,
//!   "records": [
//!     {
//!       "experiment": "executor_vectorization",
//!       "name": "csr_spmm/cora/d32/fused",
//!       "value": 2781000.0,
//!       "unit": "ns",
//!       "better": "lower",
//!       "config": "threads=1 reps=9"
//!     }
//!   ]
//! }
//! ```
//!
//! `value` is the median of the timed repetitions for `"unit": "ns"`
//! records, a dimensionless ratio for `"unit": "ratio"` records
//! (speedups — machine-portable, unlike absolute nanoseconds), and a
//! `[0, 1]` fraction for `"unit": "rate"` records (hit/success rates —
//! portable but load-sensitive, so ratio-only gating treats them as
//! advisory like `"ns"`). `better`
//! gives the regression direction: a `lower`-is-better record regresses
//! when `value` rises more than the tolerance above the baseline, a
//! `higher`-is-better record when it falls more than the tolerance below.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

/// One benchmark measurement destined for `BENCH_results.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Experiment harness that produced the record.
    pub experiment: String,
    /// Metric identifier, unique within the experiment.
    pub name: String,
    /// Median nanoseconds (`unit == "ns"`), dimensionless ratio
    /// (`unit == "ratio"`), or `[0, 1]` fraction (`unit == "rate"`).
    pub value: f64,
    /// `"ns"`, `"ratio"`, or `"rate"`.
    pub unit: &'static str,
    /// Regression direction: `"lower"` or `"higher"` is better.
    pub better: &'static str,
    /// Free-form configuration note (sizes, thread count, repetitions).
    pub config: String,
}

fn collector() -> &'static Mutex<Vec<BenchRecord>> {
    static COLLECTOR: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());
    &COLLECTOR
}

/// Append a record to the process-wide collector.
pub fn record(rec: BenchRecord) {
    collector().lock().unwrap().push(rec);
}

/// Drain every record collected so far.
#[must_use]
pub fn take_records() -> Vec<BenchRecord> {
    std::mem::take(&mut *collector().lock().unwrap())
}

/// Current git revision: `GITHUB_SHA` when CI provides it, otherwise
/// `git rev-parse HEAD`, otherwise `"unknown"`.
#[must_use]
pub fn git_sha() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return sha;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map_or_else(|| "unknown".to_string(), |s| s.trim().to_string())
}

/// Median wall-clock nanoseconds of `reps` runs of `f` (after one
/// untimed warmup run).
pub fn median_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as f64
        })
        .collect();
    median(&mut times)
}

/// Median of a sample vector (sorts in place).
///
/// # Panics
/// Panics on an empty slice.
pub fn median(samples: &mut [f64]) -> f64 {
    assert!(!samples.is_empty(), "median of no samples");
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the results document.
#[must_use]
pub fn render_results(records: &[BenchRecord], smoke: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": {SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"git_sha\": \"{}\",", escape(&git_sha()));
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"experiment\": \"{}\", \"name\": \"{}\", \"value\": {}, \"unit\": \"{}\", \"better\": \"{}\", \"config\": \"{}\"}}{comma}",
            escape(&r.experiment),
            escape(&r.name),
            r.value,
            r.unit,
            r.better,
            escape(&r.config),
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Write `records` to `path` as `BENCH_results.json`.
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_results(
    path: &Path,
    records: &[BenchRecord],
    smoke: bool,
) -> Result<(), std::io::Error> {
    std::fs::write(path, render_results(records, smoke))
}

// ---------------------------------------------------------------------------
// Minimal JSON reader (the subset the writer above emits)
// ---------------------------------------------------------------------------

/// Parsed JSON value (subset: objects, arrays, strings, numbers, bools).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Object(Vec<(String, Json)>),
    Array(Vec<Json>),
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'n' => self.lit("null", Json::Null),
            _ => self.number(),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        // Accumulate raw bytes and decode once: unescaped content may be
        // multi-byte UTF-8 (the writer only escapes quotes, backslashes
        // and control characters).
        let mut raw: Vec<u8> = Vec::new();
        loop {
            let c = *self.bytes.get(self.pos).ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match c {
                b'"' => {
                    return String::from_utf8(raw).map_err(|_| self.err("invalid UTF-8 in string"))
                }
                b'\\' => {
                    let e =
                        *self.bytes.get(self.pos).ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match e {
                        b'"' => raw.push(b'"'),
                        b'\\' => raw.push(b'\\'),
                        b'/' => raw.push(b'/'),
                        b'n' => raw.push(b'\n'),
                        b't' => raw.push(b'\t'),
                        b'r' => raw.push(b'\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            let mut buf = [0u8; 4];
                            raw.extend_from_slice(
                                char::from_u32(code)
                                    .unwrap_or('\u{fffd}')
                                    .encode_utf8(&mut buf)
                                    .as_bytes(),
                            );
                        }
                        _ => return Err(self.err("unsupported escape")),
                    }
                }
                c => raw.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}

fn parse_json(s: &str) -> Result<Json, String> {
    let mut p = Parser::new(s);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content"));
    }
    Ok(v)
}

/// The schema version this module writes and reads.
pub const SCHEMA_VERSION: f64 = 1.0;

/// Parse a `BENCH_results.json` document into its records.
///
/// # Errors
/// Returns a description of the first malformed construct, including a
/// missing or unknown `schema` version — the perf-gate must refuse to
/// compare documents written under a different schema rather than
/// silently misreading them.
pub fn parse_results(text: &str) -> Result<Vec<BenchRecord>, String> {
    let doc = parse_json(text)?;
    match doc.get("schema").and_then(Json::as_num) {
        Some(v) if v == SCHEMA_VERSION => {}
        Some(v) => {
            return Err(format!("unsupported schema version {v} (expected {SCHEMA_VERSION})"))
        }
        None => return Err("missing `schema` version".to_string()),
    }
    let records = doc
        .get("records")
        .and_then(|r| match r {
            Json::Array(items) => Some(items),
            _ => None,
        })
        .ok_or("missing `records` array")?;
    let mut out = Vec::with_capacity(records.len());
    for (i, r) in records.iter().enumerate() {
        let field = |k: &str| -> Result<&str, String> {
            r.get(k).and_then(Json::as_str).ok_or(format!("record {i}: missing `{k}`"))
        };
        let unit = match field("unit")? {
            "ns" => "ns",
            "ratio" => "ratio",
            "rate" => "rate",
            other => return Err(format!("record {i}: unknown unit `{other}`")),
        };
        let better = match field("better")? {
            "lower" => "lower",
            "higher" => "higher",
            other => return Err(format!("record {i}: unknown direction `{other}`")),
        };
        out.push(BenchRecord {
            experiment: field("experiment")?.to_string(),
            name: field("name")?.to_string(),
            value: r
                .get("value")
                .and_then(Json::as_num)
                .ok_or(format!("record {i}: missing `value`"))?,
            unit,
            better,
            config: field("config")?.to_string(),
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Baseline comparison (the perf-gate)
// ---------------------------------------------------------------------------

/// One metric that moved beyond the tolerance.
#[derive(Debug, Clone)]
pub struct Delta {
    /// `experiment::name` key.
    pub key: String,
    /// The record's unit (`"ns"` — machine-specific — or `"ratio"` —
    /// portable across hardware).
    pub unit: &'static str,
    /// Human-readable `old -> new (±%)` description.
    pub detail: String,
}

/// Outcome of comparing results against a committed baseline.
#[derive(Debug, Default)]
pub struct Comparison {
    /// Metrics that moved in the worse direction beyond the tolerance.
    pub regressions: Vec<Delta>,
    /// Metrics that moved in the better direction beyond the tolerance
    /// (informational — a nudge to refresh the baseline).
    pub improvements: Vec<Delta>,
    /// Baseline metrics absent from the results (informational).
    pub missing: Vec<String>,
    /// Number of metrics present in both files.
    pub compared: usize,
}

/// Compare `results` against `baseline` with relative `tolerance`
/// (0.30 = ±30%). A `lower`-is-better metric regresses when
/// `value > baseline · (1 + tolerance)`; a `higher`-is-better metric when
/// `value < baseline · (1 − tolerance)`. The boundary itself is *inside*
/// the tolerance — a ratio landing exactly on ±tolerance passes, with a
/// tiny epsilon absorbing the floating-point rounding of the
/// `value / baseline` division (without it, `130.0` against a `100.0`
/// baseline at 0.30 tolerance computes `0.30000000000000004` and fails).
/// Metrics only present in the results pass silently (new benches need a
/// baseline refresh to be gated).
#[must_use]
pub fn compare(results: &[BenchRecord], baseline: &[BenchRecord], tolerance: f64) -> Comparison {
    const BOUNDARY_EPS: f64 = 1e-9;
    let by_key: HashMap<(&str, &str), &BenchRecord> =
        results.iter().map(|r| ((r.experiment.as_str(), r.name.as_str()), r)).collect();
    let mut cmp = Comparison::default();
    for base in baseline {
        let key = format!("{}::{}", base.experiment, base.name);
        let Some(cur) = by_key.get(&(base.experiment.as_str(), base.name.as_str())) else {
            cmp.missing.push(key);
            continue;
        };
        cmp.compared += 1;
        let describe = |rel: f64| Delta {
            key: key.clone(),
            unit: cur.unit,
            detail: format!(
                "{key}: {:.3} -> {:.3} {} ({:+.1}%)",
                base.value,
                cur.value,
                cur.unit,
                rel * 100.0
            ),
        };
        if base.value <= 0.0 {
            continue;
        }
        let rel = cur.value / base.value - 1.0;
        let worse = match base.better {
            "higher" => -rel,
            _ => rel,
        };
        if worse > tolerance + BOUNDARY_EPS {
            cmp.regressions.push(describe(rel));
        } else if worse < -(tolerance + BOUNDARY_EPS) {
            cmp.improvements.push(describe(rel));
        }
    }
    cmp
}

/// Load, parse and compare two result files.
///
/// # Errors
/// Returns a message when either file is unreadable or malformed.
pub fn compare_files(
    results: &Path,
    baseline: &Path,
    tolerance: f64,
) -> Result<Comparison, String> {
    let res = std::fs::read_to_string(results)
        .map_err(|e| format!("cannot read {}: {e}", results.display()))?;
    let base = std::fs::read_to_string(baseline)
        .map_err(|e| format!("cannot read {}: {e}", baseline.display()))?;
    Ok(compare(
        &parse_results(&res).map_err(|e| format!("{}: {e}", results.display()))?,
        &parse_results(&base).map_err(|e| format!("{}: {e}", baseline.display()))?,
        tolerance,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(exp: &str, name: &str, value: f64, better: &'static str) -> BenchRecord {
        BenchRecord {
            experiment: exp.to_string(),
            name: name.to_string(),
            value,
            unit: if better == "higher" { "ratio" } else { "ns" },
            better,
            // Quotes, backslash-free multi-byte UTF-8 and an escape all
            // must survive the writer → parser round trip.
            config: "cfg \"quoted\" ≥2× bar\nnext".to_string(),
        }
    }

    #[test]
    fn results_round_trip_through_json() {
        let records = vec![
            rec("executor", "csr/d32/fused", 123456.0, "lower"),
            rec("executor", "speedup", 7.5, "higher"),
        ];
        let text = render_results(&records, true);
        let parsed = parse_results(&text).expect("parses");
        assert_eq!(parsed, records);
        assert!(text.contains("\"schema\": 1"));
        assert!(text.contains("\"smoke\": true"));
    }

    #[test]
    fn compare_flags_regressions_by_direction() {
        let baseline = vec![
            rec("e", "time", 100.0, "lower"),
            rec("e", "speedup", 10.0, "higher"),
            rec("e", "gone", 1.0, "lower"),
        ];
        let results = vec![
            rec("e", "time", 140.0, "lower"),   // +40% → regression
            rec("e", "speedup", 6.0, "higher"), // −40% → regression
            rec("e", "new", 1.0, "lower"),      // not in baseline → ignored
        ];
        let cmp = compare(&results, &baseline, 0.30);
        assert_eq!(cmp.compared, 2);
        assert_eq!(cmp.regressions.len(), 2, "{:?}", cmp.regressions);
        assert_eq!(cmp.missing, vec!["e::gone".to_string()]);
        // Units ride along so the gate can treat machine-specific ns
        // records as advisory on foreign hardware.
        assert!(cmp.regressions.iter().any(|d| d.unit == "ns" && d.key == "e::time"));
        assert!(cmp.regressions.iter().any(|d| d.unit == "ratio" && d.key == "e::speedup"));

        // Within tolerance: clean.
        let results = vec![rec("e", "time", 120.0, "lower"), rec("e", "speedup", 9.0, "higher")];
        let cmp = compare(&results, &baseline, 0.30);
        assert!(cmp.regressions.is_empty());

        // Large improvement is reported as such, not as a regression.
        let results = vec![rec("e", "time", 20.0, "lower"), rec("e", "speedup", 30.0, "higher")];
        let cmp = compare(&results, &baseline, 0.30);
        assert!(cmp.regressions.is_empty());
        assert_eq!(cmp.improvements.len(), 2);
    }

    #[test]
    fn collector_drains_records() {
        record(rec("t", "a", 1.0, "lower"));
        record(rec("t", "b", 2.0, "lower"));
        let drained = take_records();
        assert!(drained.len() >= 2, "records collected");
        assert!(take_records().is_empty(), "collector drained");
    }

    #[test]
    fn median_is_robust_to_reps() {
        let v = median_ns(5, std::thread::yield_now);
        assert!(v >= 0.0);
    }
}
