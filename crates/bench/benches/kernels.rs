//! Criterion benches over the kernel families of the evaluation: each
//! group measures the wall-clock cost of building + simulating the
//! kernel plans that the figure harnesses sweep (the simulator being this
//! reproduction's substituted "hardware"), plus the functional reference
//! computations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparsetir_baselines::prelude::*;
use sparsetir_core::prelude::*;
use sparsetir_gpusim::prelude::*;
use sparsetir_graphs::prelude::*;
use sparsetir_ir::prelude::*;
use sparsetir_kernels::prelude::*;
use sparsetir_kernels::sparse_conv::ConvMaps;
use sparsetir_smat::prelude::*;
use std::collections::HashMap;
use std::time::Instant;

/// Interpreter vs slot-compiled executor on the lowered CSR SpMM kernel at
/// the paper's default sizes (Table 1 graph, d ∈ {32, 128}). The compiled
/// numbers go through a pre-populated kernel cache, so they measure the
/// amortized compile-once/run-many path; `compile_plus_run` measures the
/// cold path.
fn bench_executor(c: &mut Criterion) {
    let g = graph_by_name("cora").expect("registered").generate();
    let mut group = c.benchmark_group("executor");
    group.sample_size(10);
    for feat in [32usize, 128] {
        let f = csr_spmm_ir(&g, feat).expect("lowers");
        let runtime = Runtime::new();
        let kernel = runtime.compile(&f).expect("compiles");
        let generic = runtime.compile_with(&f, false).expect("compiles");
        let mut rng = gen::rng(3);
        let x = gen::random_dense(g.cols(), feat, &mut rng);
        let mut bindings = Bindings::new();
        bind_csr(&mut bindings, "A", "J", &g);
        bind_dense(&mut bindings, "B", &x);
        bind_zeros(&mut bindings, "C", g.rows() * feat);
        let no_scalars = HashMap::new();
        group.bench_with_input(BenchmarkId::new("interpreter", feat), &feat, |b, _| {
            b.iter(|| eval_func(&f, &no_scalars, &mut bindings).expect("interprets"))
        });
        group.bench_with_input(BenchmarkId::new("compiled_generic", feat), &feat, |b, _| {
            b.iter(|| generic.run(&no_scalars, &mut bindings).expect("executes"))
        });
        group.bench_with_input(BenchmarkId::new("compiled_fused", feat), &feat, |b, _| {
            b.iter(|| kernel.run(&no_scalars, &mut bindings).expect("executes"))
        });
        group.bench_with_input(BenchmarkId::new("compile_plus_run", feat), &feat, |b, _| {
            b.iter(|| {
                let k = Runtime::new().compile(&f).expect("compiles");
                k.run(&no_scalars, &mut bindings).expect("executes")
            })
        });
    }
    group.finish();

    // Headline numbers on CSR SpMM (d=32): the *generic* slot executor
    // must beat the interpreter by ≥ 5× (the original slot-compilation
    // claim, asserted on the generic build so fusion cannot mask a
    // generic-path regression), and the fused microkernel build must
    // beat the generic executor by ≥ 2× (mirroring the perf-gate bar).
    // Skipped in smoke mode (it times 7 full interpreter runs).
    if std::env::var_os("SPARSETIR_BENCH_SMOKE").is_some() {
        return;
    }
    let feat = 32;
    let f = csr_spmm_ir(&g, feat).expect("lowers");
    let rt = Runtime::new();
    let generic = rt.compile_with(&f, false).expect("compiles");
    let fused = rt.compile_with(&f, true).expect("compiles");
    let mut rng = gen::rng(3);
    let x = gen::random_dense(g.cols(), feat, &mut rng);
    let mut bindings = Bindings::new();
    bind_csr(&mut bindings, "A", "J", &g);
    bind_dense(&mut bindings, "B", &x);
    bind_zeros(&mut bindings, "C", g.rows() * feat);
    let no_scalars = HashMap::new();
    let median = |times: &mut Vec<f64>| {
        times.sort_by(f64::total_cmp);
        times[times.len() / 2]
    };
    let mut interp_times = Vec::new();
    let mut generic_times = Vec::new();
    let mut fused_times = Vec::new();
    for _ in 0..7 {
        let t0 = Instant::now();
        eval_func(&f, &no_scalars, &mut bindings).expect("interprets");
        interp_times.push(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        generic.run(&no_scalars, &mut bindings).expect("executes");
        generic_times.push(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        fused.run(&no_scalars, &mut bindings).expect("executes");
        fused_times.push(t0.elapsed().as_secs_f64());
    }
    let interp = median(&mut interp_times);
    let tg = median(&mut generic_times);
    let tf = median(&mut fused_times);
    let speedup = interp / tg;
    let fused_speedup = tg / tf;
    println!("executor/speedup (csr spmm, cora, d=32): {speedup:.1}x generic vs interpreter (bar: >= 5x)");
    println!("executor/fused_speedup (csr spmm, cora, d=32): {fused_speedup:.1}x fused vs generic (bar: >= 2x)");
    if std::env::var_os("SPARSETIR_BENCH_ASSERT").is_some() {
        assert!(speedup >= 5.0, "generic executor speedup {speedup:.1}x below the 5x bar");
        assert!(fused_speedup >= 2.0, "fused speedup {fused_speedup:.1}x below the 2x bar");
    }
}

fn bench_spmm(c: &mut Criterion) {
    let g = graph_by_name("cora").expect("registered").generate();
    let spec = GpuSpec::v100();
    let mut group = c.benchmark_group("spmm");
    group.sample_size(20);
    for feat in [32usize, 128] {
        group.bench_with_input(BenchmarkId::new("csr_sim", feat), &feat, |b, &d| {
            b.iter(|| simulate_kernel(&spec, &csr_spmm_plan(&g, d, CsrSpmmParams::default(), "b")))
        });
        group.bench_with_input(BenchmarkId::new("hyb_sim", feat), &feat, |b, &d| {
            let hyb = Hyb::with_default_k(&g, 2).unwrap();
            b.iter(|| hyb_spmm_time(&spec, &hyb, d, CsrSpmmParams::default()))
        });
        group.bench_with_input(BenchmarkId::new("reference", feat), &feat, |b, &d| {
            let mut rng = gen::rng(1);
            let x = gen::random_dense(g.cols(), d, &mut rng);
            b.iter(|| g.spmm(&x).unwrap())
        });
    }
    group.finish();
}

fn bench_sddmm(c: &mut Criterion) {
    let g = graph_by_name("citeseer").expect("registered").generate();
    let spec = GpuSpec::v100();
    let mut group = c.benchmark_group("sddmm");
    group.sample_size(20);
    group.bench_function("sparsetir_sim", |b| {
        b.iter(|| simulate_kernel(&spec, &sddmm_plan(&g, 64, SddmmParams::default(), "b")))
    });
    group
        .bench_function("dgl_sim", |b| b.iter(|| simulate_kernel(&spec, &sddmm::dgl_plan(&g, 64))));
    group.bench_function("reference", |b| {
        let mut rng = gen::rng(2);
        let x = gen::random_dense(g.rows(), 64, &mut rng);
        let y = gen::random_dense(64, g.cols(), &mut rng);
        b.iter(|| g.sddmm(&x, &y).unwrap())
    });
    group.finish();
}

fn bench_attention(c: &mut Criterion) {
    let mask = band_mask(1024, 128);
    let bsr = Bsr::from_csr(&mask, 32).unwrap();
    let spec = GpuSpec::v100();
    let mut group = c.benchmark_group("attention");
    group.sample_size(20);
    group.bench_function("bsr_tc_sim", |b| {
        b.iter(|| {
            simulate_kernel(
                &spec,
                &batched_bsr_spmm_plan(&bsr, 64, 8, SPARSETIR_BSR_EFFICIENCY, "b"),
            )
        })
    });
    group.bench_function("triton_sim", |b| {
        b.iter(|| simulate_kernel(&spec, &triton_blocksparse_spmm_plan(&mask, 64, 8)))
    });
    group.finish();
}

fn bench_rgms(c: &mut Criterion) {
    let spec_g = hetero_by_name("AIFB").expect("registered");
    let layer_rels = spec_g.generate();
    let w = RgmsWorkload { relations: layer_rels, din: 32, dout: 32 };
    let spec = GpuSpec::v100();
    let mut group = c.benchmark_group("rgms");
    group.sample_size(10);
    group.bench_function("hyb_tc_sim", |b| {
        b.iter(|| simulate_kernel(&spec, &rgms_hyb_plan(&w, 5, true, "b")))
    });
    group.bench_function("two_stage_sim", |b| {
        b.iter(|| simulate_sequence(&spec, &rgms_two_stage_plans(&w, 0.85, true, "b")))
    });
    group.finish();
}

fn bench_sparse_conv(c: &mut Criterion) {
    let cloud = VoxelCloud::synthetic(4000, 8, 1);
    let maps = ConvMaps { sites: cloud.len(), pairs: cloud.kernel_maps() };
    let spec = GpuSpec::v100();
    let mut group = c.benchmark_group("sparse_conv");
    group.sample_size(10);
    for ch in [32usize, 128] {
        group.bench_with_input(BenchmarkId::new("fused_sim", ch), &ch, |b, &ch| {
            b.iter(|| simulate_kernel(&spec, &sparsetir_conv_plan(&maps, ch, ch, "b")))
        });
        group.bench_with_input(BenchmarkId::new("torchsparse_sim", ch), &ch, |b, &ch| {
            b.iter(|| simulate_sequence(&spec, &torchsparse_plans(&maps, ch, ch)))
        });
    }
    group.finish();
}

fn bench_formats(c: &mut Criterion) {
    let g = graph_by_name("pubmed").expect("registered").generate();
    let mut group = c.benchmark_group("format_conversion");
    group.sample_size(20);
    group.bench_function("hyb_from_csr", |b| b.iter(|| Hyb::with_default_k(&g, 4).unwrap()));
    group.bench_function("bsr_from_csr", |b| {
        let mask = band_mask(1024, 128);
        b.iter(|| Bsr::from_csr(&mask, 32).unwrap())
    });
    group.bench_function("srbcrs_from_csr", |b| {
        let w = movement_pruned_weight(768, 768, 0.06, 3);
        b.iter(|| SrBcrs::from_csr(&w, 8, 32).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_executor,
    bench_spmm,
    bench_sddmm,
    bench_attention,
    bench_rgms,
    bench_sparse_conv,
    bench_formats
);
criterion_main!(benches);
