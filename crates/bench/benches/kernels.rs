//! Criterion benches over the kernel families of the evaluation: each
//! group measures the wall-clock cost of building + simulating the
//! kernel plans that the figure harnesses sweep (the simulator being this
//! reproduction's substituted "hardware"), plus the functional reference
//! computations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparsetir_baselines::prelude::*;
use sparsetir_gpusim::prelude::*;
use sparsetir_graphs::prelude::*;
use sparsetir_kernels::prelude::*;
use sparsetir_kernels::sparse_conv::ConvMaps;
use sparsetir_smat::prelude::*;

fn bench_spmm(c: &mut Criterion) {
    let g = graph_by_name("cora").expect("registered").generate();
    let spec = GpuSpec::v100();
    let mut group = c.benchmark_group("spmm");
    group.sample_size(20);
    for feat in [32usize, 128] {
        group.bench_with_input(BenchmarkId::new("csr_sim", feat), &feat, |b, &d| {
            b.iter(|| simulate_kernel(&spec, &csr_spmm_plan(&g, d, CsrSpmmParams::default(), "b")))
        });
        group.bench_with_input(BenchmarkId::new("hyb_sim", feat), &feat, |b, &d| {
            let hyb = Hyb::with_default_k(&g, 2).unwrap();
            b.iter(|| hyb_spmm_time(&spec, &hyb, d, CsrSpmmParams::default()))
        });
        group.bench_with_input(BenchmarkId::new("reference", feat), &feat, |b, &d| {
            let mut rng = gen::rng(1);
            let x = gen::random_dense(g.cols(), d, &mut rng);
            b.iter(|| g.spmm(&x).unwrap())
        });
    }
    group.finish();
}

fn bench_sddmm(c: &mut Criterion) {
    let g = graph_by_name("citeseer").expect("registered").generate();
    let spec = GpuSpec::v100();
    let mut group = c.benchmark_group("sddmm");
    group.sample_size(20);
    group.bench_function("sparsetir_sim", |b| {
        b.iter(|| simulate_kernel(&spec, &sddmm_plan(&g, 64, SddmmParams::default(), "b")))
    });
    group.bench_function("dgl_sim", |b| {
        b.iter(|| simulate_kernel(&spec, &sddmm::dgl_plan(&g, 64)))
    });
    group.bench_function("reference", |b| {
        let mut rng = gen::rng(2);
        let x = gen::random_dense(g.rows(), 64, &mut rng);
        let y = gen::random_dense(64, g.cols(), &mut rng);
        b.iter(|| g.sddmm(&x, &y).unwrap())
    });
    group.finish();
}

fn bench_attention(c: &mut Criterion) {
    let mask = band_mask(1024, 128);
    let bsr = Bsr::from_csr(&mask, 32).unwrap();
    let spec = GpuSpec::v100();
    let mut group = c.benchmark_group("attention");
    group.sample_size(20);
    group.bench_function("bsr_tc_sim", |b| {
        b.iter(|| {
            simulate_kernel(
                &spec,
                &batched_bsr_spmm_plan(&bsr, 64, 8, SPARSETIR_BSR_EFFICIENCY, "b"),
            )
        })
    });
    group.bench_function("triton_sim", |b| {
        b.iter(|| simulate_kernel(&spec, &triton_blocksparse_spmm_plan(&mask, 64, 8)))
    });
    group.finish();
}

fn bench_rgms(c: &mut Criterion) {
    let spec_g = hetero_by_name("AIFB").expect("registered");
    let layer_rels = spec_g.generate();
    let w = RgmsWorkload { relations: layer_rels, din: 32, dout: 32 };
    let spec = GpuSpec::v100();
    let mut group = c.benchmark_group("rgms");
    group.sample_size(10);
    group.bench_function("hyb_tc_sim", |b| {
        b.iter(|| simulate_kernel(&spec, &rgms_hyb_plan(&w, 5, true, "b")))
    });
    group.bench_function("two_stage_sim", |b| {
        b.iter(|| simulate_sequence(&spec, &rgms_two_stage_plans(&w, 0.85, true, "b")))
    });
    group.finish();
}

fn bench_sparse_conv(c: &mut Criterion) {
    let cloud = VoxelCloud::synthetic(4000, 8, 1);
    let maps = ConvMaps { sites: cloud.len(), pairs: cloud.kernel_maps() };
    let spec = GpuSpec::v100();
    let mut group = c.benchmark_group("sparse_conv");
    group.sample_size(10);
    for ch in [32usize, 128] {
        group.bench_with_input(BenchmarkId::new("fused_sim", ch), &ch, |b, &ch| {
            b.iter(|| simulate_kernel(&spec, &sparsetir_conv_plan(&maps, ch, ch, "b")))
        });
        group.bench_with_input(BenchmarkId::new("torchsparse_sim", ch), &ch, |b, &ch| {
            b.iter(|| simulate_sequence(&spec, &torchsparse_plans(&maps, ch, ch)))
        });
    }
    group.finish();
}

fn bench_formats(c: &mut Criterion) {
    let g = graph_by_name("pubmed").expect("registered").generate();
    let mut group = c.benchmark_group("format_conversion");
    group.sample_size(20);
    group.bench_function("hyb_from_csr", |b| {
        b.iter(|| Hyb::with_default_k(&g, 4).unwrap())
    });
    group.bench_function("bsr_from_csr", |b| {
        let mask = band_mask(1024, 128);
        b.iter(|| Bsr::from_csr(&mask, 32).unwrap())
    });
    group.bench_function("srbcrs_from_csr", |b| {
        let w = movement_pruned_weight(768, 768, 0.06, 3);
        b.iter(|| SrBcrs::from_csr(&w, 8, 32).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_spmm,
    bench_sddmm,
    bench_attention,
    bench_rgms,
    bench_sparse_conv,
    bench_formats
);
criterion_main!(benches);
