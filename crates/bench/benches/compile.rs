//! Criterion benches of the *compiler* itself: Stage I construction,
//! format decomposition, the two lowering passes, scheduling and CUDA
//! emission — the costs §2 argues are amortized over kernel reuse.

use criterion::{criterion_group, criterion_main, Criterion};
use sparsetir_core::prelude::*;
use sparsetir_ir::prelude::*;

fn bench_lowering(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile");
    group.sample_size(30);
    group.bench_function("build_stage1_spmm", |b| b.iter(|| spmm_program(1024, 1024, 16384, 64)));
    let program = spmm_program(1024, 1024, 16384, 64);
    group.bench_function("lower_to_stage2", |b| b.iter(|| lower_to_stage2(&program).unwrap()));
    group.bench_function("lower_to_stage3", |b| {
        let s2 = lower_to_stage2(&program).unwrap();
        b.iter(|| lower_to_stage3(&program, &s2).unwrap())
    });
    group.bench_function("decompose_bsr_ell", |b| {
        let rules = vec![
            FormatRewriteRule::bsr("A", 2, 512, 512, 4096),
            FormatRewriteRule::ell("A", 4, 1024, 1024),
        ];
        b.iter(|| decompose_format(&program, &rules).unwrap())
    });
    group.bench_function("schedule_split_bind", |b| {
        let f = lower(&program).unwrap();
        b.iter(|| {
            let mut sch = Schedule::new(f.clone());
            let (_, ki) = sch.split("k", 32).unwrap();
            sch.bind("i", ThreadAxis::BlockIdxX).unwrap();
            sch.bind(&ki, ThreadAxis::ThreadIdxX).unwrap();
            sch.into_func()
        })
    });
    group.bench_function("codegen_cuda", |b| {
        let f = lower(&program).unwrap();
        b.iter(|| codegen_cuda(&f))
    });
    group.finish();
}

criterion_group!(benches, bench_lowering);
criterion_main!(benches);
