//! Every paper-figure experiment must execute end to end without
//! panicking. `SPARSETIR_SMOKE` shrinks the sweeps (fewer graphs, fewer
//! feature sizes, one GPU, smaller synthetic instances) so the whole
//! battery — the same list `all_experiments` runs — finishes in test time.

use sparsetir_bench::experiments as e;

#[test]
fn all_experiments_run_end_to_end_in_smoke_mode() {
    std::env::set_var("SPARSETIR_SMOKE", "1");
    assert!(e::smoke(), "smoke mode must be active for this test");
    for (name, run) in [
        ("table1", e::table1::run as fn() -> String),
        ("fig12", e::fig12::run),
        ("fig13", e::fig13::run),
        ("fig14", e::fig14::run),
        ("fig15", e::fig15::run),
        ("fig16", e::fig16::run),
        ("fig17", e::fig17::run),
        ("fig19", e::fig19::run),
        ("table2", e::table2::run),
        ("fig20", e::fig20::run),
        ("fig23", e::fig23::run),
        ("ablation_hfuse", e::ablation_hfuse::run),
        ("ablation_bucketing", e::ablation_bucketing::run),
        ("autotuning", e::autotuning::run),
    ] {
        let out = run();
        assert!(!out.trim().is_empty(), "{name} rendered nothing");
        assert!(out.contains('|') || out.contains('-'), "{name} is not a table:\n{out}");
    }
}
