//! Every paper-figure experiment must execute end to end without
//! panicking. `SPARSETIR_SMOKE` shrinks the sweeps (fewer graphs, fewer
//! feature sizes, one GPU, smaller synthetic instances) so the whole
//! battery — the same list `all_experiments` runs — finishes in test time.

use sparsetir_bench::{experiments as e, report};

#[test]
fn all_experiments_run_end_to_end_in_smoke_mode() {
    std::env::set_var("SPARSETIR_SMOKE", "1");
    assert!(e::smoke(), "smoke mode must be active for this test");
    for (name, run) in [
        ("table1", e::table1::run as fn() -> String),
        ("fig12", e::fig12::run),
        ("fig13", e::fig13::run),
        ("fig14", e::fig14::run),
        ("fig15", e::fig15::run),
        ("fig16", e::fig16::run),
        ("fig17", e::fig17::run),
        ("fig19", e::fig19::run),
        ("table2", e::table2::run),
        ("fig20", e::fig20::run),
        ("fig23", e::fig23::run),
        ("ablation_hfuse", e::ablation_hfuse::run),
        ("ablation_bucketing", e::ablation_bucketing::run),
        ("autotuning", e::autotuning::run),
        ("executor_vectorization", e::executor_vectorization::run),
        ("flat_executor", e::flat_executor::run),
        ("serving_throughput", e::serving_throughput::run),
        ("serving_zero_copy", e::serving_zero_copy::run),
        ("fused_attention", e::fused_attention::run),
        ("serving_slo", e::serving_slo::run),
        ("dynamic_graphs", e::dynamic_graphs::run),
    ] {
        let out = run();
        assert!(!out.trim().is_empty(), "{name} rendered nothing");
        assert!(out.contains('|') || out.contains('-'), "{name} is not a table:\n{out}");
    }

    // The run must have produced machine-readable records that round-trip
    // through the BENCH JSON schema — what `all_experiments` writes to
    // `BENCH_results.json` and the CI perf-gate consumes.
    let records = report::take_records();
    assert!(
        records.iter().any(|r| r.experiment == "executor_vectorization"),
        "executor_vectorization must record bench results"
    );
    assert!(
        records.iter().any(|r| r.experiment == "flat_executor"),
        "flat_executor must record bytecode-vs-tree results"
    );
    assert!(
        records.iter().any(|r| r.experiment == "autotuning"),
        "autotuning must record measured times"
    );
    assert!(
        records.iter().any(|r| r.experiment == "serving_throughput"),
        "serving_throughput must record requests/sec results"
    );
    assert!(
        records.iter().any(|r| r.experiment == "serving_zero_copy" && r.name == "spmm/c8/speedup"),
        "serving_zero_copy must record the gated 8-client view-over-copy speedup"
    );
    assert!(
        records.iter().any(|r| r.experiment == "fused_attention"),
        "fused_attention must record fused-vs-pipeline results"
    );
    assert!(
        records.iter().any(|r| r.experiment == "serving_slo" && r.name == "c8/hit_gain_capped"),
        "serving_slo must record the gated 8-client hit-rate gain"
    );
    assert!(
        records.iter().any(|r| r.experiment == "serving_slo" && r.unit == "rate"),
        "serving_slo must record raw deadline-hit rates"
    );
    assert!(
        records.iter().any(|r| r.experiment == "dynamic_graphs" && r.name == "update/speedup"),
        "dynamic_graphs must record the gated incremental-vs-rebuild update speedup"
    );
    let dir = std::env::temp_dir().join(format!("sparsetir_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("BENCH_results.json");
    report::write_results(&path, &records, true).unwrap();
    let parsed = report::parse_results(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(parsed, records, "BENCH JSON must round-trip");
    // A results file compared against itself is always within tolerance.
    let cmp = report::compare_files(&path, &path, 0.30).unwrap();
    assert_eq!(cmp.compared, records.len());
    assert!(cmp.regressions.is_empty());
    std::fs::remove_dir_all(&dir).ok();
}
