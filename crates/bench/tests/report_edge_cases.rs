//! Edge-case coverage for the `bench::report` JSON reader and the
//! perf-gate comparator — the paths CI trusts to fail loudly: unknown
//! schema versions, baseline entries missing from the results, ratios
//! sitting exactly on the ± tolerance boundary, and unreadable/empty
//! files.

use sparsetir_bench::report::{compare, compare_files, parse_results, render_results, BenchRecord};

fn rec(name: &str, value: f64, unit: &'static str, better: &'static str) -> BenchRecord {
    BenchRecord {
        experiment: "edge".to_string(),
        name: name.to_string(),
        value,
        unit,
        better,
        config: String::new(),
    }
}

// ---------------------------------------------------------------------------
// Schema versioning
// ---------------------------------------------------------------------------

#[test]
fn unknown_schema_version_is_rejected() {
    let doc = render_results(&[rec("a", 1.0, "ns", "lower")], false);
    let future = doc.replace("\"schema\": 1,", "\"schema\": 2,");
    assert_ne!(doc, future, "replacement must have applied");
    let err = parse_results(&future).expect_err("schema 2 must be rejected");
    assert!(err.contains("unsupported schema version 2"), "{err}");
}

#[test]
fn missing_schema_version_is_rejected() {
    let doc = render_results(&[rec("a", 1.0, "ns", "lower")], false);
    let stripped = doc.replace("  \"schema\": 1,\n", "");
    assert_ne!(doc, stripped, "replacement must have applied");
    let err = parse_results(&stripped).expect_err("missing schema must be rejected");
    assert!(err.contains("missing `schema`"), "{err}");
}

#[test]
fn current_schema_round_trips() {
    let records = vec![rec("a", 1.0, "ns", "lower"), rec("b", 2.5, "ratio", "higher")];
    let parsed = parse_results(&render_results(&records, true)).expect("schema 1 parses");
    assert_eq!(parsed, records);
}

// ---------------------------------------------------------------------------
// Baseline entries missing from the results
// ---------------------------------------------------------------------------

#[test]
fn baseline_entries_missing_from_results_are_reported_not_fatal() {
    let baseline = vec![
        rec("kept", 100.0, "ns", "lower"),
        rec("renamed_away", 5.0, "ratio", "higher"),
        rec("deleted", 1.0, "ns", "lower"),
    ];
    let results = vec![rec("kept", 100.0, "ns", "lower")];
    let cmp = compare(&results, &baseline, 0.30);
    assert_eq!(cmp.compared, 1);
    assert!(cmp.regressions.is_empty());
    assert_eq!(
        cmp.missing,
        vec!["edge::renamed_away".to_string(), "edge::deleted".to_string()],
        "every baseline metric absent from the results must be surfaced"
    );
}

// ---------------------------------------------------------------------------
// Exact tolerance boundary: the gate is strict-greater-than
// ---------------------------------------------------------------------------

#[test]
fn value_exactly_at_the_tolerance_boundary_does_not_regress() {
    let tol = 0.30;
    let baseline = vec![rec("time", 100.0, "ns", "lower"), rec("speedup", 10.0, "ratio", "higher")];
    // Exactly +tol on a lower-is-better and −tol on a higher-is-better
    // metric: on the fence is still inside the fence.
    let at_boundary = vec![
        rec("time", 100.0 * (1.0 + tol), "ns", "lower"),
        rec("speedup", 10.0 * (1.0 - tol), "ratio", "higher"),
    ];
    let cmp = compare(&at_boundary, &baseline, tol);
    assert!(cmp.regressions.is_empty(), "{:?}", cmp.regressions);
    assert!(cmp.improvements.is_empty(), "{:?}", cmp.improvements);

    // One part in a million past the boundary regresses.
    let past = vec![
        rec("time", 100.0 * (1.0 + tol) * (1.0 + 1e-6), "ns", "lower"),
        rec("speedup", 10.0 * (1.0 - tol) / (1.0 + 1e-6), "ratio", "higher"),
    ];
    let cmp = compare(&past, &baseline, tol);
    assert_eq!(cmp.regressions.len(), 2, "{:?}", cmp.regressions);

    // The same margin in the better direction is an improvement, also
    // strict.
    let better = vec![
        rec("time", 100.0 * (1.0 - tol) / (1.0 + 1e-6), "ns", "lower"),
        rec("speedup", 10.0 * (1.0 + tol) * (1.0 + 1e-6), "ratio", "higher"),
    ];
    let cmp = compare(&better, &baseline, tol);
    assert!(cmp.regressions.is_empty());
    assert_eq!(cmp.improvements.len(), 2, "{:?}", cmp.improvements);
}

#[test]
fn zero_valued_baseline_entries_are_skipped_not_divided_by() {
    let baseline = vec![rec("zero", 0.0, "ns", "lower")];
    let results = vec![rec("zero", 50.0, "ns", "lower")];
    let cmp = compare(&results, &baseline, 0.30);
    assert_eq!(cmp.compared, 1);
    assert!(cmp.regressions.is_empty(), "a zero baseline cannot gate anything");
}

// ---------------------------------------------------------------------------
// Empty / unreadable files
// ---------------------------------------------------------------------------

#[test]
fn empty_file_parse_fails_loudly() {
    let err = parse_results("").expect_err("empty document must not parse");
    assert!(err.contains("unexpected end"), "{err}");
    // Whitespace-only is equally empty.
    let err = parse_results("  \n\t ").expect_err("blank document must not parse");
    assert!(err.contains("unexpected end"), "{err}");
    // A valid-JSON document that is not a results document.
    let err = parse_results("{}").expect_err("no schema, no records");
    assert!(err.contains("missing `schema`"), "{err}");
}

#[test]
fn compare_files_propagates_read_and_parse_failures() {
    let dir = std::env::temp_dir().join(format!("sparsetir_report_edge_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let good = dir.join("good.json");
    let empty = dir.join("empty.json");
    let absent = dir.join("does_not_exist.json");
    std::fs::write(&good, render_results(&[rec("a", 1.0, "ns", "lower")], true)).unwrap();
    std::fs::write(&empty, "").unwrap();

    let err = compare_files(&good, &empty, 0.30).expect_err("empty baseline must fail");
    assert!(err.contains("empty.json"), "{err}");
    let err = compare_files(&absent, &good, 0.30).expect_err("missing results must fail");
    assert!(err.contains("cannot read"), "{err}");
    let ok = compare_files(&good, &good, 0.30).expect("self-comparison");
    assert_eq!(ok.compared, 1);
    std::fs::remove_dir_all(&dir).ok();
}
