//! # sparsetir-baselines
//!
//! Vendor-library and framework baselines for every comparison in the
//! paper's evaluation, re-implemented by their documented strategies as
//! kernel plans on the shared GPU simulator (DESIGN.md §2 explains why
//! strategy-level modelling preserves the figures' relative behaviour):
//!
//! * SpMM (Fig. 13): cuSPARSE, Sputnik, dgSPARSE/GE-SpMM, TACO,
//! * SDDMM (Fig. 14): cuSPARSE, Sputnik, DGL/FeatGraph, dgSPARSE-csr/coo,
//!   TACO,
//! * sparse attention (Fig. 16): Triton block-sparse,
//! * pruned transformers (Figs. 17/19): cuBLAS, cuSPARSE-fp16, Triton
//!   BSRMM,
//! * RGCN (Fig. 20): PyG, DGL, Graphiler,
//! * sparse convolution (Fig. 23): TorchSparse (in
//!   `sparsetir_kernels::sparse_conv`).

#![warn(missing_docs)]

pub mod cublas;
pub mod gnn;
pub mod spmm_baselines;
pub mod triton;

/// Common imports.
pub mod prelude {
    pub use crate::cublas::{
        cublas_gemm_fp16_plan, cublas_gemm_fp32_plan, cusparse_csrmm_fp16_plan,
        CUBLAS_F32_EFFICIENCY, CUBLAS_TC_EFFICIENCY,
    };
    pub use crate::gnn::{dgl_spmm_plan, rgcn};
    pub use crate::spmm_baselines::{
        cusparse_spmm_plan, dgsparse_spmm_plan, sddmm, sputnik_spmm_plan, taco_spmm_plan,
    };
    pub use crate::triton::{
        triton_blocksparse_sddmm_plan, triton_blocksparse_spmm_plan, triton_bsrmm_plan,
        TRITON_EFFICIENCY, TRITON_TILE,
    };
}
