//! GNN framework baselines (Figures 15 and 20): DGL, PyG and Graphiler,
//! modelled by their documented execution strategies over the shared
//! simulator.

use sparsetir_gpusim::prelude::*;
use sparsetir_kernels::prelude::*;
use sparsetir_smat::prelude::*;

/// DGL's SpMM backend for homogeneous graphs: a GE-SpMM-class kernel but
/// without SparseTIR's per-graph tuning (fixed row grouping, narrower
/// vectorization) — the Figure 15 end-to-end baseline.
#[must_use]
pub fn dgl_spmm_plan(a: &Csr, feat: usize) -> KernelPlan {
    let params =
        CsrSpmmParams { rows_per_block: 8, vec_width: 2, register_cache: true, threads: 128 };
    csr_spmm_plan(a, feat, params, "dgl_spmm")
}

/// RGCN inference strategies (Figure 20). All two-stage baselines
/// materialize `T[r] = X · W_r` for every relation (eqs. 9–10).
pub mod rgcn {
    use super::*;

    /// PyG: per-relation Python-dispatched kernels, COO scatter with
    /// atomic writes and no horizontal batching.
    #[must_use]
    pub fn pyg_plans(w: &RgmsWorkload) -> Vec<KernelPlan> {
        rgms_two_stage_plans(w, 0.70, false, "pyg")
    }

    /// DGL: per-relation two-stage with cuBLAS-grade GEMMs and a tuned
    /// scatter, still materializing `T`.
    #[must_use]
    pub fn dgl_plans(w: &RgmsWorkload) -> Vec<KernelPlan> {
        rgms_two_stage_plans(w, 0.85, true, "dgl")
    }

    /// Graphiler: compiles message passing into batched kernels — the
    /// GEMM stage is batched into one launch and the scatter fused, but
    /// `T` is still materialized (the Figure 20 baseline, =1.0).
    #[must_use]
    pub fn graphiler_plans(w: &RgmsWorkload) -> Vec<KernelPlan> {
        let per_relation = rgms_two_stage_plans(w, 0.88, true, "graphiler");
        // Batch: merge all GEMMs into one launch and all scatters into one.
        let r = w.relations.len();
        let mut gemm = KernelPlan::new("graphiler_batched_gemm");
        for p in &per_relation[..r] {
            gemm.fuse(p);
        }
        let mut scatter = KernelPlan::new("graphiler_fused_scatter");
        for p in &per_relation[r..] {
            scatter.fuse(p);
        }
        vec![gemm, scatter]
    }

    /// Simulated end-to-end time (ms) of a plan sequence.
    #[must_use]
    pub fn total_time_ms(spec: &GpuSpec, plans: &[KernelPlan]) -> f64 {
        simulate_sequence(spec, plans).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use sparsetir_smat::gen;

    /// Heterograph-like workload: many relations, each touching only a
    /// small subset of nodes (E ≪ R·n — the regime where two-stage RGMS
    /// wastes `T_r = X·W_r` work on nodes the relation never reads).
    fn workload(seed: u64, n: usize, rels: usize) -> RgmsWorkload {
        let mut rng = gen::rng(seed);
        let relations: Vec<Csr> = (0..rels)
            .map(|r| {
                let participation = if r % 5 == 0 { 0.15 } else { 0.03 };
                gen::random_csr_with_row_lengths(
                    n,
                    n,
                    move |rr| {
                        if rr.gen_bool(participation) {
                            let u: f64 = rr.gen_range(0.0..1.0);
                            ((8.0 / (u + 0.1)) as usize).clamp(1, 64)
                        } else {
                            0
                        }
                    },
                    &mut rng,
                )
            })
            .collect();
        RgmsWorkload { relations, din: 32, dout: 32 }
    }

    #[test]
    fn figure20_ordering_graphiler_beats_dgl_beats_pyg_on_launches() {
        let w = workload(91, 500, 16);
        let spec = GpuSpec::v100();
        let pyg = rgcn::total_time_ms(&spec, &rgcn::pyg_plans(&w));
        let dgl = rgcn::total_time_ms(&spec, &rgcn::dgl_plans(&w));
        let graphiler = rgcn::total_time_ms(&spec, &rgcn::graphiler_plans(&w));
        assert!(dgl < pyg, "dgl {dgl} vs pyg {pyg}");
        assert!(graphiler < dgl, "graphiler {graphiler} vs dgl {dgl}");
    }

    #[test]
    fn sparsetir_hyb_tc_beats_graphiler() {
        // The headline Figure 20 result (4.2–40×).
        let w = workload(93, 500, 16);
        let spec = GpuSpec::v100();
        let graphiler = rgcn::total_time_ms(&spec, &rgcn::graphiler_plans(&w));
        let fused = simulate_kernel(&spec, &rgms_hyb_plan(&w, 5, true, "stir_tc")).time_ms;
        assert!(fused * 2.0 < graphiler, "fused {fused} vs graphiler {graphiler}");
    }

    #[test]
    fn dgl_spmm_is_weaker_than_tuned_sparsetir() {
        let mut rng = gen::rng(95);
        let a = gen::random_csr_with_row_lengths(
            2000,
            2000,
            |r| {
                let u: f64 = r.gen_range(0.0..1.0);
                ((1.0 / (u + 0.005)) as usize).clamp(1, 800)
            },
            &mut rng,
        );
        let spec = GpuSpec::v100();
        let dgl = simulate_kernel(&spec, &dgl_spmm_plan(&a, 64)).time_ms;
        let h = Hyb::with_default_k(&a, 2).unwrap();
        let stir = hyb_spmm_time(&spec, &h, 64, CsrSpmmParams::default()).time_ms;
        assert!(stir < dgl, "sparsetir {stir} vs dgl {dgl}");
    }
}
