//! cuBLAS-like dense GEMM baseline (Figures 17, 19): the dense execution
//! of a pruned weight matrix, and the dense matmul building block used by
//! the two-stage RGMS baselines.

use sparsetir_gpusim::prelude::*;
use sparsetir_kernels::prelude::*;

/// cuBLAS efficiency on large fp16 tensor-core GEMMs.
pub const CUBLAS_TC_EFFICIENCY: f64 = 0.90;

/// cuBLAS efficiency on fp32 CUDA-core GEMMs.
pub const CUBLAS_F32_EFFICIENCY: f64 = 0.85;

/// Dense fp16 GEMM `m×k · k×n` on tensor cores (the cuBLAS bar that
/// pruned-weight kernels are normalized against).
#[must_use]
pub fn cublas_gemm_fp16_plan(m: usize, n: usize, k: usize) -> KernelPlan {
    gemm_plan("cublas_hgemm", m, n, k, F16, true, CUBLAS_TC_EFFICIENCY)
}

/// Dense fp32 GEMM on CUDA cores.
#[must_use]
pub fn cublas_gemm_fp32_plan(m: usize, n: usize, k: usize) -> KernelPlan {
    gemm_plan("cublas_sgemm", m, n, k, F32, false, CUBLAS_F32_EFFICIENCY)
}

/// cuSPARSE CSRMM in fp16 for unstructured weights (Figure 19): scalar
/// row-split kernel — only competitive against dense at extreme sparsity.
#[must_use]
pub fn cusparse_csrmm_fp16_plan(w: &sparsetir_smat::csr::Csr, feat: usize) -> KernelPlan {
    let params =
        CsrSpmmParams { rows_per_block: 2, vec_width: 1, register_cache: false, threads: 128 };
    let mut plan = csr_spmm_plan(w, feat, params, "cusparse_csrmm_fp16");
    for b in &mut plan.blocks {
        b.mlp_penalty = 1.5; // scalar fp16 gathers
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsetir_smat::prelude::*;

    #[test]
    fn figure17_crossover_sparse_wins_low_density() {
        // At 2⁻⁷ density the DBSR kernel crushes dense; near 2⁻¹ dense is
        // competitive (within ~2× either way).
        let spec = GpuSpec::v100();
        let (out_dim, in_dim, seq) = (1024usize, 1024usize, 512usize);
        let dense_time =
            simulate_kernel(&spec, &cublas_gemm_fp16_plan(out_dim, seq, in_dim)).time_ms;
        for (density, min_speedup, max_speedup) in [(1.0 / 128.0, 2.0, 100.0), (0.5, 0.2, 3.0)] {
            let mut rng = gen::rng(83);
            let w = gen::random_block_sparse(out_dim, in_dim, 32, density, 0.3, &mut rng);
            let bsr = Bsr::from_csr(&w, 32).unwrap();
            let dbsr = Dbsr::from_bsr(&bsr);
            let sparse_time = simulate_kernel(
                &spec,
                &dbsr_weight_spmm_plan(&dbsr, out_dim, seq, PRUNE_TC_EFFICIENCY, "dbsr"),
            )
            .time_ms;
            let speedup = dense_time / sparse_time;
            assert!(
                (min_speedup..max_speedup).contains(&speedup),
                "density {density}: speedup {speedup}"
            );
        }
    }

    #[test]
    fn figure19_cusparse_only_wins_at_extreme_sparsity() {
        let spec = GpuSpec::v100();
        let (out_dim, in_dim, seq) = (1024usize, 1024usize, 512usize);
        let dense_time =
            simulate_kernel(&spec, &cublas_gemm_fp16_plan(out_dim, seq, in_dim)).time_ms;
        let mut rng = gen::rng(85);
        let sparse_ok = gen::random_csr(out_dim, in_dim, 1.0 / 128.0, &mut rng);
        let t = simulate_kernel(&spec, &cusparse_csrmm_fp16_plan(&sparse_ok, seq)).time_ms;
        // cuSPARSE CSRMM beats dense at 2⁻⁷ …
        assert!(t < dense_time, "csrmm {t} vs dense {dense_time}");
        // … but loses at 2⁻³ (§4.3.2: "can only beat cuBLAS' GeMM when
        // weight density is extremely low").
        let denser = gen::random_csr(out_dim, in_dim, 1.0 / 8.0, &mut rng);
        let t2 = simulate_kernel(&spec, &cusparse_csrmm_fp16_plan(&denser, seq)).time_ms;
        assert!(t2 > dense_time, "csrmm {t2} vs dense {dense_time}");
    }
}
