//! Triton block-sparse baselines (§4.3, Figures 16–17): tile-level kernels
//! on tensor cores with a fixed 64×64 tile configuration and generic (less
//! workload-tuned) schedules.

use sparsetir_gpusim::prelude::*;
use sparsetir_kernels::prelude::*;
use sparsetir_smat::prelude::*;

/// Triton's tensor-core efficiency on its block-sparse templates: solid,
/// but below SparseTIR's per-structure tuned schedules (the source of the
/// 1.05–1.6× SpMM gap of Figure 16).
pub const TRITON_EFFICIENCY: f64 = 0.62;

/// Triton's fixed tile edge for block-sparse operators.
pub const TRITON_TILE: usize = 64;

/// Triton batched block-sparse SpMM: the mask is re-blocked at the 64×64
/// granularity (possibly padding finer structure), then dispatched through
/// the generic tile template.
#[must_use]
pub fn triton_blocksparse_spmm_plan(mask: &Csr, feat: usize, heads: usize) -> KernelPlan {
    let bsr = Bsr::from_csr(mask, TRITON_TILE).expect("positive tile");
    batched_bsr_spmm_plan(&bsr, feat, heads, TRITON_EFFICIENCY, "triton_blocksparse_spmm")
}

/// Triton batched block-sparse SDDMM.
#[must_use]
pub fn triton_blocksparse_sddmm_plan(mask: &Csr, feat: usize, heads: usize) -> KernelPlan {
    let bsr = Bsr::from_csr(mask, TRITON_TILE).expect("positive tile");
    batched_bsr_sddmm_plan(&bsr, feat, heads, TRITON_EFFICIENCY * 0.8, "triton_blocksparse_sddmm")
}

/// Triton BSRMM for block-pruned weights (Figure 17): the weight's own
/// block size is respected, but the generic template neither skips empty
/// block rows nor reaches SparseTIR's tuned efficiency.
#[must_use]
pub fn triton_bsrmm_plan(w: &Bsr, feat: usize) -> KernelPlan {
    let mut plan = bsr_weight_spmm_plan(w, feat, TRITON_EFFICIENCY, "triton_bsrmm");
    plan.name = "triton_bsrmm".to_string();
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsetir_smat::gen;

    fn band_mask(n: usize, band: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            let lo = i.saturating_sub(band / 2);
            let hi = (i + band / 2).min(n - 1);
            for j in lo..=hi {
                coo.push(i as u32, j as u32, 1.0);
            }
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn sparsetir_bsr_beats_triton_on_band_masks() {
        // Figure 16: SparseTIR-BSR 1.05–1.6× over Triton on SpMM.
        let mask = band_mask(2048, 256);
        let spec = GpuSpec::v100();
        let heads = 8;
        let feat = 64;
        let triton = simulate_kernel(&spec, &triton_blocksparse_spmm_plan(&mask, feat, heads));
        let stir_bsr = Bsr::from_csr(&mask, 32).unwrap();
        let stir = simulate_kernel(
            &spec,
            &batched_bsr_spmm_plan(&stir_bsr, feat, heads, SPARSETIR_BSR_EFFICIENCY, "stir"),
        );
        let speedup = triton.time_ms / stir.time_ms;
        assert!(
            (1.02..4.0).contains(&speedup),
            "speedup {speedup} (stir {} vs triton {})",
            stir.time_ms,
            triton.time_ms
        );
    }

    #[test]
    fn triton_pads_fine_structure_to_its_tile() {
        let mut rng = gen::rng(81);
        // Butterfly-like scattered 32-blocks fragment Triton's 64-tiles.
        let w = gen::random_block_sparse(1024, 1024, 32, 0.05, 0.0, &mut rng);
        let triton_view = Bsr::from_csr(&w, TRITON_TILE).unwrap();
        let native_view = Bsr::from_csr(&w, 32).unwrap();
        assert!(triton_view.stored() > native_view.stored());
    }
}
