//! SpMM baselines of §4.2.1 (Figure 13): cuSPARSE, Sputnik, dgSPARSE
//! (GE-SpMM) and TACO, each modelled by its documented strategy on the
//! shared simulator so comparisons isolate strategy differences.

use sparsetir_gpusim::prelude::*;
use sparsetir_kernels::prelude::*;
use sparsetir_smat::prelude::*;

/// cuSPARSE CSRMM: row-split work distribution (a warp per row group)
/// without compile-time load balancing, partial sums written through to
/// global memory between tiles (no register caching of the output across
/// the full row), scalar loads.
#[must_use]
pub fn cusparse_spmm_plan(a: &Csr, feat: usize) -> KernelPlan {
    let params =
        CsrSpmmParams { rows_per_block: 4, vec_width: 2, register_cache: false, threads: 128 };
    csr_spmm_plan(a, feat, params, "cusparse_csrmm")
}

/// Sputnik: 1-D tiling with vector loads and register-cached outputs, but
/// row-based scheduling (row swizzle helps yet long rows still dominate
/// their block).
#[must_use]
pub fn sputnik_spmm_plan(a: &Csr, feat: usize) -> KernelPlan {
    let params =
        CsrSpmmParams { rows_per_block: 2, vec_width: 4, register_cache: true, threads: 128 };
    csr_spmm_plan(a, feat, params, "sputnik_spmm")
}

/// dgSPARSE / GE-SpMM: coalesced row caching + vector loads, row-group
/// scheduling — the strongest CSR-single-format baseline.
#[must_use]
pub fn dgsparse_spmm_plan(a: &Csr, feat: usize) -> KernelPlan {
    let params =
        CsrSpmmParams { rows_per_block: 4, vec_width: 4, register_cache: true, threads: 128 };
    csr_spmm_plan(a, feat, params, "dgsparse_gespmm")
}

/// TACO (with the Senanayake et al. scheduling framework): supports
/// compile-time load balancing via non-zero splitting, but cannot cache
/// the partially aggregated result in registers (§4.2.1: "it does not
/// support caching the partially aggregated result in registers") and the
/// CSR irregularity prevents unrolling/vectorized loads.
#[must_use]
pub fn taco_spmm_plan(a: &Csr, feat: usize) -> KernelPlan {
    // Non-zero split: blocks of equal nnz (load-balanced)…
    let nnz_per_block = 256usize;
    let layout = SpmmLayout::new(a, feat, F32);
    let mut plan = KernelPlan::new("taco_spmm");
    plan.threads_per_block = 128;
    let row_of: Vec<u32> = {
        let mut v = Vec::with_capacity(a.nnz());
        for r in 0..a.rows() {
            for _ in 0..a.row_nnz(r) {
                v.push(r as u32);
            }
        }
        v
    };
    for chunk0 in (0..a.nnz()).step_by(nnz_per_block) {
        let chunk = nnz_per_block.min(a.nnz() - chunk0);
        let cost = SpmmCost {
            nnz: chunk,
            feat,
            vec_width: 1,          // …but scalar loads
            register_cache: false, // …and write-through accumulation
            threads: 128,
        };
        let mut w = BlockWork {
            cuda_flops: cost.flops(),
            serial_insts: cost.serial_insts(),
            mlp_penalty: 1.5, // scalar loads limit outstanding requests
            ..Default::default()
        };
        w.reads.push(AccessRange::new(layout.indices + chunk0 as u64 * 4, chunk as u64 * 4));
        w.reads.push(AccessRange::new(layout.values + chunk0 as u64 * F32, chunk as u64 * F32));
        for e in chunk0..chunk0 + chunk {
            let col = a.indices()[e];
            w.reads.push(layout.b_row(col, feat, F32));
        }
        // Write-through accumulation to the output rows of this chunk.
        let r0 = row_of[chunk0] as usize;
        let r1 = row_of[chunk0 + chunk - 1] as usize;
        let mut out = layout.c_rows(r0, r1 - r0 + 1, feat, F32);
        out.bytes += cost.writeback_penalty_bytes(F32);
        w.writes.push(out);
        plan.blocks.push(w);
    }
    plan
}

/// SDDMM baselines of §4.2.2 (Figure 14).
pub mod sddmm {
    use super::*;

    /// DGL (FeatGraph-optimized) SDDMM — the Figure 14 baseline: row
    /// parallel with feature-dim parallelization, no two-stage reduction,
    /// moderate vectorization.
    #[must_use]
    pub fn dgl_plan(a: &Csr, feat: usize) -> KernelPlan {
        let params =
            SddmmParams { nnz_per_block: 32, vec_width: 2, two_stage: false, threads: 128 };
        sddmm_row_parallel_plan(a, feat, params, 4, "dgl_featgraph_sddmm")
    }

    /// dgSPARSE (PRedS) SDDMM with CSR input: vectorized loads + two-stage
    /// reduction, fixed (untuned) group size.
    #[must_use]
    pub fn dgsparse_csr_plan(a: &Csr, feat: usize) -> KernelPlan {
        let params = SddmmParams { nnz_per_block: 16, vec_width: 4, two_stage: true, threads: 128 };
        sddmm_plan(a, feat, params, "dgsparse_preds_csr")
    }

    /// dgSPARSE (PRedS) SDDMM with COO input: same compute strategy, plus
    /// explicit row indices traffic.
    #[must_use]
    pub fn dgsparse_coo_plan(a: &Csr, feat: usize) -> KernelPlan {
        let params = SddmmParams { nnz_per_block: 16, vec_width: 4, two_stage: true, threads: 128 };
        let mut plan = sddmm_plan(a, feat, params, "dgsparse_preds_coo");
        // COO reads one extra 4-byte row index per non-zero.
        for b in &mut plan.blocks {
            if let Some(first) = b.reads.first().copied() {
                b.reads.push(AccessRange::new(first.addr + (1 << 26), first.bytes));
            }
        }
        plan
    }

    /// TACO-scheduled SDDMM: non-zero parallel, but no `rfactor` (the
    /// provenance-graph IR cannot express multi-branch reductions, §4.2.2)
    /// and no vectorized loads.
    #[must_use]
    pub fn taco_plan(a: &Csr, feat: usize) -> KernelPlan {
        let params =
            SddmmParams { nnz_per_block: 32, vec_width: 1, two_stage: false, threads: 128 };
        sddmm_plan(a, feat, params, "taco_sddmm")
    }

    /// cuSPARSE constrained-SDDMM: dense-oriented implementation that
    /// processes the sparse pattern as tiles of the dense product — pays
    /// for a large fraction of the dense FLOPs at graph-level sparsity
    /// (§4.2.2: "not optimized for highly sparse matrices").
    #[must_use]
    pub fn cusparse_plan(a: &Csr, feat: usize) -> KernelPlan {
        // Processes 32×32 output tiles where any non-zero exists.
        let tile = 32usize;
        let mut touched = std::collections::HashSet::new();
        for r in 0..a.rows() {
            for &c in a.row(r).0 {
                touched.insert((r / tile, c as usize / tile));
            }
        }
        let mut plan = KernelPlan::new("cusparse_sddmm");
        plan.threads_per_block = 128;
        let mut addr = AddressSpace::new();
        let x = addr.alloc("X", (a.rows() * feat) as u64 * 4);
        let y = addr.alloc("Yt", (a.cols() * feat) as u64 * 4);
        let o = addr.alloc("out", a.nnz() as u64 * 4);
        for &(tr, tc) in &touched {
            // dense tile work
            let mut w =
                BlockWork { cuda_flops: 2.0 * (tile * tile * feat) as f64, ..Default::default() };
            w.reads.push(AccessRange::new(
                x + (tr * tile * feat) as u64 * 4,
                (tile * feat) as u64 * 4,
            ));
            w.reads.push(AccessRange::new(
                y + (tc * tile * feat) as u64 * 4,
                (tile * feat) as u64 * 4,
            ));
            w.writes.push(AccessRange::new(o, (tile * tile) as u64 * 4));
            plan.blocks.push(w);
        }
        plan
    }

    /// Sputnik SDDMM: like cuSPARSE, tuned for moderate (ML) sparsity —
    /// 1-D row tiles that densify at graph sparsity.
    #[must_use]
    pub fn sputnik_plan(a: &Csr, feat: usize) -> KernelPlan {
        let mut plan = cusparse_plan(a, feat);
        plan.name = "sputnik_sddmm".to_string();
        // Slightly better vectorization than cuSPARSE's generic path.
        for b in &mut plan.blocks {
            b.cuda_flops *= 0.7;
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use sparsetir_smat::gen;

    fn power_law(rows: usize, seed: u64) -> Csr {
        let mut rng = gen::rng(seed);
        gen::random_csr_with_row_lengths(
            rows,
            rows,
            |r| {
                let u: f64 = r.gen_range(0.0..1.0);
                ((1.0 / (u + 0.003)).powf(0.85) as usize).clamp(1, rows / 2)
            },
            &mut rng,
        )
    }

    #[test]
    fn figure13_ordering_holds_on_power_law_graphs() {
        // Expected ordering on skewed graphs: hyb < gespmm ≲ sputnik <
        // cusparse (time; i.e. speedups reversed).
        let a = power_law(3000, 71);
        let feat = 64;
        let spec = GpuSpec::v100();
        let cusparse = simulate_kernel(&spec, &cusparse_spmm_plan(&a, feat)).time_ms;
        let sputnik = simulate_kernel(&spec, &sputnik_spmm_plan(&a, feat)).time_ms;
        let dgsparse = simulate_kernel(&spec, &dgsparse_spmm_plan(&a, feat)).time_ms;
        let hyb = {
            let h = Hyb::with_default_k(&a, 2).unwrap();
            hyb_spmm_time(&spec, &h, feat, CsrSpmmParams::default()).time_ms
        };
        assert!(dgsparse < cusparse, "dgsparse {dgsparse} vs cusparse {cusparse}");
        assert!(sputnik < cusparse, "sputnik {sputnik} vs cusparse {cusparse}");
        assert!(hyb < dgsparse, "hyb {hyb} vs dgsparse {dgsparse}");
    }

    #[test]
    fn taco_trails_vendor_kernels_despite_load_balance() {
        // Figure 13 (V100): TACO lands at 0.4–0.8× of cuSPARSE — its
        // compile-time load balancing cannot compensate for write-through
        // accumulation and scalar loads.
        let a = power_law(3000, 5);
        let feat = 128;
        let spec = GpuSpec::v100();
        let taco = simulate_kernel(&spec, &taco_spmm_plan(&a, feat)).time_ms;
        let cusparse = simulate_kernel(&spec, &cusparse_spmm_plan(&a, feat)).time_ms;
        let dgsparse = simulate_kernel(&spec, &dgsparse_spmm_plan(&a, feat)).time_ms;
        assert!(taco > cusparse, "taco {taco} vs cusparse {cusparse}");
        assert!(taco < cusparse * 4.0, "taco {taco} vs cusparse {cusparse}");
        assert!(dgsparse < taco, "dgsparse {dgsparse} vs taco {taco}");
    }

    #[test]
    fn figure14_sddmm_ordering() {
        let a = power_law(2500, 79);
        let feat = 128;
        let spec = GpuSpec::v100();
        let dgl = simulate_kernel(&spec, &sddmm::dgl_plan(&a, feat)).time_ms;
        let dgsp = simulate_kernel(&spec, &sddmm::dgsparse_csr_plan(&a, feat)).time_ms;
        let taco = simulate_kernel(&spec, &sddmm::taco_plan(&a, feat)).time_ms;
        let cus = simulate_kernel(&spec, &sddmm::cusparse_plan(&a, feat)).time_ms;
        let stir = tuned_sddmm_time(&spec, &a, feat).time_ms;
        // SparseTIR fastest; dgSPARSE beats DGL; cuSPARSE far behind
        // (densified tiles at graph sparsity).
        assert!(stir <= dgsp, "sparsetir {stir} vs dgsparse {dgsp}");
        assert!(dgsp < dgl, "dgsparse {dgsp} vs dgl {dgl}");
        assert!(cus > dgl * 2.0, "cusparse {cus} vs dgl {dgl}");
        assert!(taco > stir, "taco {taco} vs sparsetir {stir}");
    }
}
