//! Data binding helpers: produce the interpreter tensor bindings for Stage
//! III functions from `sparsetir-smat` matrices (the runtime counterpart of
//! the "indices inference" conversions).

use sparsetir_ir::eval::TensorData;
use sparsetir_smat::prelude::*;
use std::cell::Cell;
use std::collections::HashMap;

/// Tensor bindings keyed by buffer name.
pub type Bindings = HashMap<String, TensorData>;

thread_local! {
    /// Dense operand/output bytes memcpy'd on this thread by the batching
    /// helpers (`stack`/`split`, `read_dense`, output extraction). The
    /// serving engine samples it around each batch launch to attribute
    /// copies per engine without cross-test interference; the zero-copy
    /// view paths leave it untouched.
    static BYTES_COPIED: Cell<u64> = const { Cell::new(0) };
}

/// Cumulative dense bytes copied on the calling thread (see
/// [`count_bytes_copied`]).
#[must_use]
pub fn bytes_copied_on_thread() -> u64 {
    BYTES_COPIED.with(Cell::get)
}

/// Record `n` dense bytes copied on the calling thread.
pub fn count_bytes_copied(n: u64) {
    BYTES_COPIED.with(|c| c.set(c.get() + n));
}

/// Bind a CSR matrix: `<prefix>_indptr`, `<prefix>_indices` (i32) and the
/// value buffer `name` (flat nnz values).
pub fn bind_csr(bindings: &mut Bindings, name: &str, prefix: &str, csr: &Csr) {
    bindings.insert(
        format!("{prefix}_indptr"),
        TensorData::from(csr.indptr().iter().map(|&v| v as i32).collect::<Vec<_>>()),
    );
    bindings.insert(
        format!("{prefix}_indices"),
        TensorData::from(csr.indices().iter().map(|&v| v as i32).collect::<Vec<_>>()),
    );
    bindings.insert(name.to_string(), TensorData::from(csr.values().to_vec()));
}

/// Bind a dense matrix as a flat row-major value buffer.
pub fn bind_dense(bindings: &mut Bindings, name: &str, d: &Dense) {
    bindings.insert(name.to_string(), TensorData::from(d.data().to_vec()));
}

/// Bind a zero-initialized output of `len` f32 elements.
pub fn bind_zeros(bindings: &mut Bindings, name: &str, len: usize) {
    bindings.insert(name.to_string(), TensorData::from(vec![0.0f32; len]));
}

/// Bind an ELL matrix: `<prefix>_indices` (i32, rows × width) and values.
pub fn bind_ell(bindings: &mut Bindings, name: &str, prefix: &str, ell: &Ell) {
    bindings.insert(
        format!("{prefix}_indices"),
        TensorData::from(ell.col_indices().iter().map(|&v| v as i32).collect::<Vec<_>>()),
    );
    bindings.insert(name.to_string(), TensorData::from(ell.values().to_vec()));
}

/// Bind a BSR matrix: `<prefix>_indptr`, `<prefix>_indices`, block values.
pub fn bind_bsr(bindings: &mut Bindings, name: &str, prefix: &str, bsr: &Bsr) {
    bindings.insert(
        format!("{prefix}_indptr"),
        TensorData::from(bsr.indptr().iter().map(|&v| v as i32).collect::<Vec<_>>()),
    );
    bindings.insert(
        format!("{prefix}_indices"),
        TensorData::from(bsr.indices().iter().map(|&v| v as i32).collect::<Vec<_>>()),
    );
    bindings.insert(name.to_string(), TensorData::from(bsr.values().to_vec()));
}

/// Bind one hyb ELL bucket: `<prefix>_rows` (row ids), `<prefix>_indices`
/// (column ids) and its values.
pub fn bind_bucket(bindings: &mut Bindings, name: &str, prefix: &str, bucket: &EllBucket) {
    bindings.insert(
        format!("{prefix}_rows"),
        TensorData::from(bucket.row_ids.iter().map(|&v| v as i32).collect::<Vec<_>>()),
    );
    bindings.insert(
        format!("{prefix}_indices"),
        TensorData::from(bucket.col_indices.iter().map(|&v| v as i32).collect::<Vec<_>>()),
    );
    bindings.insert(name.to_string(), TensorData::from(bucket.values.clone()));
}

/// Read a bound f32 buffer back as a dense matrix of the given shape.
///
/// # Panics
/// Panics when the binding is missing or sized differently.
#[must_use]
pub fn read_dense(bindings: &Bindings, name: &str, rows: usize, cols: usize) -> Dense {
    let data =
        bindings.get(name).unwrap_or_else(|| panic!("binding `{name}` missing")).as_f32().to_vec();
    count_bytes_copied(data.len() as u64 * 4);
    Dense::from_vec(rows, cols, data).expect("shape matches binding length")
}

/// Remove a bound f32 buffer from the bindings and reshape it as a dense
/// matrix **without copying** — the zero-copy counterpart of
/// [`read_dense`] for output extraction after the final launch.
///
/// # Panics
/// Panics when the binding is missing, holds i32 data, or is sized
/// differently.
#[must_use]
pub fn take_dense(bindings: &mut Bindings, name: &str, rows: usize, cols: usize) -> Dense {
    let data = match bindings.remove(name) {
        Some(TensorData::F32(v)) => v,
        Some(TensorData::I32(_)) => panic!("binding `{name}` holds i32 data"),
        None => panic!("binding `{name}` missing"),
    };
    Dense::from_vec(rows, cols, data).expect("shape matches binding length")
}

/// Remove a bound f32 buffer from the bindings and return its values
/// **without copying** — the flat-vector counterpart of [`take_dense`]
/// for edge-shaped outputs (e.g. SDDMM's per-edge scores).
///
/// # Panics
/// Panics when the binding is missing or holds i32 data.
#[must_use]
pub fn take_values(bindings: &mut Bindings, name: &str) -> Vec<f32> {
    match bindings.remove(name) {
        Some(TensorData::F32(v)) => v,
        Some(TensorData::I32(_)) => panic!("binding `{name}` holds i32 data"),
        None => panic!("binding `{name}` missing"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_binding_produces_i32_aux() {
        let mut rng = gen::rng(1);
        let m = gen::random_csr(6, 6, 0.3, &mut rng);
        let mut b = Bindings::new();
        bind_csr(&mut b, "A", "J", &m);
        assert_eq!(b["J_indptr"].as_i32().len(), 7);
        assert_eq!(b["J_indices"].as_i32().len(), m.nnz());
        assert_eq!(b["A"].as_f32().len(), m.nnz());
    }

    #[test]
    fn dense_roundtrip_through_bindings() {
        let mut rng = gen::rng(2);
        let d = gen::random_dense(3, 4, &mut rng);
        let mut b = Bindings::new();
        bind_dense(&mut b, "X", &d);
        let back = read_dense(&b, "X", 3, 4);
        assert!(back.approx_eq(&d, 0.0));
    }

    #[test]
    fn bucket_binding_has_rows_and_indices() {
        let mut rng = gen::rng(3);
        let m = gen::random_csr(8, 8, 0.3, &mut rng);
        let hyb = Hyb::with_default_k(&m, 1).unwrap();
        let bucket = hyb
            .partitions()
            .iter()
            .flat_map(|p| &p.buckets)
            .find(|b| !b.is_empty())
            .expect("some bucket non-empty");
        let mut b = Bindings::new();
        bind_bucket(&mut b, "A_ell", "E", bucket);
        assert_eq!(b["E_rows"].as_i32().len(), bucket.len());
        assert_eq!(b["A_ell"].as_f32().len(), bucket.stored());
    }
}
