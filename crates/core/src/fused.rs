//! Cross-operator fused Stage I programs: the whole sparse-attention
//! pipeline (SDDMM → edge-softmax → SpMM) and GraphSAGE's
//! gather → normalize → matmul step, each as **one** `SpProgram` whose
//! passes all lower into a single `PrimFunc` — one compiled kernel, one
//! launch, instead of one launch per operator.
//!
//! The composability thesis applied *across* operator boundaries: every
//! pass iterates the same sparse `(I, J)` space, so after `sparse_fuse`
//! each pass walks the non-zero range with the same binary-searched row
//! recovery the batched SDDMM kernel uses, and the per-row reductions
//! (softmax max/sum, aggregation) reset at each row's segment start via
//! the reduce-position init predicate (`local == 0`).
//!
//! Pass structure of the attention pipeline (head axis `H` *inside* the
//! fused non-zero loop — the multi-head batching contract of the widened
//! SDDMM launch):
//!
//! 1. `score`  — `S[i,j,h] += A[i,j] · Q[i,h,k] · KT[h,k,j]` (the batched
//!    SDDMM body; its `K` loop hits the `GatherScaleAccumulate`
//!    microkernel);
//! 2. `rowmax` — `M[i,h] = max(M[i,h], S[i,j,h])`, reset to `-f32::MAX`
//!    at each row segment start;
//! 3. `expsum` — `P[i,j,h] = exp(S[i,j,h] − M[i,h])`;
//!    `Sum[i,h] += P[i,j,h]`, reset to `0` at each segment start;
//! 4. `agg`    — `Out[i,h,c] += (P[i,j,h] / Sum[i,h]) · V[j,h,c]`: the
//!    normalization rides as a lane-invariant coefficient of the
//!    aggregation AXPY, so the `C` loop hits the `AxpyLanes` microkernel.
//!
//! Rows with no non-zeros never execute any pass body, so their outputs
//! stay at the zero binding (the documented empty-row semantics: an
//! attention row with no incident edges aggregates to zero, and the
//! division by `Sum` is never evaluated there).
//!
//! The same pass builders also produce the *three-launch pipeline*
//! programs ([`attention_score_program`], [`edge_softmax_program`],
//! [`attention_aggregate_program`]): identical pass bodies grouped into
//! separate `PrimFunc`s. Because each `(non-zero, head)` pair keeps
//! exactly the same reduction order and f32 store/rounding points in
//! both groupings, the fused kernel is **bit-identical** to the pipeline
//! (the `exp` path included — same `FloatExpr::Exp` evaluation in both).

use crate::stage1::{ProgramBuilder, SpBuffer, SpProgram, SpStore};
use sparsetir_ir::prelude::*;

/// Register the shared attention axes on `b`. `I`/`J` is the sparse mask
/// structure (CSR aux buffers `J_indptr`/`J_indices`), `H` the head axis,
/// `K` the score (query/key) feature axis, `C` the value feature axis;
/// `I_`/`J_d` are the dense mirrors dense operands are laid out over.
fn attention_axes(
    b: &mut ProgramBuilder,
    m: usize,
    n: usize,
    nnz: usize,
    heads: usize,
    feat: usize,
    vfeat: usize,
) {
    b.dense_fixed("I", m);
    b.sparse_variable("J", "I", n, nnz, "J_indptr", "J_indices");
    b.dense_fixed("H", heads);
    b.dense_fixed("K", feat);
    b.dense_fixed("C", vfeat);
    b.dense_fixed("I_", m);
    b.dense_fixed("J_d", n);
}

/// Pass 1: the batched-SDDMM score body (`S += A · Q · KT` over `K`).
fn add_score_pass(b: &mut ProgramBuilder, a: &SpBuffer, q: &SpBuffer, kt: &SpBuffer, s: &SpBuffer) {
    let axes = b.axes().clone();
    let (a, q, kt, s) = (a.clone(), q.clone(), kt.clone(), s.clone());
    b.sp_iter("score", &["I", "J", "H", "K"], "SSSR", |vars| {
        let (i, j, h, k) = (&vars[0], &vars[1], &vars[2], &vars[3]);
        let init = vec![SpStore {
            buffer: s.name.clone(),
            indices: vec![Expr::var(i), Expr::var(j), Expr::var(h)],
            value: Expr::f32(0.0),
        }];
        let body = vec![SpStore {
            buffer: s.name.clone(),
            indices: vec![Expr::var(i), Expr::var(j), Expr::var(h)],
            value: s.load(&axes, vec![Expr::var(i), Expr::var(j), Expr::var(h)])
                + a.load(&axes, vec![Expr::var(i), Expr::var(j)])
                    * q.load(&axes, vec![Expr::var(i), Expr::var(h), Expr::var(k)])
                    * kt.load(&axes, vec![Expr::var(h), Expr::var(k), Expr::var(j)]),
        }];
        (init, body)
    });
}

/// Pass 2: per-row score maximum, reset to `-f32::MAX` at each row
/// segment start (the reduce-position init predicate on `J`).
fn add_rowmax_pass(b: &mut ProgramBuilder, s: &SpBuffer, mx: &SpBuffer) {
    let axes = b.axes().clone();
    let (s, mx) = (s.clone(), mx.clone());
    b.sp_iter("rowmax", &["I", "J", "H"], "SRS", |vars| {
        let (i, j, h) = (&vars[0], &vars[1], &vars[2]);
        let init = vec![SpStore {
            buffer: mx.name.clone(),
            indices: vec![Expr::var(i), Expr::var(h)],
            value: Expr::f32(f64::from(f32::MIN)),
        }];
        let body = vec![SpStore {
            buffer: mx.name.clone(),
            indices: vec![Expr::var(i), Expr::var(h)],
            value: mx
                .load(&axes, vec![Expr::var(i), Expr::var(h)])
                .max(s.load(&axes, vec![Expr::var(i), Expr::var(j), Expr::var(h)])),
        }];
        (init, body)
    });
}

/// Pass 3: exponentiate the max-shifted scores and accumulate the
/// per-row partition sum, in one walk of the non-zero range (two stores
/// per `(non-zero, head)` point).
fn add_expsum_pass(
    b: &mut ProgramBuilder,
    s: &SpBuffer,
    mx: &SpBuffer,
    p: &SpBuffer,
    sum: &SpBuffer,
) {
    let axes = b.axes().clone();
    let (s, mx, p, sum) = (s.clone(), mx.clone(), p.clone(), sum.clone());
    b.sp_iter("expsum", &["I", "J", "H"], "SRS", |vars| {
        let (i, j, h) = (&vars[0], &vars[1], &vars[2]);
        let init = vec![SpStore {
            buffer: sum.name.clone(),
            indices: vec![Expr::var(i), Expr::var(h)],
            value: Expr::f32(0.0),
        }];
        let shifted = s.load(&axes, vec![Expr::var(i), Expr::var(j), Expr::var(h)])
            - mx.load(&axes, vec![Expr::var(i), Expr::var(h)]);
        let body = vec![
            SpStore {
                buffer: p.name.clone(),
                indices: vec![Expr::var(i), Expr::var(j), Expr::var(h)],
                value: Expr::Call { intrin: Intrinsic::Exp, args: vec![shifted] },
            },
            SpStore {
                buffer: sum.name.clone(),
                indices: vec![Expr::var(i), Expr::var(h)],
                value: sum.load(&axes, vec![Expr::var(i), Expr::var(h)])
                    + p.load(&axes, vec![Expr::var(i), Expr::var(j), Expr::var(h)]),
            },
        ];
        (init, body)
    });
}

/// Pass 4: the aggregation AXPY with the softmax normalization folded in
/// as a lane-invariant coefficient (`Out += (P / Sum) · V` over the
/// value-feature lanes).
fn add_aggregate_pass(
    b: &mut ProgramBuilder,
    p: &SpBuffer,
    sum: &SpBuffer,
    v: &SpBuffer,
    out: &SpBuffer,
) {
    let axes = b.axes().clone();
    let (p, sum, v, out) = (p.clone(), sum.clone(), v.clone(), out.clone());
    b.sp_iter("agg", &["I", "J", "H", "C"], "SRSS", |vars| {
        let (i, j, h, c) = (&vars[0], &vars[1], &vars[2], &vars[3]);
        let init = vec![SpStore {
            buffer: out.name.clone(),
            indices: vec![Expr::var(i), Expr::var(h), Expr::var(c)],
            value: Expr::f32(0.0),
        }];
        let body = vec![SpStore {
            buffer: out.name.clone(),
            indices: vec![Expr::var(i), Expr::var(h), Expr::var(c)],
            value: out.load(&axes, vec![Expr::var(i), Expr::var(h), Expr::var(c)])
                + (p.load(&axes, vec![Expr::var(i), Expr::var(j), Expr::var(h)])
                    / sum.load(&axes, vec![Expr::var(i), Expr::var(h)]))
                    * v.load(&axes, vec![Expr::var(j), Expr::var(h), Expr::var(c)]),
        }];
        (init, body)
    });
}

/// The whole multi-head sparse-attention pipeline as **one** program:
/// score SDDMM, edge-softmax (two passes over each row's segment of the
/// non-zero range) and the aggregation AXPY — four passes, one kernel.
///
/// Operand layouts (row-major coordinate space): `Q` is `(m, heads,
/// feat)` — head `h` owns `feat` consecutive columns of an
/// `m × heads·feat` matrix; `KT` is `(heads, feat, n)` — the heads' key
/// transposes stacked row-wise; `V` is `(n, heads, vfeat)` — head `h`
/// owns `vfeat` consecutive columns. `Out` is `(m, heads, vfeat)`.
/// `S`/`P` (`nnz × heads`, head-interleaved per non-zero) and
/// `M`/`Sum` (`m × heads`) are per-launch scratch, bound zeroed.
#[must_use]
pub fn fused_attention_program(
    m: usize,
    n: usize,
    nnz: usize,
    heads: usize,
    feat: usize,
    vfeat: usize,
) -> SpProgram {
    let mut b = ProgramBuilder::new("fused_attention");
    attention_axes(&mut b, m, n, nnz, heads, feat, vfeat);
    let a = b.sparse_buffer("A", &["I", "J"], DType::F32);
    let q = b.sparse_buffer("Q", &["I_", "H", "K"], DType::F32);
    let kt = b.sparse_buffer("KT", &["H", "K", "J_d"], DType::F32);
    let v = b.sparse_buffer("V", &["J_d", "H", "C"], DType::F32);
    let s = b.sparse_buffer("S", &["I", "J", "H"], DType::F32);
    let mx = b.sparse_buffer("M", &["I", "H"], DType::F32);
    let p = b.sparse_buffer("P", &["I", "J", "H"], DType::F32);
    let sum = b.sparse_buffer("Sum", &["I", "H"], DType::F32);
    let out = b.sparse_buffer("Out", &["I", "H", "C"], DType::F32);
    add_score_pass(&mut b, &a, &q, &kt, &s);
    add_rowmax_pass(&mut b, &s, &mx);
    add_expsum_pass(&mut b, &s, &mx, &p, &sum);
    add_aggregate_pass(&mut b, &p, &sum, &v, &out);
    b.finish()
}

/// Pipeline launch 1 of 3: the score pass alone (exactly the batched
/// SDDMM shape of [`crate::stage1::batched_sddmm_program`], with the
/// attention buffer names).
#[must_use]
pub fn attention_score_program(
    m: usize,
    n: usize,
    nnz: usize,
    heads: usize,
    feat: usize,
) -> SpProgram {
    let mut b = ProgramBuilder::new("attn_score");
    attention_axes(&mut b, m, n, nnz, heads, feat, 0);
    let a = b.sparse_buffer("A", &["I", "J"], DType::F32);
    let q = b.sparse_buffer("Q", &["I_", "H", "K"], DType::F32);
    let kt = b.sparse_buffer("KT", &["H", "K", "J_d"], DType::F32);
    let s = b.sparse_buffer("S", &["I", "J", "H"], DType::F32);
    add_score_pass(&mut b, &a, &q, &kt, &s);
    b.finish()
}

/// Pipeline launch 2 of 3: edge-softmax over the per-non-zero scores —
/// the `rowmax` and `expsum` passes (the normalization itself rides the
/// aggregation launch as its coefficient, identically to the fused
/// kernel). Inputs: `S`; outputs: `P` and `Sum` (`M` is scratch).
#[must_use]
pub fn edge_softmax_program(m: usize, n: usize, nnz: usize, heads: usize) -> SpProgram {
    let mut b = ProgramBuilder::new("edge_softmax");
    attention_axes(&mut b, m, n, nnz, heads, 0, 0);
    let s = b.sparse_buffer("S", &["I", "J", "H"], DType::F32);
    let mx = b.sparse_buffer("M", &["I", "H"], DType::F32);
    let p = b.sparse_buffer("P", &["I", "J", "H"], DType::F32);
    let sum = b.sparse_buffer("Sum", &["I", "H"], DType::F32);
    add_rowmax_pass(&mut b, &s, &mx);
    add_expsum_pass(&mut b, &s, &mx, &p, &sum);
    b.finish()
}

/// Pipeline launch 3 of 3: the normalized aggregation AXPY (`Out +=
/// (P / Sum) · V`). Inputs: `P`, `Sum`, `V`; output: `Out`.
#[must_use]
pub fn attention_aggregate_program(
    m: usize,
    n: usize,
    nnz: usize,
    heads: usize,
    vfeat: usize,
) -> SpProgram {
    let mut b = ProgramBuilder::new("attn_aggregate");
    attention_axes(&mut b, m, n, nnz, heads, 0, vfeat);
    let v = b.sparse_buffer("V", &["J_d", "H", "C"], DType::F32);
    let p = b.sparse_buffer("P", &["I", "J", "H"], DType::F32);
    let sum = b.sparse_buffer("Sum", &["I", "H"], DType::F32);
    let out = b.sparse_buffer("Out", &["I", "H", "C"], DType::F32);
    add_aggregate_pass(&mut b, &p, &sum, &v, &out);
    b.finish()
}

/// GraphSAGE mean-aggregator gather pass: `Agg[i,k] += X[j,k]` over each
/// row's neighbors (pure structural gather — the edge values play no
/// role in the mean aggregator). The `K` lanes hit `AxpyLanes`.
fn add_sage_gather_pass(b: &mut ProgramBuilder, x: &SpBuffer, agg: &SpBuffer) {
    let axes = b.axes().clone();
    let (x, agg) = (x.clone(), agg.clone());
    b.sp_iter("gather", &["I", "J", "K"], "SRS", |vars| {
        let (i, j, k) = (&vars[0], &vars[1], &vars[2]);
        let init = vec![SpStore {
            buffer: agg.name.clone(),
            indices: vec![Expr::var(i), Expr::var(k)],
            value: Expr::f32(0.0),
        }];
        let body = vec![SpStore {
            buffer: agg.name.clone(),
            indices: vec![Expr::var(i), Expr::var(k)],
            value: agg.load(&axes, vec![Expr::var(i), Expr::var(k)])
                + x.load(&axes, vec![Expr::var(j), Expr::var(k)]),
        }];
        (init, body)
    });
}

/// GraphSAGE normalize+matmul pass: `H1[i,o] += (Agg[i,k] · Dinv[i]) ·
/// W[k,o]` — the degree normalization rides as a lane-invariant
/// coefficient of the dense GEMM's `O` lanes (`AxpyLanes`), mirroring
/// how the attention kernel folds its softmax normalization.
fn add_sage_matmul_pass(
    b: &mut ProgramBuilder,
    agg: &SpBuffer,
    dinv: &SpBuffer,
    w: &SpBuffer,
    h1: &SpBuffer,
) {
    let axes = b.axes().clone();
    let (agg, dinv, w, h1) = (agg.clone(), dinv.clone(), w.clone(), h1.clone());
    b.sp_iter("sage_mm", &["I", "K", "O"], "SRS", |vars| {
        let (i, k, o) = (&vars[0], &vars[1], &vars[2]);
        let init = vec![SpStore {
            buffer: h1.name.clone(),
            indices: vec![Expr::var(i), Expr::var(o)],
            value: Expr::f32(0.0),
        }];
        let body = vec![SpStore {
            buffer: h1.name.clone(),
            indices: vec![Expr::var(i), Expr::var(o)],
            value: h1.load(&axes, vec![Expr::var(i), Expr::var(o)])
                + (agg.load(&axes, vec![Expr::var(i), Expr::var(k)])
                    * dinv.load(&axes, vec![Expr::var(i)]))
                    * w.load(&axes, vec![Expr::var(k), Expr::var(o)]),
        }];
        (init, body)
    });
}

/// GraphSAGE's gather → normalize → matmul layer step as **one**
/// program: the neighbor gather (fused non-zero walk) and the
/// degree-normalized feature transform (`(A·X / deg) · W`), two passes,
/// one kernel. `Dinv` is the per-row inverse degree (`0` for empty
/// rows, whose aggregation stays zero); `Agg` (`m × feat`) is
/// per-launch scratch.
#[must_use]
pub fn fused_sage_program(m: usize, n: usize, nnz: usize, feat: usize, hidden: usize) -> SpProgram {
    let mut b = ProgramBuilder::new("fused_sage");
    b.dense_fixed("I", m);
    b.sparse_variable("J", "I", n, nnz, "J_indptr", "J_indices");
    b.dense_fixed("K", feat);
    b.dense_fixed("O", hidden);
    b.dense_fixed("J_d", n);
    let x = b.sparse_buffer("X", &["J_d", "K"], DType::F32);
    let dinv = b.sparse_buffer("Dinv", &["I"], DType::F32);
    let w = b.sparse_buffer("W", &["K", "O"], DType::F32);
    let agg = b.sparse_buffer("Agg", &["I", "K"], DType::F32);
    let h1 = b.sparse_buffer("H1", &["I", "O"], DType::F32);
    add_sage_gather_pass(&mut b, &x, &agg);
    add_sage_matmul_pass(&mut b, &agg, &dinv, &w, &h1);
    b.finish()
}

/// Two-launch pipeline piece: the SAGE gather pass alone.
#[must_use]
pub fn sage_gather_program(m: usize, n: usize, nnz: usize, feat: usize) -> SpProgram {
    let mut b = ProgramBuilder::new("sage_gather");
    b.dense_fixed("I", m);
    b.sparse_variable("J", "I", n, nnz, "J_indptr", "J_indices");
    b.dense_fixed("K", feat);
    b.dense_fixed("J_d", n);
    let x = b.sparse_buffer("X", &["J_d", "K"], DType::F32);
    let agg = b.sparse_buffer("Agg", &["I", "K"], DType::F32);
    add_sage_gather_pass(&mut b, &x, &agg);
    b.finish()
}

/// Two-launch pipeline piece: the SAGE normalize+matmul pass alone.
#[must_use]
pub fn sage_matmul_program(m: usize, feat: usize, hidden: usize) -> SpProgram {
    let mut b = ProgramBuilder::new("sage_matmul");
    b.dense_fixed("I", m);
    b.dense_fixed("K", feat);
    b.dense_fixed("O", hidden);
    let dinv = b.sparse_buffer("Dinv", &["I"], DType::F32);
    let w = b.sparse_buffer("W", &["K", "O"], DType::F32);
    let agg = b.sparse_buffer("Agg", &["I", "K"], DType::F32);
    let h1 = b.sparse_buffer("H1", &["I", "O"], DType::F32);
    add_sage_matmul_pass(&mut b, &agg, &dinv, &w, &h1);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fused_attention_program_has_all_four_passes() {
        let p = fused_attention_program(4, 4, 6, 2, 3, 3);
        let s = p.script();
        for pass in ["score", "rowmax", "expsum", "agg"] {
            assert!(s.contains(pass), "missing pass `{pass}` in:\n{s}");
        }
        assert!(s.contains("sp_iter([I, J, H, K], \"SSSR\", \"score\")"), "{s}");
        assert!(s.contains("sp_iter([I, J, H], \"SRS\", \"rowmax\")"), "{s}");
        assert!(s.contains("sp_iter([I, J, H, C], \"SRSS\", \"agg\")"), "{s}");
    }

    #[test]
    fn pipeline_programs_cover_the_same_passes() {
        assert!(attention_score_program(4, 4, 6, 2, 3).script().contains("score"));
        let softmax = edge_softmax_program(4, 4, 6, 2).script();
        assert!(softmax.contains("rowmax") && softmax.contains("expsum"), "{softmax}");
        assert!(attention_aggregate_program(4, 4, 6, 2, 3).script().contains("agg"));
    }

    #[test]
    fn fused_sage_program_has_gather_and_matmul() {
        let s = fused_sage_program(4, 4, 6, 3, 2).script();
        assert!(s.contains("gather") && s.contains("sage_mm"), "{s}");
    }
}
