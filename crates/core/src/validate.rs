//! Stage I program validation: catch malformed programs *before* lowering,
//! with errors phrased in the user's terms (axes/buffers/iterations) rather
//! than the loop-level verifier's.

use crate::stage1::{SpIter, SpProgram};
use sparsetir_ir::prelude::*;
use std::fmt;

/// A defect in a Stage I program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError {
    message: String,
}

impl ValidateError {
    fn new(message: impl Into<String>) -> Self {
        ValidateError { message: message.into() }
    }
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stage I validation error: {}", self.message)
    }
}

impl std::error::Error for ValidateError {}

/// Validate a Stage I program:
///
/// * every buffer axis is registered,
/// * every iterated axis is registered, with variable/sparse-fixed axes
///   following an iterated ancestor (so loop extents are resolvable),
/// * iteration kind lists match axis lists,
/// * fusion groups form a partition of the axis positions,
/// * every store targets a declared buffer with matching arity,
/// * parent links contain no cycles.
///
/// # Errors
/// Returns the first defect found.
pub fn validate(program: &SpProgram) -> Result<(), ValidateError> {
    // Axis tree sanity: registered parents, acyclic.
    for axis in program.axes.all() {
        if let Some(parent) = &axis.parent {
            if program.axes.get(parent).is_none() {
                return Err(ValidateError::new(format!(
                    "axis `{}` names unregistered parent `{parent}`",
                    axis.name
                )));
            }
        }
        // Cycle check by bounded ancestor walk.
        let mut cur = axis.parent.clone();
        let mut steps = 0usize;
        while let Some(p) = cur {
            steps += 1;
            if steps > program.axes.all().len() {
                return Err(ValidateError::new(format!(
                    "axis `{}` participates in a parent cycle",
                    axis.name
                )));
            }
            cur = program.axes.get(&p).and_then(|a| a.parent.clone());
        }
    }
    for buf in &program.buffers {
        for axis in &buf.axes {
            if program.axes.get(axis).is_none() {
                return Err(ValidateError::new(format!(
                    "buffer `{}` uses unregistered axis `{axis}`",
                    buf.name
                )));
            }
        }
    }
    for it in &program.iterations {
        validate_iteration(program, it)?;
    }
    Ok(())
}

fn validate_iteration(program: &SpProgram, it: &SpIter) -> Result<(), ValidateError> {
    if it.kinds.len() != it.axes.len() || it.vars.len() != it.axes.len() {
        return Err(ValidateError::new(format!(
            "iteration `{}` has {} axes but {} kinds / {} vars",
            it.name,
            it.axes.len(),
            it.kinds.len(),
            it.vars.len()
        )));
    }
    // Fusion groups partition 0..axes.len() in order.
    let flattened: Vec<usize> = it.fuse_groups.iter().flatten().copied().collect();
    let expected: Vec<usize> = (0..it.axes.len()).collect();
    if flattened != expected {
        return Err(ValidateError::new(format!(
            "iteration `{}` fusion groups {:?} do not partition 0..{}",
            it.name,
            it.fuse_groups,
            it.axes.len()
        )));
    }
    for (pos, axis_name) in it.axes.iter().enumerate() {
        let Some(axis) = program.axes.get(axis_name) else {
            return Err(ValidateError::new(format!(
                "iteration `{}` iterates unregistered axis `{axis_name}`",
                it.name
            )));
        };
        // Extent resolution: variable and sparse-fixed axes need an
        // iterated ancestor earlier in the axis list.
        if let Some(parent) =
            axis.parent.as_ref().filter(|_| axis.kind.is_variable() || axis.kind.is_sparse())
        {
            let earlier = &it.axes[..pos];
            if !earlier.iter().any(|a| a == parent) {
                return Err(ValidateError::new(format!(
                    "iteration `{}`: axis `{axis_name}` must follow its parent `{parent}`",
                    it.name
                )));
            }
        }
    }
    // Stores reference declared buffers with matching arity.
    for st in it.init.iter().chain(&it.body) {
        let Some(buf) = program.buffer(&st.buffer) else {
            return Err(ValidateError::new(format!(
                "iteration `{}` stores to undeclared buffer `{}`",
                it.name, st.buffer
            )));
        };
        if st.indices.len() != buf.axes.len() {
            return Err(ValidateError::new(format!(
                "iteration `{}` stores to `{}` with {} indices (buffer has {} axes)",
                it.name,
                st.buffer,
                st.indices.len(),
                buf.axes.len()
            )));
        }
        check_expr_buffers(program, it, &st.value)?;
        for idx in &st.indices {
            check_expr_buffers(program, it, idx)?;
        }
    }
    Ok(())
}

fn check_expr_buffers(program: &SpProgram, it: &SpIter, e: &Expr) -> Result<(), ValidateError> {
    match e {
        Expr::BufferLoad { buffer, indices } => {
            if let Some(buf) = program.buffer(&buffer.name) {
                if indices.len() != buf.axes.len() {
                    return Err(ValidateError::new(format!(
                        "iteration `{}` loads `{}` with {} indices (buffer has {} axes)",
                        it.name,
                        buffer.name,
                        indices.len(),
                        buf.axes.len()
                    )));
                }
            }
            // Extras / aux buffers pass through unchecked here (the loop
            // -level verifier covers them post-lowering).
            for i in indices {
                check_expr_buffers(program, it, i)?;
            }
            Ok(())
        }
        Expr::Binary { lhs, rhs, .. } => {
            check_expr_buffers(program, it, lhs)?;
            check_expr_buffers(program, it, rhs)
        }
        Expr::Select { cond, then, otherwise } => {
            check_expr_buffers(program, it, cond)?;
            check_expr_buffers(program, it, then)?;
            check_expr_buffers(program, it, otherwise)
        }
        Expr::Cast { value, .. } => check_expr_buffers(program, it, value),
        Expr::Call { args, .. } => {
            for a in args {
                check_expr_buffers(program, it, a)?;
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage1::{spmm_program, SpStore};

    #[test]
    fn valid_programs_pass() {
        validate(&spmm_program(8, 8, 16, 4)).unwrap();
        let mut fused = crate::stage1::sddmm_program(8, 8, 16, 4);
        crate::schedule1::sparse_fuse(&mut fused, "sddmm", &["I", "J"]).unwrap();
        validate(&fused).unwrap();
    }

    #[test]
    fn decomposed_programs_pass() {
        let p = spmm_program(8, 8, 16, 4);
        let d = crate::rewrite::decompose_format(
            &p,
            &[crate::rewrite::FormatRewriteRule::ell("A", 2, 8, 8)],
        )
        .unwrap();
        validate(&d).unwrap();
    }

    #[test]
    fn child_before_parent_is_rejected() {
        let mut p = spmm_program(8, 8, 16, 4);
        let it = p.iteration_mut("spmm").unwrap();
        it.axes.swap(0, 1); // J before I
        it.kinds.swap(0, 1);
        it.vars.swap(0, 1);
        let err = validate(&p).unwrap_err();
        assert!(err.to_string().contains("must follow its parent"), "{err}");
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let mut p = spmm_program(8, 8, 16, 4);
        let it = p.iteration_mut("spmm").unwrap();
        it.body[0].indices.pop(); // C accessed with 1 index
        let err = validate(&p).unwrap_err();
        assert!(err.to_string().contains("indices"), "{err}");
    }

    #[test]
    fn undeclared_store_target_is_rejected() {
        let mut p = spmm_program(8, 8, 16, 4);
        let it = p.iteration_mut("spmm").unwrap();
        it.body.push(SpStore { buffer: "GHOST".into(), indices: vec![], value: Expr::f32(0.0) });
        let err = validate(&p).unwrap_err();
        assert!(err.to_string().contains("GHOST"), "{err}");
    }

    #[test]
    fn broken_fusion_partition_is_rejected() {
        let mut p = spmm_program(8, 8, 16, 4);
        let it = p.iteration_mut("spmm").unwrap();
        it.fuse_groups = vec![vec![0], vec![2]]; // missing axis 1
        let err = validate(&p).unwrap_err();
        assert!(err.to_string().contains("partition"), "{err}");
    }
}
