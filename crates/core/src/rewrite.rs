//! Format decomposition (§3.2.1 and Appendix A): `FormatRewriteRule` +
//! `decompose_format`, the Stage I transformation behind composable
//! formats.
//!
//! Each rule `F: (x, i) → (x′, i′)` rewrites one sparse buffer into a new
//! format: new axes and a new buffer are registered, each computation
//! iteration touching the buffer is cloned per rule with its coordinates
//! remapped through the rule's inverse index map, and a data-copy iteration
//! is generated per rule (Figure 5). The index-array conversion `i → i′`
//! is performed at pre-processing time by `sparsetir-smat` constructors
//! (the paper's SciPy-based indices inference); the generated copy
//! iterations document the IR-level transformation and can be stripped with
//! [`SpProgram::strip_copies`] before execution.
//!
//! When the original iteration carried an `init` clause and more than one
//! rule applies, the init is hoisted into a dedicated zero-fill iteration
//! so the per-format partial kernels accumulate instead of re-zeroing the
//! output (what the released artifact does with a memset before launching
//! the fused kernels).

use crate::axis::Axis;
use crate::stage1::{SpIter, SpProgram, SpStore};
use sparsetir_ir::prelude::*;
use std::fmt;
use std::rc::Rc;

/// Error raised by format decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RewriteError {
    message: String,
}

impl RewriteError {
    fn new(message: impl Into<String>) -> Self {
        RewriteError { message: message.into() }
    }
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "format rewrite error: {}", self.message)
    }
}

impl std::error::Error for RewriteError {}

/// Inverse index map: new-format iterator variables → original coordinate
/// expressions (the `f⁻¹` of Appendix A, generalized to arbitrary `Expr`s
/// so gather indirections like `rows[ib]` are expressible).
pub type InvIndexMap = Rc<dyn Fn(&[Expr]) -> Vec<Expr>>;

/// A format rewriting rule for one sparse buffer.
#[derive(Clone)]
pub struct FormatRewriteRule {
    /// Rule name; suffixes generated iterations and the new buffer.
    pub name: String,
    /// Name of the buffer to rewrite (e.g. `"A"`).
    pub buffer: Rc<str>,
    /// New axes to register (the SparseTIR description of the new format).
    pub new_axes: Vec<Axis>,
    /// Axis order of the new buffer (e.g. `[IO, JO, II, JI]`).
    pub buffer_axes: Vec<Rc<str>>,
    /// Iteration order of the new axes when replacing the original buffer's
    /// axes inside computations (e.g. `[IO, II, JO, JI]`).
    pub iter_axes: Vec<Rc<str>>,
    /// For each entry of `iter_axes`: index into the original buffer's axis
    /// list it derives from (S/R kinds are inherited through this map).
    pub derives_from: Vec<usize>,
    /// New iterator variables → original coordinates.
    pub inv_index_map: InvIndexMap,
    /// Plain auxiliary buffers the rule introduces (e.g. row-id arrays).
    pub extras: Vec<Buffer>,
}

impl fmt::Debug for FormatRewriteRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FormatRewriteRule")
            .field("name", &self.name)
            .field("buffer", &self.buffer)
            .field("buffer_axes", &self.buffer_axes)
            .field("iter_axes", &self.iter_axes)
            .finish_non_exhaustive()
    }
}

impl FormatRewriteRule {
    /// New buffer name: `<buffer>_<rule>`.
    #[must_use]
    pub fn new_buffer_name(&self) -> String {
        format!("{}_{}", self.buffer, self.name)
    }

    /// BSR(`block`) rule for a 2-D buffer (paper Appendix A's `BSR`).
    ///
    /// `block_rows`/`block_cols`/`nnz_blocks` describe the concrete
    /// pre-computed block structure (the `i′` of the rule).
    #[must_use]
    pub fn bsr(
        buffer: &str,
        block: usize,
        block_rows: usize,
        block_cols: usize,
        nnz_blocks: usize,
    ) -> FormatRewriteRule {
        let name = format!("bsr_{block}");
        let io: Rc<str> = format!("IO_{name}").into();
        let jo: Rc<str> = format!("JO_{name}").into();
        let ii: Rc<str> = format!("II_{name}").into();
        let ji: Rc<str> = format!("JI_{name}").into();
        let indptr = format!("{name}_indptr");
        let indices = format!("{name}_indices");
        let new_axes = vec![
            Axis::dense_fixed(io.clone(), block_rows),
            Axis::sparse_variable(jo.clone(), io.clone(), block_cols, nnz_blocks, indptr, indices),
            Axis::dense_fixed(ii.clone(), block),
            Axis::dense_fixed(ji.clone(), block),
        ];
        let b = block as i64;
        FormatRewriteRule {
            name,
            buffer: buffer.into(),
            new_axes,
            buffer_axes: vec![io.clone(), jo.clone(), ii.clone(), ji.clone()],
            iter_axes: vec![io, ii, jo, ji],
            derives_from: vec![0, 0, 1, 1],
            inv_index_map: Rc::new(move |vars: &[Expr]| {
                // vars = [io, ii, jo, ji] (iteration order).
                vec![
                    (vars[0].clone() * b + vars[1].clone()).simplify(),
                    (vars[2].clone() * b + vars[3].clone()).simplify(),
                ]
            }),
            extras: vec![],
        }
    }

    /// ELL(`width`) rule for a 2-D buffer (Appendix A's `ELL`).
    #[must_use]
    pub fn ell(buffer: &str, width: usize, rows: usize, cols: usize) -> FormatRewriteRule {
        let name = format!("ell_{width}");
        let i2: Rc<str> = format!("I2_{name}").into();
        let j2: Rc<str> = format!("J2_{name}").into();
        let indices = format!("{name}_indices");
        let mut j_axis = Axis::sparse_fixed(j2.clone(), i2.clone(), cols, width, indices);
        j_axis.nnz = rows * width;
        let new_axes = vec![Axis::dense_fixed(i2.clone(), rows), j_axis];
        FormatRewriteRule {
            name,
            buffer: buffer.into(),
            new_axes,
            buffer_axes: vec![i2.clone(), j2.clone()],
            iter_axes: vec![i2, j2],
            derives_from: vec![0, 1],
            inv_index_map: Rc::new(|vars: &[Expr]| vec![vars[0].clone(), vars[1].clone()]),
            extras: vec![],
        }
    }

    /// Bucketed ELL rule with row-id indirection — one bucket of the
    /// paper's `hyb(c, k)` format (Figure 11). `bucket_rows` ELL rows of
    /// fixed `width`, mapping to original rows through the `rows_buf`
    /// gather array.
    #[must_use]
    pub fn bucket_ell(
        buffer: &str,
        tag: &str,
        width: usize,
        bucket_rows: usize,
        cols: usize,
    ) -> FormatRewriteRule {
        let name = format!("hyb_{tag}");
        let ib: Rc<str> = format!("IB_{name}").into();
        let jb: Rc<str> = format!("JB_{name}").into();
        let indices = format!("{name}_indices");
        let rows_name = format!("{name}_rows");
        let rows_buf = Buffer::global_i32(rows_name, vec![Expr::i32(bucket_rows as i64)]);
        let mut j_axis = Axis::sparse_fixed(jb.clone(), ib.clone(), cols, width, indices);
        j_axis.nnz = bucket_rows * width;
        let new_axes = vec![Axis::dense_fixed(ib.clone(), bucket_rows), j_axis];
        let rows_for_map = rows_buf.clone();
        FormatRewriteRule {
            name,
            buffer: buffer.into(),
            new_axes,
            buffer_axes: vec![ib.clone(), jb.clone()],
            iter_axes: vec![ib, jb],
            derives_from: vec![0, 1],
            inv_index_map: Rc::new(move |vars: &[Expr]| {
                vec![rows_for_map.load(vec![vars[0].clone()]), vars[1].clone()]
            }),
            extras: vec![rows_buf],
        }
    }
}

/// Apply `decompose_format`: rewrite every computation iteration that
/// touches each rule's buffer into per-rule iterations (plus copy
/// iterations), registering new axes and buffers (§3.2.1, Figure 5).
///
/// # Errors
/// Fails when a rule's buffer is missing, or an affected iteration does
/// not iterate the buffer's axes directly (the supported pattern).
pub fn decompose_format(
    program: &SpProgram,
    rules: &[FormatRewriteRule],
) -> Result<SpProgram, RewriteError> {
    let mut out = program.clone();
    let mut fresh_var = 0usize;
    // Register all rules' axes, extras and new buffers up front so every
    // rule decomposes the *original* iterations.
    for rule in rules {
        let orig_buf = out
            .buffer(&rule.buffer)
            .cloned()
            .ok_or_else(|| RewriteError::new(format!("buffer `{}` not found", rule.buffer)))?;
        for axis in &rule.new_axes {
            out.axes.add(axis.clone());
        }
        for extra in &rule.extras {
            if !out.extras.iter().any(|b| b.name == extra.name) {
                out.extras.push(extra.clone());
            }
        }
        let new_buf = crate::stage1::SpBuffer {
            name: rule.new_buffer_name().into(),
            axes: rule.buffer_axes.clone(),
            dtype: orig_buf.dtype,
        };
        if out.buffer(&new_buf.name).is_none() {
            out.buffers.push(new_buf);
        }
    }

    let mut new_iters: Vec<SpIter> = Vec::new();
    // Copy iterations first (Figure 5 places them before the computes).
    for rule in rules {
        let orig_buf = out.buffer(&rule.buffer).cloned().expect("registered above");
        let copy_vars: Vec<Var> = rule
            .iter_axes
            .iter()
            .map(|a| {
                fresh_var += 1;
                Var::i32(format!("c_{}_{}", a.to_lowercase(), fresh_var))
            })
            .collect();
        let copy_exprs: Vec<Expr> = copy_vars.iter().map(Expr::var).collect();
        let coords = (rule.inv_index_map)(&copy_exprs);
        let buffer_coords: Vec<Expr> = rule
            .buffer_axes
            .iter()
            .map(|a| {
                let pos = rule.iter_axes.iter().position(|x| x == a).expect("axis in iter");
                copy_exprs[pos].clone()
            })
            .collect();
        new_iters.push(SpIter {
            name: format!("copy_{}", rule.name).into(),
            axes: rule.iter_axes.clone(),
            kinds: vec![IterKind::Spatial; rule.iter_axes.len()],
            vars: copy_vars,
            fuse_groups: (0..rule.iter_axes.len()).map(|i| vec![i]).collect(),
            init: Vec::new(),
            body: vec![SpStore {
                buffer: rule.new_buffer_name().into(),
                indices: buffer_coords,
                value: orig_buf.load(&out.axes, coords),
            }],
        });
    }

    for it in &program.iterations {
        let touching: Vec<&FormatRewriteRule> =
            rules.iter().filter(|r| iteration_touches(it, &r.buffer)).collect();
        if touching.is_empty() {
            new_iters.push(it.clone());
            continue;
        }
        let distinct_buffers: std::collections::HashSet<&str> =
            touching.iter().map(|r| &*r.buffer).collect();
        if distinct_buffers.len() > 1 {
            return Err(RewriteError::new(format!(
                "iteration `{}` touches multiple rewritten buffers; decompose them separately",
                it.name
            )));
        }
        // Hoisted zero-fill iteration for the original init.
        if !it.init.is_empty() {
            let spatial: Vec<usize> = it
                .kinds
                .iter()
                .enumerate()
                .filter(|(_, k)| **k == IterKind::Spatial)
                .map(|(i, _)| i)
                .collect();
            new_iters.push(SpIter {
                name: format!("init_{}", it.name).into(),
                axes: spatial.iter().map(|&i| it.axes[i].clone()).collect(),
                kinds: vec![IterKind::Spatial; spatial.len()],
                vars: spatial.iter().map(|&i| it.vars[i].clone()).collect(),
                fuse_groups: (0..spatial.len()).map(|i| vec![i]).collect(),
                init: Vec::new(),
                body: it.init.clone(),
            });
        }
        for rule in &touching {
            let orig_buf = out.buffer(&rule.buffer).cloned().expect("registered above");
            let new_buf = out.buffer(&rule.new_buffer_name()).cloned().expect("registered above");
            // Positions of the original buffer's axes within the iteration.
            let axis_positions: Vec<usize> = orig_buf
                .axes
                .iter()
                .map(|a| {
                    it.axes.iter().position(|x| x == a).ok_or_else(|| {
                        RewriteError::new(format!(
                            "iteration `{}` does not iterate axis `{a}` of buffer `{}`",
                            it.name, rule.buffer
                        ))
                    })
                })
                .collect::<Result<_, _>>()?;

            // Fresh iteration variables for the new axes.
            let new_vars: Vec<Var> = rule
                .iter_axes
                .iter()
                .map(|a| {
                    fresh_var += 1;
                    Var::i32(format!("v_{}_{}", a.to_lowercase(), fresh_var))
                })
                .collect();
            let new_var_exprs: Vec<Expr> = new_vars.iter().map(Expr::var).collect();
            let orig_coords = (rule.inv_index_map)(&new_var_exprs);
            if orig_coords.len() != orig_buf.axes.len() {
                return Err(RewriteError::new(format!(
                    "rule `{}` inverse map returned {} coords for {}-D buffer",
                    rule.name,
                    orig_coords.len(),
                    orig_buf.axes.len()
                )));
            }

            // Build the replacement axis/kind/var lists: new axes inserted
            // at the first original axis position, originals removed.
            let insert_at = *axis_positions.iter().min().expect("nonempty");
            let mut axes2: Vec<Rc<str>> = Vec::new();
            let mut kinds2: Vec<IterKind> = Vec::new();
            let mut vars2: Vec<Var> = Vec::new();
            for (pos, axis) in it.axes.iter().enumerate() {
                if pos == insert_at {
                    for (na, &derive) in rule.iter_axes.iter().zip(&rule.derives_from) {
                        axes2.push(na.clone());
                        kinds2.push(it.kinds[axis_positions[derive]]);
                        vars2.push(
                            new_vars[rule.iter_axes.iter().position(|x| x == na).unwrap()].clone(),
                        );
                    }
                }
                if !axis_positions.contains(&pos) {
                    axes2.push(axis.clone());
                    kinds2.push(it.kinds[pos]);
                    vars2.push(it.vars[pos].clone());
                }
            }

            // Rewrite stores: replace exact accesses to the buffer, then
            // substitute remaining original iterator variables.
            let orig_vars: Vec<Var> = axis_positions.iter().map(|&p| it.vars[p].clone()).collect();
            let rewrite_store = |st: &SpStore| -> SpStore {
                let buffer_coords: Vec<Expr> = rule
                    .buffer_axes
                    .iter()
                    .map(|a| {
                        let pos = rule.iter_axes.iter().position(|x| x == a).expect("axis in iter");
                        new_var_exprs[pos].clone()
                    })
                    .collect();
                let mut st2 = rewrite_buffer_access(
                    st,
                    &rule.buffer,
                    &orig_vars,
                    &new_buf.name,
                    &buffer_coords,
                );
                for (ov, coord) in orig_vars.iter().zip(&orig_coords) {
                    st2 = substitute_store(&st2, ov, coord);
                }
                st2
            };

            let compute = SpIter {
                name: format!("{}_{}", it.name, rule.name).into(),
                axes: axes2,
                kinds: kinds2,
                vars: vars2,
                fuse_groups: (0..it.axes.len() - axis_positions.len() + rule.iter_axes.len())
                    .map(|i| vec![i])
                    .collect(),
                init: Vec::new(), // hoisted into the zero-fill iteration
                body: it.body.iter().map(rewrite_store).collect(),
            };
            new_iters.push(compute);
        }
    }
    out.iterations = new_iters;
    Ok(out)
}

impl SpProgram {
    /// Remove generated `copy_*` iterations: data conversion is performed
    /// by `sparsetir-smat` at pre-processing time (§3.2.1: "we can perform
    /// data copying at pre-processing step").
    #[must_use]
    pub fn strip_copies(&self) -> SpProgram {
        let mut p = self.clone();
        p.iterations.retain(|it| !it.name.starts_with("copy_"));
        p
    }
}

fn iteration_touches(it: &SpIter, buffer: &str) -> bool {
    let touches_store = |st: &SpStore| {
        if &*st.buffer == buffer {
            return true;
        }
        let mut found = false;
        let mut check = |e: &Expr| find_buffer_use(e, buffer, &mut found);
        check(&st.value);
        for i in &st.indices {
            check(i);
        }
        found
    };
    it.body.iter().any(touches_store) || it.init.iter().any(touches_store)
}

fn find_buffer_use(e: &Expr, buffer: &str, found: &mut bool) {
    match e {
        Expr::BufferLoad { buffer: b, indices } => {
            if &*b.name == buffer {
                *found = true;
            }
            for i in indices {
                find_buffer_use(i, buffer, found);
            }
        }
        Expr::Binary { lhs, rhs, .. } => {
            find_buffer_use(lhs, buffer, found);
            find_buffer_use(rhs, buffer, found);
        }
        Expr::Select { cond, then, otherwise } => {
            find_buffer_use(cond, buffer, found);
            find_buffer_use(then, buffer, found);
            find_buffer_use(otherwise, buffer, found);
        }
        Expr::Cast { value, .. } => find_buffer_use(value, buffer, found),
        Expr::Call { args, .. } => {
            for a in args {
                find_buffer_use(a, buffer, found);
            }
        }
        _ => {}
    }
}

/// Replace accesses `buffer[orig_vars…]` (exact variable indices) with
/// `new_buffer[new_coords…]` in one store.
fn rewrite_buffer_access(
    st: &SpStore,
    buffer: &str,
    orig_vars: &[Var],
    new_buffer: &str,
    new_coords: &[Expr],
) -> SpStore {
    let matches_exact = |indices: &[Expr]| -> bool {
        indices.len() == orig_vars.len()
            && indices.iter().zip(orig_vars).all(|(e, v)| matches!(e, Expr::Var(ev) if ev == v))
    };
    fn rewrite_expr(
        e: &Expr,
        buffer: &str,
        matches: &dyn Fn(&[Expr]) -> bool,
        new_buffer: &str,
        new_coords: &[Expr],
    ) -> Expr {
        match e {
            Expr::BufferLoad { buffer: b, indices } => {
                let idx: Vec<Expr> = indices
                    .iter()
                    .map(|i| rewrite_expr(i, buffer, matches, new_buffer, new_coords))
                    .collect();
                if &*b.name == buffer && matches(&idx) {
                    let nb = Buffer::new(new_buffer, b.dtype, vec![], b.scope);
                    Expr::BufferLoad { buffer: nb, indices: new_coords.to_vec() }
                } else {
                    Expr::BufferLoad { buffer: b.clone(), indices: idx }
                }
            }
            Expr::Binary { op, lhs, rhs } => Expr::Binary {
                op: *op,
                lhs: Box::new(rewrite_expr(lhs, buffer, matches, new_buffer, new_coords)),
                rhs: Box::new(rewrite_expr(rhs, buffer, matches, new_buffer, new_coords)),
            },
            Expr::Select { cond, then, otherwise } => Expr::Select {
                cond: Box::new(rewrite_expr(cond, buffer, matches, new_buffer, new_coords)),
                then: Box::new(rewrite_expr(then, buffer, matches, new_buffer, new_coords)),
                otherwise: Box::new(rewrite_expr(
                    otherwise, buffer, matches, new_buffer, new_coords,
                )),
            },
            Expr::Cast { dtype, value } => Expr::Cast {
                dtype: *dtype,
                value: Box::new(rewrite_expr(value, buffer, matches, new_buffer, new_coords)),
            },
            Expr::Call { intrin, args } => Expr::Call {
                intrin: *intrin,
                args: args
                    .iter()
                    .map(|a| rewrite_expr(a, buffer, matches, new_buffer, new_coords))
                    .collect(),
            },
            _ => e.clone(),
        }
    }
    let m = |idx: &[Expr]| matches_exact(idx);
    let value = rewrite_expr(&st.value, buffer, &m, new_buffer, new_coords);
    let (tb, ti) = if &*st.buffer == buffer && matches_exact(&st.indices) {
        (Rc::from(new_buffer), new_coords.to_vec())
    } else {
        (
            st.buffer.clone(),
            st.indices
                .iter()
                .map(|i| rewrite_expr(i, buffer, &m, new_buffer, new_coords))
                .collect(),
        )
    };
    SpStore { buffer: tb, indices: ti, value }
}

fn substitute_store(st: &SpStore, var: &Var, with: &Expr) -> SpStore {
    SpStore {
        buffer: st.buffer.clone(),
        indices: st.indices.iter().map(|e| e.substitute(var, with)).collect(),
        value: st.value.substitute(var, with),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage1::spmm_program;

    #[test]
    fn bsr_plus_ell_decomposition_matches_figure5_shape() {
        // SpMM over a 4x4 CSR decomposed into BSR(2) + ELL(2).
        let p = spmm_program(4, 4, 8, 3);
        let rules =
            vec![FormatRewriteRule::bsr("A", 2, 2, 2, 3), FormatRewriteRule::ell("A", 2, 4, 4)];
        let d = decompose_format(&p, &rules).unwrap();
        let names: Vec<String> = d.iterations.iter().map(|i| i.name.to_string()).collect();
        assert!(names.contains(&"init_spmm".to_string()), "{names:?}");
        assert!(names.contains(&"copy_bsr_2".to_string()), "{names:?}");
        assert!(names.contains(&"copy_ell_2".to_string()), "{names:?}");
        assert!(names.contains(&"spmm_bsr_2".to_string()), "{names:?}");
        assert!(
            names.contains(&"spmm_bsr_2_ell_2".to_string())
                || names.contains(&"spmm_ell_2".to_string()),
            "expected an ELL compute iteration in {names:?}"
        );
        // New buffers registered.
        assert!(d.buffer("A_bsr_2").is_some());
        assert!(d.buffer("A_ell_2").is_some());
    }

    #[test]
    fn bsr_compute_iteration_has_remapped_accesses() {
        let p = spmm_program(4, 4, 8, 3);
        let rules = vec![FormatRewriteRule::bsr("A", 2, 2, 2, 3)];
        let d = decompose_format(&p, &rules).unwrap();
        let script = d.script();
        // C is written at (io·2+ii, k) and B read at (jo·2+ji, k).
        assert!(script.contains("A_bsr_2["), "{script}");
        assert!(script.contains("* 2)"), "{script}");
        // Compute iteration carries kinds derived from the original SRS.
        let it = d
            .iterations
            .iter()
            .find(|i| i.name.starts_with("spmm_bsr"))
            .expect("compute iteration");
        assert_eq!(it.kind_string(), "SSRRS"); // io,ii spatial; jo,ji reduce; k spatial
    }

    #[test]
    fn strip_copies_removes_copy_iterations() {
        let p = spmm_program(4, 4, 8, 3);
        let d = decompose_format(&p, &[FormatRewriteRule::ell("A", 2, 4, 4)]).unwrap();
        let stripped = d.strip_copies();
        assert!(stripped.iterations.iter().all(|i| !i.name.starts_with("copy_")));
        assert!(d.iterations.len() > stripped.iterations.len());
    }

    #[test]
    fn missing_buffer_errors() {
        let p = spmm_program(4, 4, 8, 3);
        let r = FormatRewriteRule::ell("ZZZ", 2, 4, 4);
        assert!(decompose_format(&p, &[r]).is_err());
    }

    #[test]
    fn bucket_ell_uses_row_indirection() {
        let p = spmm_program(8, 8, 16, 2);
        let rule = FormatRewriteRule::bucket_ell("A", "p0_b1", 2, 5, 8);
        let d = decompose_format(&p, &[rule]).unwrap();
        let script = d.script();
        assert!(script.contains("hyb_p0_b1_rows["), "{script}");
        // The extras list carries the row-id buffer for binding.
        assert!(d.extras.iter().any(|b| &*b.name == "hyb_p0_b1_rows"));
    }
}
