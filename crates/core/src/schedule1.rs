//! Stage I schedules (§3.2.2): `sparse_reorder` and `sparse_fuse`, applied
//! to sparse iterations *before* lowering (Figure 6).

use crate::stage1::SpProgram;
use sparsetir_ir::prelude::IterKind;
use std::fmt;

/// Error raised by Stage I schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stage1Error {
    message: String,
}

impl Stage1Error {
    fn new(message: impl Into<String>) -> Self {
        Stage1Error { message: message.into() }
    }
}

impl fmt::Display for Stage1Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stage I schedule error: {}", self.message)
    }
}

impl std::error::Error for Stage1Error {}

/// Reorder the axes of iteration `iter_name` to `new_order` (a permutation
/// of the current axis names). The axis order dictates the generated loop
/// order in Stage II.
///
/// A sparse/variable axis must stay after its parent when the parent is
/// also iterated (its loop extent depends on the parent's position).
///
/// # Errors
/// Fails when the iteration is missing, `new_order` is not a permutation,
/// or a dependent axis would be hoisted above its parent.
pub fn sparse_reorder(
    program: &mut SpProgram,
    iter_name: &str,
    new_order: &[&str],
) -> Result<(), Stage1Error> {
    // Validate the permutation against an immutable borrow first.
    let perm: Vec<usize> = {
        let it = program
            .iteration(iter_name)
            .ok_or_else(|| Stage1Error::new(format!("iteration `{iter_name}` not found")))?;
        if new_order.len() != it.axes.len() {
            return Err(Stage1Error::new(format!(
                "new order has {} axes, iteration has {}",
                new_order.len(),
                it.axes.len()
            )));
        }
        let perm: Vec<usize> = new_order
            .iter()
            .map(|name| {
                it.axes
                    .iter()
                    .position(|a| &**a == *name)
                    .ok_or_else(|| Stage1Error::new(format!("axis `{name}` not in iteration")))
            })
            .collect::<Result<_, _>>()?;
        {
            let mut seen = vec![false; perm.len()];
            for &p in &perm {
                if seen[p] {
                    return Err(Stage1Error::new("new order repeats an axis"));
                }
                seen[p] = true;
            }
        }
        // Dependency check: every axis must appear after its parent if the
        // parent is iterated.
        for (pos, name) in new_order.iter().enumerate() {
            if let Some(axis) = program.axes.get(name) {
                if let Some(parent) = &axis.parent {
                    if let Some(ppos) = new_order.iter().position(|n| *n == &**parent) {
                        if ppos > pos {
                            return Err(Stage1Error::new(format!(
                                "axis `{name}` cannot precede its parent `{parent}`"
                            )));
                        }
                    } else if it.axes.iter().any(|a| a == parent) {
                        unreachable!("parent iterated but absent from permutation");
                    }
                }
            }
        }
        perm
    };
    let it = program.iteration_mut(iter_name).expect("checked above");
    it.axes = perm.iter().map(|&p| it.axes[p].clone()).collect();
    it.kinds = perm.iter().map(|&p| it.kinds[p]).collect();
    it.vars = perm.iter().map(|&p| it.vars[p].clone()).collect();
    it.fuse_groups = (0..it.axes.len()).map(|i| vec![i]).collect();
    Ok(())
}

/// Fuse consecutive axes of `iter_name` into a single generated loop
/// (`sparse_fuse`). Used by SDDMM to iterate non-zeros `(i, j)` directly
/// with one loop over `nnz` (Figure 8, bottom).
///
/// Supported groups (sufficient for the paper's uses):
/// * `[parent, variable-child]` — one loop over the child's total `nnz`,
/// * a group of dense-fixed axes — one loop over the product of extents.
///
/// # Errors
/// Fails when the axes are not consecutive in the iteration or the group
/// shape is unsupported.
pub fn sparse_fuse(
    program: &mut SpProgram,
    iter_name: &str,
    axes: &[&str],
) -> Result<(), Stage1Error> {
    if axes.len() < 2 {
        return Ok(());
    }
    let (start, len) = {
        let it = program
            .iteration(iter_name)
            .ok_or_else(|| Stage1Error::new(format!("iteration `{iter_name}` not found")))?;
        let start = it
            .axes
            .iter()
            .position(|a| &**a == axes[0])
            .ok_or_else(|| Stage1Error::new(format!("axis `{}` not in iteration", axes[0])))?;
        for (off, name) in axes.iter().enumerate() {
            match it.axes.get(start + off) {
                Some(a) if &**a == *name => {}
                _ => {
                    return Err(Stage1Error::new(format!(
                        "axes {axes:?} are not consecutive in iteration `{iter_name}`"
                    )))
                }
            }
        }
        // Validate the group shape.
        let kinds: Vec<_> =
            axes.iter().map(|name| program.axes.get(name).expect("registered").kind).collect();
        let all_dense_fixed = kinds.iter().all(|k| *k == crate::axis::AxisKind::DenseFixed);
        let parent_child = axes.len() == 2 && {
            let child = program.axes.get(axes[1]).expect("registered");
            child.kind.is_variable() && child.parent.as_deref() == Some(axes[0])
        };
        if !all_dense_fixed && !parent_child {
            return Err(Stage1Error::new(
                "sparse_fuse supports [parent, variable-child] or dense-fixed groups",
            ));
        }
        (start, axes.len())
    };
    let it = program.iteration_mut(iter_name).expect("checked above");
    // Rebuild fuse groups: singletons outside, one group for [start, start+len).
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut i = 0;
    while i < it.axes.len() {
        if i == start {
            groups.push((start..start + len).collect());
            i += len;
        } else {
            groups.push(vec![i]);
            i += 1;
        }
    }
    it.fuse_groups = groups;
    Ok(())
}

/// Mark all reduction axes of an iteration as spatial (used after rewrites
/// that eliminate reductions). Exposed for completeness of the Stage I
/// schedule set.
///
/// # Errors
/// Fails when the iteration is missing.
pub fn to_spatial(program: &mut SpProgram, iter_name: &str) -> Result<(), Stage1Error> {
    let it = program
        .iteration_mut(iter_name)
        .ok_or_else(|| Stage1Error::new(format!("iteration `{iter_name}` not found")))?;
    for k in &mut it.kinds {
        *k = IterKind::Spatial;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage1::{sddmm_program, spmm_program};

    #[test]
    fn reorder_matches_figure6() {
        // Figure 6: spmm [I, J, K] "SRS" → reorder([K, I, J]) = "SSR".
        let mut p = spmm_program(4, 4, 8, 2);
        sparse_reorder(&mut p, "spmm", &["K", "I", "J"]).unwrap();
        let it = p.iteration("spmm").unwrap();
        let names: Vec<&str> = it.axes.iter().map(|a| &**a).collect();
        assert_eq!(names, vec!["K", "I", "J"]);
        assert_eq!(it.kind_string(), "SSR");
    }

    #[test]
    fn reorder_rejects_child_before_parent() {
        let mut p = spmm_program(4, 4, 8, 2);
        let err = sparse_reorder(&mut p, "spmm", &["J", "I", "K"]).unwrap_err();
        assert!(err.to_string().contains("parent"), "{err}");
    }

    #[test]
    fn reorder_rejects_non_permutation() {
        let mut p = spmm_program(4, 4, 8, 2);
        assert!(sparse_reorder(&mut p, "spmm", &["I", "I", "K"]).is_err());
        assert!(sparse_reorder(&mut p, "spmm", &["I", "J"]).is_err());
        assert!(sparse_reorder(&mut p, "nope", &["I", "J", "K"]).is_err());
    }

    #[test]
    fn fuse_marks_group() {
        // Figure 6: sddmm reorder to [K, I, J] then fuse(I, J).
        let mut p = sddmm_program(4, 4, 8, 2);
        sparse_reorder(&mut p, "sddmm", &["K", "I", "J"]).unwrap();
        sparse_fuse(&mut p, "sddmm", &["I", "J"]).unwrap();
        let it = p.iteration("sddmm").unwrap();
        assert_eq!(it.fuse_groups, vec![vec![0], vec![1, 2]]);
        let s = p.script();
        assert!(s.contains("fuse(I, J)"), "{s}");
    }

    #[test]
    fn fuse_rejects_nonconsecutive() {
        let mut p = spmm_program(4, 4, 8, 2);
        assert!(sparse_fuse(&mut p, "spmm", &["I", "K"]).is_err());
    }

    #[test]
    fn fuse_rejects_unsupported_shape() {
        // [J, K] where J is variable-child of I and K dense: K is not J's
        // child and they're not both dense-fixed roots of the right shape…
        // actually [J, K] is [variable, dense-fixed]: unsupported.
        let mut p = spmm_program(4, 4, 8, 2);
        assert!(sparse_fuse(&mut p, "spmm", &["J", "K"]).is_err());
    }

    #[test]
    fn fuse_dense_fixed_pair_allowed() {
        let mut p = sddmm_program(4, 4, 8, 2);
        // [I_, K] are both dense fixed in a fresh iteration? Use spmm's
        // J_, K via a small custom program instead: reuse sddmm axes K and
        // I_ is not in the iteration. Simplest: fuse on spmm [I, J] parent
        // child.
        sparse_fuse(&mut p, "sddmm", &["I", "J"]).unwrap();
        let it = p.iteration("sddmm").unwrap();
        assert_eq!(it.fuse_groups[0], vec![0, 1]);
    }
}
