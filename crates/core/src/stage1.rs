//! Stage I — coordinate-space computation (§3.2).
//!
//! A [`SpProgram`] holds axes, sparse buffers and sparse iterations. Bodies
//! are written against *coordinate space*: `A[i, j]` refers to the logical
//! matrix element, regardless of storage. Index expressions are arbitrary
//! [`Expr`]s (affine combinations, loads from other buffers), which is the
//! expressiveness SparseTIR adds over TACO-style iterator-only indexing.

use crate::axis::{Axis, AxisStore};
use sparsetir_ir::prelude::*;
use std::fmt::Write as _;
use std::rc::Rc;

/// A sparse buffer: values addressed in coordinate space through a list of
/// axes (the `match_sparse_buffer` of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct SpBuffer {
    /// Buffer name (also the data-binding key).
    pub name: Rc<str>,
    /// Axis names composing the format, outermost first.
    pub axes: Vec<Rc<str>>,
    /// Element type.
    pub dtype: DType,
}

impl SpBuffer {
    /// Coordinate-space placeholder [`Buffer`] used inside Stage I bodies:
    /// shape is the per-axis coordinate extent.
    #[must_use]
    pub fn coord_buffer(&self, axes: &AxisStore) -> Buffer {
        let shape = self
            .axes
            .iter()
            .map(|a| Expr::i32(axes.get(a).map_or(0, |ax| ax.length) as i64))
            .collect();
        Buffer::new(self.name.clone(), self.dtype, shape, Scope::Global)
    }

    /// Coordinate-space load `self[indices…]`.
    #[must_use]
    pub fn load(&self, axes: &AxisStore, indices: Vec<Expr>) -> Expr {
        self.coord_buffer(axes).load(indices)
    }
}

/// One assignment inside a sparse iteration: `buffer[indices…] = value`.
#[derive(Debug, Clone, PartialEq)]
pub struct SpStore {
    /// Target sparse buffer name.
    pub buffer: Rc<str>,
    /// Coordinate-space index expressions.
    pub indices: Vec<Expr>,
    /// Right-hand side (coordinate-space loads allowed).
    pub value: Expr,
}

/// A sparse iteration (`sp_iter`): iterators over an axis list with
/// spatial/reduction kinds, an optional init and a body of stores.
#[derive(Debug, Clone, PartialEq)]
pub struct SpIter {
    /// Name, used as the scheduling reference (becomes block names).
    pub name: Rc<str>,
    /// Iterated axes, outermost first.
    pub axes: Vec<Rc<str>>,
    /// Spatial (`S`) / reduction (`R`) kind per axis.
    pub kinds: Vec<IterKind>,
    /// Coordinate-space iterator variables, one per axis.
    pub vars: Vec<Var>,
    /// Fusion grouping: a partition of `0..axes.len()` into consecutive
    /// groups; each group lowers to a single loop (`sparse_fuse`).
    pub fuse_groups: Vec<Vec<usize>>,
    /// `with init():` stores, run before the first reduction step.
    pub init: Vec<SpStore>,
    /// Body stores.
    pub body: Vec<SpStore>,
}

impl SpIter {
    /// Iterator variable for the axis named `axis`.
    #[must_use]
    pub fn var_of(&self, axis: &str) -> Option<&Var> {
        self.axes.iter().position(|a| &**a == axis).map(|i| &self.vars[i])
    }

    /// The `"SRS"`-style kind string of the paper.
    #[must_use]
    pub fn kind_string(&self) -> String {
        self.kinds
            .iter()
            .map(|k| match k {
                IterKind::Spatial => 'S',
                IterKind::Reduce => 'R',
            })
            .collect()
    }
}

/// A Stage I program: the unit format decomposition, Stage I schedules and
/// sparse iteration lowering operate on.
#[derive(Debug, Clone, PartialEq)]
pub struct SpProgram {
    /// Program name (becomes the kernel name).
    pub name: Rc<str>,
    /// Axis registry.
    pub axes: AxisStore,
    /// Sparse buffers.
    pub buffers: Vec<SpBuffer>,
    /// Plain (non-sparse) auxiliary buffers referenced by index expressions,
    /// e.g. the bucket row-id arrays of `hyb` formats.
    pub extras: Vec<Buffer>,
    /// Sparse iterations, executed in order.
    pub iterations: Vec<SpIter>,
}

impl SpProgram {
    /// Look up a buffer by name.
    #[must_use]
    pub fn buffer(&self, name: &str) -> Option<&SpBuffer> {
        self.buffers.iter().find(|b| &*b.name == name)
    }

    /// Look up an iteration by name.
    #[must_use]
    pub fn iteration(&self, name: &str) -> Option<&SpIter> {
        self.iterations.iter().find(|i| &*i.name == name)
    }

    /// Mutable iteration lookup.
    pub fn iteration_mut(&mut self, name: &str) -> Option<&mut SpIter> {
        self.iterations.iter_mut().find(|i| &*i.name == name)
    }

    /// Script-form rendering in the paper's style (Figure 3).
    #[must_use]
    pub fn script(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# program: {}", self.name);
        for axis in self.axes.all() {
            let _ = writeln!(out, "{axis}");
        }
        for buf in &self.buffers {
            let axes: Vec<&str> = buf.axes.iter().map(|a| &**a).collect();
            let _ = writeln!(
                out,
                "{} = match_sparse_buffer(({}), \"{}\")",
                buf.name,
                axes.join(", "),
                buf.dtype
            );
        }
        for it in &self.iterations {
            let axes: Vec<String> = {
                let mut rendered = Vec::new();
                for group in &it.fuse_groups {
                    if group.len() == 1 {
                        rendered.push(it.axes[group[0]].to_string());
                    } else {
                        let names: Vec<&str> = group.iter().map(|&i| &*it.axes[i]).collect();
                        rendered.push(format!("fuse({})", names.join(", ")));
                    }
                }
                rendered
            };
            let vars: Vec<&str> = it.vars.iter().map(|v| &*v.name).collect();
            let _ = writeln!(
                out,
                "with sp_iter([{}], \"{}\", \"{}\") as [{}]:",
                axes.join(", "),
                it.kind_string(),
                it.name,
                vars.join(", ")
            );
            if !it.init.is_empty() {
                let _ = writeln!(out, "    with init():");
                for st in &it.init {
                    let idx: Vec<String> = st.indices.iter().map(print_expr).collect();
                    let _ = writeln!(
                        out,
                        "        {}[{}] = {}",
                        st.buffer,
                        idx.join(", "),
                        print_expr(&st.value)
                    );
                }
            }
            for st in &it.body {
                let idx: Vec<String> = st.indices.iter().map(print_expr).collect();
                let _ = writeln!(
                    out,
                    "    {}[{}] = {}",
                    st.buffer,
                    idx.join(", "),
                    print_expr(&st.value)
                );
            }
        }
        out
    }

    /// Reference semantics: lower the whole program to *dense*
    /// coordinate-space loops (every sparse buffer bound as a dense tensor
    /// of its coordinate extents). This is the oracle the compressed
    /// lowering is validated against — absent entries are zeros, so
    /// multiply-accumulate kernels agree exactly.
    #[must_use]
    pub fn to_dense_func(&self) -> PrimFunc {
        let mut body = Stmt::nop();
        for it in &self.iterations {
            let mut inner: Stmt = Stmt::nop();
            // Init runs when all reduce vars are 0 (guard below); body after.
            let store_stmt = |st: &SpStore| {
                let buf = self
                    .buffer(&st.buffer)
                    .expect("store target registered")
                    .coord_buffer(&self.axes);
                Stmt::BufferStore {
                    buffer: buf,
                    indices: st.indices.clone(),
                    value: st.value.clone(),
                }
            };
            if !it.init.is_empty() {
                let mut cond: Option<Expr> = None;
                for (i, kind) in it.kinds.iter().enumerate() {
                    if *kind == IterKind::Reduce {
                        let c = Expr::var(&it.vars[i]).eq(0);
                        cond = Some(match cond {
                            Some(prev) => prev.and(c),
                            None => c,
                        });
                    }
                }
                let mut init_stmt = Stmt::nop();
                for st in &it.init {
                    init_stmt = init_stmt.then(store_stmt(st));
                }
                inner = inner.then(match cond {
                    Some(c) => Stmt::IfThenElse {
                        cond: c,
                        then_branch: Box::new(init_stmt),
                        else_branch: None,
                    },
                    None => init_stmt,
                });
            }
            for st in &it.body {
                inner = inner.then(store_stmt(st));
            }
            // Wrap loops innermost-out over the *coordinate* extents.
            let mut stmt = inner;
            for (i, axis_name) in it.axes.iter().enumerate().rev() {
                let len = self.axes.get(axis_name).map_or(0, |a| a.length);
                stmt = Stmt::for_serial(it.vars[i].clone(), len as i64, stmt);
            }
            body = body.then(stmt);
        }
        let mut buffers: Vec<Buffer> =
            self.buffers.iter().map(|b| b.coord_buffer(&self.axes)).collect();
        buffers.extend(self.extras.iter().cloned());
        PrimFunc::new(format!("{}_dense", self.name), vec![], buffers, body)
    }
}

/// Builder DSL mirroring the paper's Python interface.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    name: String,
    axes: AxisStore,
    buffers: Vec<SpBuffer>,
    extras: Vec<Buffer>,
    iterations: Vec<SpIter>,
}

impl ProgramBuilder {
    /// Start a program.
    #[must_use]
    pub fn new(name: &str) -> ProgramBuilder {
        ProgramBuilder { name: name.to_string(), ..Default::default() }
    }

    /// `T.dense_fixed(length)`.
    pub fn dense_fixed(&mut self, name: &str, length: usize) -> Rc<str> {
        let axis = Axis::dense_fixed(name, length);
        let n = axis.name.clone();
        self.axes.add(axis);
        n
    }

    /// `T.dense_variable(parent, (length, nnz), indptr)`.
    pub fn dense_variable(
        &mut self,
        name: &str,
        parent: &str,
        length: usize,
        nnz: usize,
        indptr: &str,
    ) -> Rc<str> {
        let axis = Axis::dense_variable(name, parent, length, nnz, indptr);
        let n = axis.name.clone();
        self.axes.add(axis);
        n
    }

    /// `T.sparse_fixed(parent, (length, nnz_cols), indices)`.
    pub fn sparse_fixed(
        &mut self,
        name: &str,
        parent: &str,
        length: usize,
        nnz_cols: usize,
        indices: &str,
    ) -> Rc<str> {
        let mut axis = Axis::sparse_fixed(name, parent, length, nnz_cols, indices);
        axis.nnz = self.axes.positions(parent) * nnz_cols;
        let n = axis.name.clone();
        self.axes.add(axis);
        n
    }

    /// `T.sparse_variable(parent, (length, nnz), (indptr, indices))`.
    pub fn sparse_variable(
        &mut self,
        name: &str,
        parent: &str,
        length: usize,
        nnz: usize,
        indptr: &str,
        indices: &str,
    ) -> Rc<str> {
        let axis = Axis::sparse_variable(name, parent, length, nnz, indptr, indices);
        let n = axis.name.clone();
        self.axes.add(axis);
        n
    }

    /// `T.match_sparse_buffer(name, axes, dtype)`.
    pub fn sparse_buffer(&mut self, name: &str, axes: &[&str], dtype: DType) -> SpBuffer {
        let buf = SpBuffer {
            name: name.into(),
            axes: axes.iter().map(|a| Rc::from(*a)).collect(),
            dtype,
        };
        self.buffers.push(buf.clone());
        buf
    }

    /// Coordinate-space load helper for use in iteration bodies.
    #[must_use]
    pub fn load(&self, buffer: &SpBuffer, indices: Vec<Expr>) -> Expr {
        buffer.load(&self.axes, indices)
    }

    /// Borrow the axis registry built so far (for load expressions built
    /// outside the closure-based `sp_iter` helper).
    #[must_use]
    pub fn axes(&self) -> &AxisStore {
        &self.axes
    }

    /// Register a plain `int32` auxiliary buffer (e.g. a row-id gather
    /// array) and return it for use in index expressions.
    pub fn extra_i32(&mut self, name: &str, len: usize) -> Buffer {
        let b = Buffer::global_i32(name, vec![Expr::i32(len as i64)]);
        self.extras.push(b.clone());
        b
    }

    /// `with sp_iter(axes, kinds, name) as vars:` — `kinds` is the paper's
    /// `"SRS"` string; `build` receives the iterator variables and returns
    /// `(init stores, body stores)`.
    ///
    /// # Panics
    /// Panics when `kinds` length differs from `axes` length or an axis is
    /// unregistered.
    pub fn sp_iter(
        &mut self,
        name: &str,
        axes: &[&str],
        kinds: &str,
        build: impl FnOnce(&[Var]) -> (Vec<SpStore>, Vec<SpStore>),
    ) {
        assert_eq!(axes.len(), kinds.len(), "kind string length mismatch");
        let kind_vec: Vec<IterKind> = kinds
            .chars()
            .map(|c| match c {
                'S' => IterKind::Spatial,
                'R' => IterKind::Reduce,
                other => panic!("unknown iterator kind `{other}` (expected S/R)"),
            })
            .collect();
        let vars: Vec<Var> = axes
            .iter()
            .map(|a| {
                assert!(self.axes.get(a).is_some(), "axis `{a}` not registered");
                Var::i32(format!("v_{}", a.to_lowercase()))
            })
            .collect();
        let (init, body) = build(&vars);
        self.iterations.push(SpIter {
            name: name.into(),
            axes: axes.iter().map(|a| Rc::from(*a)).collect(),
            kinds: kind_vec,
            vars: vars.clone(),
            fuse_groups: (0..axes.len()).map(|i| vec![i]).collect(),
            init,
            body,
        });
    }

    /// Finish building.
    #[must_use]
    pub fn finish(self) -> SpProgram {
        SpProgram {
            name: self.name.into(),
            axes: self.axes,
            buffers: self.buffers,
            extras: self.extras,
            iterations: self.iterations,
        }
    }
}

/// Build the paper's running SpMM example (Figure 3) for a concrete CSR
/// structure: `C[i, k] = Σ_j A[i, j] · B[j, k]`.
#[must_use]
pub fn spmm_program(m: usize, n: usize, nnz: usize, feat: usize) -> SpProgram {
    let mut b = ProgramBuilder::new("spmm");
    b.dense_fixed("I", m);
    b.sparse_variable("J", "I", n, nnz, "J_indptr", "J_indices");
    b.dense_fixed("J_", n);
    b.dense_fixed("K", feat);
    let a = b.sparse_buffer("A", &["I", "J"], DType::F32);
    let bx = b.sparse_buffer("B", &["J_", "K"], DType::F32);
    let c = b.sparse_buffer("C", &["I", "K"], DType::F32);
    let (al, bl, cl) = (a.clone(), bx.clone(), c.clone());
    let axes = b.axes.clone();
    b.sp_iter("spmm", &["I", "J", "K"], "SRS", |vars| {
        let (i, j, k) = (&vars[0], &vars[1], &vars[2]);
        let init = vec![SpStore {
            buffer: cl.name.clone(),
            indices: vec![Expr::var(i), Expr::var(k)],
            value: Expr::f32(0.0),
        }];
        let body = vec![SpStore {
            buffer: cl.name.clone(),
            indices: vec![Expr::var(i), Expr::var(k)],
            value: cl.load(&axes, vec![Expr::var(i), Expr::var(k)])
                + al.load(&axes, vec![Expr::var(i), Expr::var(j)])
                    * bl.load(&axes, vec![Expr::var(j), Expr::var(k)]),
        }];
        (init, body)
    });
    b.finish()
}

/// Build the paper's SDDMM example for a concrete CSR structure:
/// `B[i, j] = A[i, j] · Σ_k X[i, k] · Y[k, j]` (§4.2.2).
#[must_use]
pub fn sddmm_program(m: usize, n: usize, nnz: usize, feat: usize) -> SpProgram {
    let mut b = ProgramBuilder::new("sddmm");
    b.dense_fixed("I", m);
    b.sparse_variable("J", "I", n, nnz, "J_indptr", "J_indices");
    b.dense_fixed("K", feat);
    b.dense_fixed("I_", m);
    b.dense_fixed("J_d", n);
    let a = b.sparse_buffer("A", &["I", "J"], DType::F32);
    let x = b.sparse_buffer("X", &["I_", "K"], DType::F32);
    let y = b.sparse_buffer("Y", &["K", "J_d"], DType::F32);
    let out = b.sparse_buffer("Bout", &["I", "J"], DType::F32);
    let axes = b.axes.clone();
    b.sp_iter("sddmm", &["I", "J", "K"], "SSR", |vars| {
        let (i, j, k) = (&vars[0], &vars[1], &vars[2]);
        let init = vec![SpStore {
            buffer: out.name.clone(),
            indices: vec![Expr::var(i), Expr::var(j)],
            value: Expr::f32(0.0),
        }];
        let body = vec![SpStore {
            buffer: out.name.clone(),
            indices: vec![Expr::var(i), Expr::var(j)],
            value: out.load(&axes, vec![Expr::var(i), Expr::var(j)])
                + a.load(&axes, vec![Expr::var(i), Expr::var(j)])
                    * x.load(&axes, vec![Expr::var(i), Expr::var(k)])
                    * y.load(&axes, vec![Expr::var(k), Expr::var(j)]),
        }];
        (init, body)
    });
    b.finish()
}

/// Build the *batched* (multi-head) SDDMM sharing one sparsity structure:
/// `Bout[i, j, h] = A[i, j] · Σ_k X[i, h, k] · Y[h, k, j]`.
///
/// This is the widened-launch form a serving engine folds same-adjacency
/// SDDMM requests into: the head axis `H` sits *inside* the sparse
/// `(I, J)` pair, so after `sparse_fuse` on `(I, J)` the per-non-zero
/// coordinate walk (binary-searched row recovery, index loads) is paid
/// once and shared by every head — the SDDMM analogue of column-stacking
/// an SpMM batch. With `heads = 1` the loop body degenerates to exactly
/// [`sddmm_program`]'s, so per-head results are bit-identical to
/// unbatched execution (same reduction order over `K`).
///
/// Operand layouts (row-major coordinate space): `X` is `(m, heads,
/// feat)` — each head's `X_h` occupies `feat` consecutive columns of an
/// `m × heads·feat` matrix; `Y` is `(heads, feat, n)` — the heads' `Y_h`
/// stacked row-wise; `Bout` is `(nnz, heads)` interleaved per non-zero.
#[must_use]
pub fn batched_sddmm_program(
    m: usize,
    n: usize,
    nnz: usize,
    heads: usize,
    feat: usize,
) -> SpProgram {
    let mut b = ProgramBuilder::new("sddmm");
    b.dense_fixed("I", m);
    b.sparse_variable("J", "I", n, nnz, "J_indptr", "J_indices");
    b.dense_fixed("H", heads);
    b.dense_fixed("K", feat);
    b.dense_fixed("I_", m);
    b.dense_fixed("J_d", n);
    let a = b.sparse_buffer("A", &["I", "J"], DType::F32);
    let x = b.sparse_buffer("X", &["I_", "H", "K"], DType::F32);
    let y = b.sparse_buffer("Y", &["H", "K", "J_d"], DType::F32);
    let out = b.sparse_buffer("Bout", &["I", "J", "H"], DType::F32);
    let axes = b.axes.clone();
    b.sp_iter("sddmm", &["I", "J", "H", "K"], "SSSR", |vars| {
        let (i, j, h, k) = (&vars[0], &vars[1], &vars[2], &vars[3]);
        let init = vec![SpStore {
            buffer: out.name.clone(),
            indices: vec![Expr::var(i), Expr::var(j), Expr::var(h)],
            value: Expr::f32(0.0),
        }];
        let body = vec![SpStore {
            buffer: out.name.clone(),
            indices: vec![Expr::var(i), Expr::var(j), Expr::var(h)],
            value: out.load(&axes, vec![Expr::var(i), Expr::var(j), Expr::var(h)])
                + a.load(&axes, vec![Expr::var(i), Expr::var(j)])
                    * x.load(&axes, vec![Expr::var(i), Expr::var(h), Expr::var(k)])
                    * y.load(&axes, vec![Expr::var(h), Expr::var(k), Expr::var(j)]),
        }];
        (init, body)
    });
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn spmm_script_matches_paper_shape() {
        let p = spmm_program(4, 4, 6, 2);
        let s = p.script();
        assert!(s.contains("sp_iter([I, J, K], \"SRS\", \"spmm\")"), "{s}");
        assert!(s.contains("match_sparse_buffer((I, J)"), "{s}");
        assert!(s.contains("with init():"), "{s}");
    }

    #[test]
    fn dense_reference_computes_spmm() {
        // A = [[1,0],[2,3]] (dense-bound), B = [[1,1],[10,10]]
        let p = spmm_program(2, 2, 3, 2);
        let f = p.to_dense_func();
        let mut tensors = HashMap::new();
        tensors.insert("A".to_string(), TensorData::from(vec![1.0, 0.0, 2.0, 3.0]));
        tensors.insert("B".to_string(), TensorData::from(vec![1.0, 1.0, 10.0, 10.0]));
        tensors.insert("C".to_string(), TensorData::zeros(DType::F32, 4));
        eval_func(&f, &HashMap::new(), &mut tensors).unwrap();
        assert_eq!(tensors["C"].as_f32(), &[1.0, 1.0, 32.0, 32.0]);
    }

    #[test]
    fn sddmm_dense_reference() {
        let p = sddmm_program(2, 2, 2, 2);
        let f = p.to_dense_func();
        let mut tensors = HashMap::new();
        // A pattern: [[1, 0], [0, 2]]
        tensors.insert("A".to_string(), TensorData::from(vec![1.0, 0.0, 0.0, 2.0]));
        tensors.insert("X".to_string(), TensorData::from(vec![1.0, 2.0, 3.0, 4.0]));
        tensors.insert("Y".to_string(), TensorData::from(vec![1.0, 0.0, 0.0, 1.0]));
        tensors.insert("Bout".to_string(), TensorData::zeros(DType::F32, 4));
        eval_func(&f, &HashMap::new(), &mut tensors).unwrap();
        // X·Y = [[1,2],[3,4]]; Bout = A ⊙ (X·Y) = [[1,0],[0,8]]
        assert_eq!(tensors["Bout"].as_f32(), &[1.0, 0.0, 0.0, 8.0]);
    }

    #[test]
    fn builder_panics_on_unregistered_axis() {
        let result = std::panic::catch_unwind(|| {
            let mut b = ProgramBuilder::new("bad");
            b.sp_iter("it", &["Z"], "S", |_| (vec![], vec![]));
        });
        assert!(result.is_err());
    }

    #[test]
    fn var_of_finds_iterator() {
        let p = spmm_program(2, 2, 2, 2);
        let it = p.iteration("spmm").unwrap();
        assert!(it.var_of("J").is_some());
        assert!(it.var_of("ZZ").is_none());
        assert_eq!(it.kind_string(), "SRS");
    }
}
