//! Horizontal fusion (§3.5): merge several thread-bound kernels into one
//! launch to amortize kernel-launch overhead — the backend pass SparseTIR
//! inserts because composable formats emit one kernel per sub-format.

use sparsetir_ir::prelude::*;
use std::fmt;

/// Error raised by horizontal fusion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HFuseError {
    message: String,
}

impl HFuseError {
    fn new(message: impl Into<String>) -> Self {
        HFuseError { message: message.into() }
    }
}

impl fmt::Display for HFuseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "horizontal fusion error: {}", self.message)
    }
}

impl std::error::Error for HFuseError {}

/// Fuse kernels whose outermost loop is bound to `blockIdx.x` with a
/// constant grid size. The fused kernel's grid is the sum of the input
/// grids; each input body runs in its grid-offset range (the standard
/// horizontal-fusion dispatch of Li et al., cited by the paper).
///
/// # Errors
/// Fails when an input lacks a constant-extent `blockIdx.x`-bound
/// outermost loop, or when same-named buffers disagree in shape/type.
pub fn horizontal_fuse(funcs: &[PrimFunc], name: &str) -> Result<PrimFunc, HFuseError> {
    if funcs.is_empty() {
        return Err(HFuseError::new("no kernels to fuse"));
    }
    fn unwrap_trivial_seq(s: &Stmt) -> &Stmt {
        match s {
            Stmt::Seq(v) if v.len() == 1 => unwrap_trivial_seq(&v[0]),
            _ => s,
        }
    }
    let mut pieces: Vec<(i64, Var, Stmt)> = Vec::new();
    for f in funcs {
        let Stmt::For { var, extent, kind: ForKind::ThreadBinding(ThreadAxis::BlockIdxX), body } =
            unwrap_trivial_seq(&f.body)
        else {
            return Err(HFuseError::new(format!(
                "kernel `{}` must have an outermost blockIdx.x-bound loop",
                f.name
            )));
        };
        let g = extent.as_const_int().ok_or_else(|| {
            HFuseError::new(format!("kernel `{}` grid extent is not constant", f.name))
        })?;
        pieces.push((g, var.clone(), body.as_ref().clone()));
    }
    let total: i64 = pieces.iter().map(|(g, _, _)| g).sum();
    let bx = Var::i32("bx_fused");
    let mut dispatch = Stmt::nop();
    let mut offset = 0i64;
    for (g, var, body) in pieces {
        let local = (Expr::var(&bx) - offset).simplify();
        let guarded = Stmt::IfThenElse {
            cond: Expr::var(&bx).ge(offset).and(Expr::var(&bx).lt(offset + g)),
            then_branch: Box::new(body.substitute(&var, &local)),
            else_branch: None,
        };
        dispatch = dispatch.then(guarded);
        offset += g;
    }
    let fused_body = Stmt::For {
        var: bx,
        extent: Expr::i32(total),
        kind: ForKind::ThreadBinding(ThreadAxis::BlockIdxX),
        body: Box::new(dispatch),
    };
    // Union of buffers by name; shapes must agree.
    let mut buffers: Vec<Buffer> = Vec::new();
    for f in funcs {
        for b in &f.buffers {
            match buffers.iter().find(|e| e.name == b.name) {
                Some(existing) if existing == b => {}
                Some(existing) => {
                    return Err(HFuseError::new(format!(
                        "buffer `{}` disagrees between kernels: {:?} vs {:?}",
                        b.name, existing.shape, b.shape
                    )))
                }
                None => buffers.push(b.clone()),
            }
        }
    }
    let mut params: Vec<Var> = Vec::new();
    for f in funcs {
        for p in &f.params {
            if !params.contains(p) {
                params.push(p.clone());
            }
        }
    }
    Ok(PrimFunc::new(name, params, buffers, fused_body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsetir_ir::eval::{eval_func, TensorData};
    use std::collections::HashMap;

    fn writer_kernel(name: &str, buf_name: &str, grid: i64, value: f32) -> PrimFunc {
        let b = Buffer::global_f32(buf_name, vec![Expr::i32(grid)]);
        let bx = Var::i32("bx");
        let body = Stmt::For {
            var: bx.clone(),
            extent: Expr::i32(grid),
            kind: ForKind::ThreadBinding(ThreadAxis::BlockIdxX),
            body: Box::new(Stmt::BufferStore {
                buffer: b.clone(),
                indices: vec![Expr::var(&bx)],
                value: Expr::f32(f64::from(value)),
            }),
        };
        PrimFunc::new(name, vec![], vec![b], body)
    }

    #[test]
    fn fused_kernel_runs_both_bodies() {
        let k1 = writer_kernel("k1", "U", 3, 1.0);
        let k2 = writer_kernel("k2", "V", 2, 2.0);
        let fused = horizontal_fuse(&[k1, k2], "fused").unwrap();
        // Grid = 5.
        match &fused.body {
            Stmt::For { extent, .. } => assert_eq!(extent.as_const_int(), Some(5)),
            other => panic!("unexpected {other:?}"),
        }
        let mut tensors = HashMap::new();
        tensors.insert("U".to_string(), TensorData::zeros(DType::F32, 3));
        tensors.insert("V".to_string(), TensorData::zeros(DType::F32, 2));
        eval_func(&fused, &HashMap::new(), &mut tensors).unwrap();
        assert_eq!(tensors["U"].as_f32(), &[1.0, 1.0, 1.0]);
        assert_eq!(tensors["V"].as_f32(), &[2.0, 2.0]);
    }

    #[test]
    fn rejects_unbound_kernels() {
        let i = Var::i32("i");
        let b = Buffer::global_f32("W", vec![Expr::i32(2)]);
        let f =
            PrimFunc::new("serial", vec![], vec![b.clone()], Stmt::for_serial(i, 2, Stmt::nop()));
        assert!(horizontal_fuse(&[f], "x").is_err());
    }

    #[test]
    fn rejects_conflicting_buffers() {
        let k1 = writer_kernel("k1", "U", 3, 1.0);
        let mut k2 = writer_kernel("k2", "U", 2, 2.0); // U with different shape (2 vs 3)
        k2.buffers[0].shape = vec![Expr::i32(2)];
        assert!(horizontal_fuse(&[k1, k2], "x").is_err());
    }

    #[test]
    fn empty_input_errors() {
        assert!(horizontal_fuse(&[], "x").is_err());
    }
}
