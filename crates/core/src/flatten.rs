//! Sparse buffer lowering — Stage II → Stage III (§3.4.1).
//!
//! Removes all sparse constructs: every multi-dimensional position-space
//! sparse buffer access is flattened to a 1-D offset via the
//! offset/stride recursion of eqs. 6–8, walking the buffer's axis forest
//! (`is_leaf`, `offset(i)`, `stride(i)` exactly as in the paper). The
//! result is a plain loop-level function interpretable by `sparsetir-ir`
//! and consumable by its code generator.

use crate::axis::{AxisKind, AxisStore};
use crate::lower::{lower_to_stage2, LowerError, Stage2Func};
use crate::stage1::{SpBuffer, SpProgram};
use sparsetir_ir::prelude::*;
use std::rc::Rc;

/// Flat storage size of a sparse buffer: the product of `nnz(Tree(root))`
/// over the roots of its axis forest.
#[must_use]
pub fn flat_size(axes: &AxisStore, buf: &SpBuffer) -> usize {
    let mut size = 1usize;
    for (i, axis_name) in buf.axes.iter().enumerate() {
        if is_root_in(axes, buf, i) {
            size *= axes.tree_positions(axis_name, &buf.axes);
        }
    }
    size
}

/// `A_i` has no parent among the buffer's earlier axes.
fn is_root_in(axes: &AxisStore, buf: &SpBuffer, i: usize) -> bool {
    let axis = axes.get(&buf.axes[i]).expect("axis registered");
    match &axis.parent {
        None => true,
        Some(p) => !buf.axes[..i].iter().any(|a| a == p),
    }
}

/// No later axis of the buffer depends on `A_i` (eq. 6's `is_leaf`).
fn is_leaf_in(axes: &AxisStore, buf: &SpBuffer, i: usize) -> bool {
    let name = &buf.axes[i];
    !buf.axes[i + 1..]
        .iter()
        .any(|a| axes.get(a).and_then(|ax| ax.parent.as_ref()).is_some_and(|p| p == name))
}

/// The flat offset expression for position indices `q` of buffer `buf`
/// (eq. 6: `Σ is_leaf(A_i) · offset(i) · stride(i+1)`).
///
/// # Errors
/// Fails when an axis is unregistered.
pub fn flatten_access(axes: &AxisStore, buf: &SpBuffer, q: &[Expr]) -> Result<Expr, LowerError> {
    let n = buf.axes.len();
    // stride(i+1) for each i (eq. 8), computed right-to-left.
    let mut stride_after = vec![1i64; n];
    let mut running = 1i64;
    for i in (0..n).rev() {
        stride_after[i] = running;
        let axis_name = &buf.axes[i];
        if is_root_in(axes, buf, i) {
            running *= axes.tree_positions(axis_name, &buf.axes) as i64;
        }
    }
    // offset(i) recursion (eq. 7).
    let mut offsets: Vec<Expr> = Vec::with_capacity(n);
    for (i, qi) in q.iter().enumerate().take(n) {
        let axis_name = &buf.axes[i];
        let axis = axes
            .get(axis_name)
            .ok_or_else(|| lower_err(format!("axis `{axis_name}` not registered")))?;
        let off = if is_root_in(axes, buf, i) {
            qi.clone()
        } else {
            let parent = axis.parent.as_ref().expect("non-root has parent");
            let j =
                buf.axes[..i].iter().position(|a| a == parent).expect("parent among earlier axes");
            let poff = offsets[j].clone();
            match axis.kind {
                AxisKind::DenseFixed => (poff * axis.length as i64 + q[i].clone()).simplify(),
                AxisKind::SparseFixed => {
                    (poff * axis.nnz_cols.unwrap_or(0) as i64 + q[i].clone()).simplify()
                }
                AxisKind::DenseVariable | AxisKind::SparseVariable => {
                    let parent_pos = axes.positions(parent);
                    let ip = Buffer::global_i32(
                        axis.indptr.clone().expect("variable axis has indptr"),
                        vec![Expr::i32(parent_pos as i64 + 1)],
                    );
                    (ip.load(vec![poff]) + q[i].clone()).simplify()
                }
            }
        };
        offsets.push(off);
    }
    // Sum over leaves.
    let mut flat = Expr::i32(0);
    for i in 0..n {
        if is_leaf_in(axes, buf, i) {
            flat = (flat + offsets[i].clone() * stride_after[i]).simplify();
        }
    }
    Ok(flat.simplify())
}

fn lower_err(msg: String) -> LowerError {
    LowerError::new(msg)
}

/// Flatten every sparse value buffer access in `stage2` (Stage III).
///
/// # Errors
/// Fails when an access arity disagrees with the buffer's axis count.
pub fn lower_to_stage3(program: &SpProgram, stage2: &Stage2Func) -> Result<PrimFunc, LowerError> {
    let axes = &program.axes;
    // New flat buffers.
    let mut flat_buffers: Vec<Buffer> = Vec::new();
    for b in &stage2.func.buffers {
        match program.buffer(&b.name) {
            Some(sb) => {
                let size = flat_size(axes, sb);
                flat_buffers.push(Buffer::new(
                    b.name.clone(),
                    b.dtype,
                    vec![Expr::i32(size as i64)],
                    b.scope,
                ));
            }
            None => flat_buffers.push(b.clone()),
        }
    }
    let body = rewrite_stmt(program, &stage2.func.body)?;
    Ok(PrimFunc::new(stage2.func.name.clone(), stage2.func.params.clone(), flat_buffers, body))
}

/// Lower a Stage I program all the way to an interpretable Stage III
/// function (`lower_to_stage2` ∘ `lower_to_stage3`).
///
/// # Errors
/// Propagates errors from both passes.
pub fn lower(program: &SpProgram) -> Result<PrimFunc, LowerError> {
    let s2 = lower_to_stage2(program)?;
    lower_to_stage3(program, &s2)
}

fn rewrite_stmt(program: &SpProgram, s: &Stmt) -> Result<Stmt, LowerError> {
    Ok(match s {
        Stmt::For { var, extent, kind, body } => Stmt::For {
            var: var.clone(),
            extent: rewrite_expr(program, extent)?,
            kind: *kind,
            body: Box::new(rewrite_stmt(program, body)?),
        },
        Stmt::Block(b) => {
            let iter_vars = b
                .iter_vars
                .iter()
                .map(|iv| {
                    Ok(IterVar {
                        var: iv.var.clone(),
                        kind: iv.kind,
                        binding: rewrite_expr(program, &iv.binding)?,
                    })
                })
                .collect::<Result<_, LowerError>>()?;
            Stmt::Block(Block {
                name: b.name.clone(),
                iter_vars,
                reads: b.reads.clone(),
                writes: b.writes.clone(),
                init: match &b.init {
                    Some(i) => Some(Box::new(rewrite_stmt(program, i)?)),
                    None => None,
                },
                body: Box::new(rewrite_stmt(program, &b.body)?),
            })
        }
        Stmt::BufferStore { buffer, indices, value } => {
            let value = rewrite_expr(program, value)?;
            match program.buffer(&buffer.name) {
                Some(sb) => {
                    let q: Vec<Expr> = indices
                        .iter()
                        .map(|i| rewrite_expr(program, i))
                        .collect::<Result<_, _>>()?;
                    let flat = flatten_access(&program.axes, sb, &q)?;
                    let size = flat_size(&program.axes, sb);
                    let nb = Buffer::new(
                        buffer.name.clone(),
                        buffer.dtype,
                        vec![Expr::i32(size as i64)],
                        buffer.scope,
                    );
                    Stmt::BufferStore { buffer: nb, indices: vec![flat], value }
                }
                None => Stmt::BufferStore {
                    buffer: buffer.clone(),
                    indices: indices
                        .iter()
                        .map(|i| rewrite_expr(program, i))
                        .collect::<Result<_, _>>()?,
                    value,
                },
            }
        }
        Stmt::Seq(v) => {
            Stmt::Seq(v.iter().map(|s| rewrite_stmt(program, s)).collect::<Result<_, _>>()?)
        }
        Stmt::IfThenElse { cond, then_branch, else_branch } => Stmt::IfThenElse {
            cond: rewrite_expr(program, cond)?,
            then_branch: Box::new(rewrite_stmt(program, then_branch)?),
            else_branch: match else_branch {
                Some(e) => Some(Box::new(rewrite_stmt(program, e)?)),
                None => None,
            },
        },
        Stmt::Let { var, value, body } => Stmt::Let {
            var: var.clone(),
            value: rewrite_expr(program, value)?,
            body: Box::new(rewrite_stmt(program, body)?),
        },
        Stmt::Allocate { buffer, body } => {
            Stmt::Allocate { buffer: buffer.clone(), body: Box::new(rewrite_stmt(program, body)?) }
        }
        Stmt::Evaluate(e) => Stmt::Evaluate(rewrite_expr(program, e)?),
        Stmt::MmaSync { .. } => s.clone(),
    })
}

fn rewrite_expr(program: &SpProgram, e: &Expr) -> Result<Expr, LowerError> {
    Ok(match e {
        Expr::BufferLoad { buffer, indices } => {
            let idx: Vec<Expr> =
                indices.iter().map(|i| rewrite_expr(program, i)).collect::<Result<_, _>>()?;
            match program.buffer(&buffer.name) {
                Some(sb) => {
                    let flat = flatten_access(&program.axes, sb, &idx)?;
                    let size = flat_size(&program.axes, sb);
                    let nb = Buffer::new(
                        buffer.name.clone(),
                        buffer.dtype,
                        vec![Expr::i32(size as i64)],
                        buffer.scope,
                    );
                    nb.load(vec![flat])
                }
                None => Expr::BufferLoad { buffer: buffer.clone(), indices: idx },
            }
        }
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: *op,
            lhs: Box::new(rewrite_expr(program, lhs)?),
            rhs: Box::new(rewrite_expr(program, rhs)?),
        },
        Expr::Select { cond, then, otherwise } => Expr::Select {
            cond: Box::new(rewrite_expr(program, cond)?),
            then: Box::new(rewrite_expr(program, then)?),
            otherwise: Box::new(rewrite_expr(program, otherwise)?),
        },
        Expr::Cast { dtype, value } => {
            Expr::Cast { dtype: *dtype, value: Box::new(rewrite_expr(program, value)?) }
        }
        Expr::Call { intrin, args } => Expr::Call {
            intrin: *intrin,
            args: args.iter().map(|a| rewrite_expr(program, a)).collect::<Result<_, _>>()?,
        },
        _ => e.clone(),
    })
}

/// Names of auxiliary buffers (indptr/indices) referenced by a program.
#[must_use]
pub fn aux_buffer_names(program: &SpProgram) -> Vec<Rc<str>> {
    let mut out: Vec<Rc<str>> = Vec::new();
    for axis in program.axes.all() {
        for name in [&axis.indptr, &axis.indices].into_iter().flatten() {
            if !out.contains(name) {
                out.push(name.clone());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axis::Axis;
    use crate::stage1::spmm_program;

    fn csr_axes_store() -> (AxisStore, SpBuffer) {
        let mut axes = AxisStore::new();
        axes.add(Axis::dense_fixed("I", 4));
        axes.add(Axis::sparse_variable("J", "I", 8, 10, "J_indptr", "J_indices"));
        let buf =
            SpBuffer { name: "A".into(), axes: vec!["I".into(), "J".into()], dtype: DType::F32 };
        (axes, buf)
    }

    #[test]
    fn csr_flattening_matches_figure10() {
        // A[i, j] → A[J_indptr[i] + j]
        let (axes, buf) = csr_axes_store();
        let i = Var::i32("i");
        let j = Var::i32("j");
        let flat = flatten_access(&axes, &buf, &[Expr::var(&i), Expr::var(&j)]).unwrap();
        let txt = print_expr(&flat);
        assert_eq!(txt, "(J_indptr[i] + j)");
        assert_eq!(flat_size(&axes, &buf), 10);
    }

    #[test]
    fn dense_2d_flattening_is_row_major() {
        let mut axes = AxisStore::new();
        axes.add(Axis::dense_fixed("J_", 8));
        axes.add(Axis::dense_fixed("K", 3));
        let buf =
            SpBuffer { name: "B".into(), axes: vec!["J_".into(), "K".into()], dtype: DType::F32 };
        let j = Var::i32("j");
        let k = Var::i32("k");
        let flat = flatten_access(&axes, &buf, &[Expr::var(&j), Expr::var(&k)]).unwrap();
        assert_eq!(print_expr(&flat), "((j * 3) + k)");
        assert_eq!(flat_size(&axes, &buf), 24);
    }

    #[test]
    fn bsr_flattening_matches_equation6() {
        // A_bsr axes (IO, JO, II, JI), block 2:
        // flat = (indptr[io] + jo)·4 + ii·2 + ji
        let mut axes = AxisStore::new();
        axes.add(Axis::dense_fixed("IO", 3));
        axes.add(Axis::sparse_variable("JO", "IO", 3, 5, "bsr_indptr", "bsr_indices"));
        axes.add(Axis::dense_fixed("II", 2));
        axes.add(Axis::dense_fixed("JI", 2));
        let buf = SpBuffer {
            name: "A_bsr".into(),
            axes: vec!["IO".into(), "JO".into(), "II".into(), "JI".into()],
            dtype: DType::F32,
        };
        let vars: Vec<Expr> =
            ["io", "jo", "ii", "ji"].iter().map(|n| Expr::var(&Var::i32(*n))).collect();
        let flat = flatten_access(&axes, &buf, &vars).unwrap();
        let txt = print_expr(&flat);
        assert!(txt.contains("bsr_indptr[io]"), "{txt}");
        assert!(txt.contains("* 4"), "{txt}");
        assert_eq!(flat_size(&axes, &buf), 20); // 5 blocks × 4
    }

    #[test]
    fn ell_flattening_uses_width_stride() {
        let mut axes = AxisStore::new();
        axes.add(Axis::dense_fixed("I2", 6));
        let mut jb = Axis::sparse_fixed("J2", "I2", 8, 2, "ell_indices");
        jb.nnz = 12;
        axes.add(jb);
        let buf = SpBuffer {
            name: "A_ell".into(),
            axes: vec!["I2".into(), "J2".into()],
            dtype: DType::F32,
        };
        let i = Var::i32("i");
        let j = Var::i32("j");
        let flat = flatten_access(&axes, &buf, &[Expr::var(&i), Expr::var(&j)]).unwrap();
        assert_eq!(print_expr(&flat), "((i * 2) + j)");
        assert_eq!(flat_size(&axes, &buf), 12);
    }

    #[test]
    fn stage3_spmm_has_only_flat_buffers() {
        let p = spmm_program(4, 5, 7, 3);
        let f = lower(&p).unwrap();
        for b in &f.buffers {
            assert_eq!(b.ndim(), 1, "buffer {} not flat", b.name);
        }
        let txt = print_func(&f);
        // A accessed at flat position indptr[row] + local (Figure 10); the
        // row index is the block variable bound to the I coordinate.
        assert!(txt.contains("A[(J_indptr[v_i] + j)]"), "{txt}");
        // B indexed by the J *coordinate* (block var bound to the indices
        // load) times the feature stride.
        assert!(txt.contains("B[((v_j * 3) + v_k)]"), "{txt}");
        assert!(txt.contains("J_indices[(J_indptr[i] + j)]"), "{txt}");
    }

    #[test]
    fn aux_names_are_collected() {
        let p = spmm_program(4, 5, 7, 3);
        let names = aux_buffer_names(&p);
        let as_str: Vec<&str> = names.iter().map(|n| &**n).collect();
        assert_eq!(as_str, vec!["J_indptr", "J_indices"]);
    }
}
