//! Axes — the format-describing dimension objects of SparseTIR (§3.1).
//!
//! Each axis carries two orthogonal attributes: **dense/sparse** (are the
//! non-zero coordinates contiguous?) and **fixed/variable** (is the per-row
//! non-zero count constant?), plus a `parent` link forming the axis
//! dependency tree that coordinate translation (eqs. 1–5) and buffer
//! flattening (eqs. 6–8) walk.

use std::fmt;
use std::rc::Rc;

/// The 2×2 classification of axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AxisKind {
    /// Contiguous coordinates, fixed length (a plain dense dimension).
    DenseFixed,
    /// Contiguous coordinates, per-parent variable length (ragged rows);
    /// carries `indptr`.
    DenseVariable,
    /// Non-contiguous coordinates, fixed count per parent (ELL rows);
    /// carries `indices`.
    SparseFixed,
    /// Non-contiguous coordinates, variable count per parent (CSR rows);
    /// carries `indptr` and `indices`.
    SparseVariable,
}

impl AxisKind {
    /// Axis stores an `indices` array (non-contiguous coordinates).
    #[must_use]
    pub fn is_sparse(self) -> bool {
        matches!(self, AxisKind::SparseFixed | AxisKind::SparseVariable)
    }

    /// Axis stores an `indptr` array (variable per-parent count).
    #[must_use]
    pub fn is_variable(self) -> bool {
        matches!(self, AxisKind::DenseVariable | AxisKind::SparseVariable)
    }
}

/// An axis of the sparse iteration space / sparse buffer layout.
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    /// Unique name within a program.
    pub name: Rc<str>,
    /// dense/sparse × fixed/variable classification.
    pub kind: AxisKind,
    /// Parent axis in the dependency tree (`None` for roots).
    pub parent: Option<Rc<str>>,
    /// Coordinate-space extent (the `n` of the paper's metadata).
    pub length: usize,
    /// Total accumulated non-zeros over all parent positions
    /// (variable axes; equals `parent positions × nnz_cols` for fixed).
    pub nnz: usize,
    /// Per-parent non-zero count (fixed axes only).
    pub nnz_cols: Option<usize>,
    /// Buffer name of the index-pointer array (variable axes).
    pub indptr: Option<Rc<str>>,
    /// Buffer name of the indices array (sparse axes).
    pub indices: Option<Rc<str>>,
}

impl Axis {
    /// `dense_fixed(length)` — no parent, no auxiliary arrays.
    pub fn dense_fixed(name: impl Into<Rc<str>>, length: usize) -> Axis {
        Axis {
            name: name.into(),
            kind: AxisKind::DenseFixed,
            parent: None,
            length,
            nnz: length,
            nnz_cols: None,
            indptr: None,
            indices: None,
        }
    }

    /// `dense_variable(parent, (length, nnz), indptr)`.
    pub fn dense_variable(
        name: impl Into<Rc<str>>,
        parent: impl Into<Rc<str>>,
        length: usize,
        nnz: usize,
        indptr: impl Into<Rc<str>>,
    ) -> Axis {
        Axis {
            name: name.into(),
            kind: AxisKind::DenseVariable,
            parent: Some(parent.into()),
            length,
            nnz,
            nnz_cols: None,
            indptr: Some(indptr.into()),
            indices: None,
        }
    }

    /// `sparse_fixed(parent, (length, nnz_cols), indices)`.
    pub fn sparse_fixed(
        name: impl Into<Rc<str>>,
        parent: impl Into<Rc<str>>,
        length: usize,
        nnz_cols: usize,
        indices: impl Into<Rc<str>>,
    ) -> Axis {
        Axis {
            name: name.into(),
            kind: AxisKind::SparseFixed,
            parent: Some(parent.into()),
            length,
            nnz: 0, // filled by the program once the parent extent is known
            nnz_cols: Some(nnz_cols),
            indptr: None,
            indices: Some(indices.into()),
        }
    }

    /// `sparse_variable(parent, (length, nnz), (indptr, indices))`.
    pub fn sparse_variable(
        name: impl Into<Rc<str>>,
        parent: impl Into<Rc<str>>,
        length: usize,
        nnz: usize,
        indptr: impl Into<Rc<str>>,
        indices: impl Into<Rc<str>>,
    ) -> Axis {
        Axis {
            name: name.into(),
            kind: AxisKind::SparseVariable,
            parent: Some(parent.into()),
            length,
            nnz,
            nnz_cols: None,
            indptr: Some(indptr.into()),
            indices: Some(indices.into()),
        }
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            AxisKind::DenseFixed => "dense_fixed",
            AxisKind::DenseVariable => "dense_variable",
            AxisKind::SparseFixed => "sparse_fixed",
            AxisKind::SparseVariable => "sparse_variable",
        };
        write!(f, "{} = {kind}(len={}", self.name, self.length)?;
        if let Some(p) = &self.parent {
            write!(f, ", parent={p}")?;
        }
        if let Some(w) = self.nnz_cols {
            write!(f, ", nnz_cols={w}")?;
        }
        if self.kind.is_variable() {
            write!(f, ", nnz={}", self.nnz)?;
        }
        write!(f, ")")
    }
}

/// A set of axes forming the dependency forest of one program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AxisStore {
    axes: Vec<Axis>,
}

impl AxisStore {
    /// Empty store.
    #[must_use]
    pub fn new() -> AxisStore {
        AxisStore::default()
    }

    /// Register an axis; replaces any axis of the same name.
    pub fn add(&mut self, axis: Axis) {
        if let Some(existing) = self.axes.iter_mut().find(|a| a.name == axis.name) {
            *existing = axis;
        } else {
            self.axes.push(axis);
        }
    }

    /// Look up by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Axis> {
        self.axes.iter().find(|a| &*a.name == name)
    }

    /// All registered axes.
    #[must_use]
    pub fn all(&self) -> &[Axis] {
        &self.axes
    }

    /// `anc(A, i)` of eq. 5: ancestor chain (root → … → self) by name.
    ///
    /// # Panics
    /// Panics when a parent link names an unregistered axis (construction
    /// bug, not a runtime condition).
    #[must_use]
    pub fn ancestors(&self, name: &str) -> Vec<Rc<str>> {
        let mut chain = Vec::new();
        let mut cur = self.get(name).map(|a| a.name.clone());
        while let Some(n) = cur {
            chain.push(n.clone());
            let axis = self.get(&n).expect("axis registered");
            cur = axis.parent.clone();
        }
        chain.reverse();
        chain
    }

    /// Number of *positions* (stored slots) of an axis: `nnz` for variable
    /// axes, `parent positions × nnz_cols` for fixed-with-parent, `length`
    /// for roots.
    #[must_use]
    pub fn positions(&self, name: &str) -> usize {
        let Some(axis) = self.get(name) else { return 0 };
        match axis.kind {
            AxisKind::DenseFixed => match &axis.parent {
                Some(p) => self.positions(p) * axis.length,
                None => axis.length,
            },
            AxisKind::SparseFixed => {
                let w = axis.nnz_cols.unwrap_or(0);
                match &axis.parent {
                    Some(p) => self.positions(p) * w,
                    None => w,
                }
            }
            AxisKind::DenseVariable | AxisKind::SparseVariable => axis.nnz,
        }
    }

    /// Positions of the subtree rooted at `name`, restricted to a buffer's
    /// axis list — the `nnz(Tree(A_i))` of eq. 8.
    #[must_use]
    pub fn tree_positions(&self, name: &str, within: &[Rc<str>]) -> usize {
        // Find the deepest descendant of `name` within the list; its
        // positions count the whole chain.
        let mut best = name.to_string();
        let mut changed = true;
        while changed {
            changed = false;
            for cand in within {
                if let Some(a) = self.get(cand) {
                    if a.parent.as_deref() == Some(best.as_str()) {
                        best = cand.to_string();
                        changed = true;
                    }
                }
            }
        }
        self.positions(&best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn csr_axes() -> AxisStore {
        let mut s = AxisStore::new();
        s.add(Axis::dense_fixed("I", 4));
        s.add(Axis::sparse_variable("J", "I", 8, 10, "J_indptr", "J_indices"));
        s
    }

    #[test]
    fn ancestors_walks_to_root() {
        let s = csr_axes();
        let chain = s.ancestors("J");
        assert_eq!(chain.iter().map(|c| &**c).collect::<Vec<_>>(), vec!["I", "J"]);
        assert_eq!(s.ancestors("I").len(), 1);
    }

    #[test]
    fn positions_of_each_kind() {
        let mut s = csr_axes();
        assert_eq!(s.positions("I"), 4);
        assert_eq!(s.positions("J"), 10);
        s.add(Axis::sparse_fixed("E", "I", 8, 2, "E_indices"));
        assert_eq!(s.positions("E"), 8); // 4 parents × 2
        let mut ii = Axis::dense_fixed("II", 2);
        ii.parent = None;
        s.add(ii);
        assert_eq!(s.positions("II"), 2);
    }

    #[test]
    fn tree_positions_follows_chain() {
        let s = csr_axes();
        let within: Vec<Rc<str>> = vec!["I".into(), "J".into()];
        assert_eq!(s.tree_positions("I", &within), 10); // chain I→J has nnz 10
        assert_eq!(s.tree_positions("J", &within), 10);
        let only_i: Vec<Rc<str>> = vec!["I".into()];
        assert_eq!(s.tree_positions("I", &only_i), 4);
    }

    #[test]
    fn kind_predicates() {
        assert!(AxisKind::SparseVariable.is_sparse());
        assert!(AxisKind::SparseVariable.is_variable());
        assert!(!AxisKind::DenseFixed.is_sparse());
        assert!(AxisKind::DenseVariable.is_variable());
        assert!(AxisKind::SparseFixed.is_sparse());
        assert!(!AxisKind::SparseFixed.is_variable());
    }

    #[test]
    fn add_replaces_same_name() {
        let mut s = csr_axes();
        s.add(Axis::dense_fixed("I", 99));
        assert_eq!(s.get("I").unwrap().length, 99);
        assert_eq!(s.all().len(), 2);
    }

    #[test]
    fn display_formats() {
        let s = csr_axes();
        let txt = s.get("J").unwrap().to_string();
        assert!(txt.contains("sparse_variable"), "{txt}");
        assert!(txt.contains("parent=I"), "{txt}");
    }
}
