//! Sparse iteration lowering — Stage I → Stage II (§3.3.1).
//!
//! Implements the paper's four steps:
//! 1. **Auxiliary buffer materialization** — `indptr`/`indices` handles
//!    become explicit flat `int32` buffers, with value-domain hints.
//! 2. **Nested loop generation** — one loop per axis (or per fused group),
//!    loops normalized to start at 0 (Figure 8/9), separated by blocks.
//! 3. **Coordinate translation** — buffer accesses move from coordinate
//!    space to position space via the decompress/compress functions of
//!    eqs. 1–5; the compress `f⁻¹` fast-path reuses the loop position when
//!    the index expression *is* the matching iterator, and otherwise emits
//!    a `binary_search` over the sorted indices segment (eq. 4's `find`).
//! 4. **Read/write region analysis** — point regions of every access are
//!    attached to the generated block.
//!
//! One deviation from Figure 5's presentation: when a program contains
//! multiple accumulating iterations over the same output (the result of
//! format decomposition), `init` clauses are hoisted into a dedicated
//! zero-fill iteration by [`crate::rewrite::decompose_format`] rather than
//! replicated per format — replicating them would re-zero the output
//! between partial kernels. This matches what the released SparseTIR
//! artifact does with a separate memset before the fused kernels.

use crate::axis::{AxisKind, AxisStore};
use crate::stage1::{SpIter, SpProgram, SpStore};
use sparsetir_ir::prelude::*;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::rc::Rc;

/// Error raised during lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    message: String,
}

impl LowerError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        LowerError { message: message.into() }
    }
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lowering error: {}", self.message)
    }
}

impl std::error::Error for LowerError {}

/// Value-domain hint for an auxiliary buffer (`assume_buffer_domain`),
/// recorded for integer-set analysis during Stage II scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferDomain {
    /// Auxiliary buffer name.
    pub buffer: String,
    /// Inclusive lower bound of stored values.
    pub lo: i64,
    /// Inclusive upper bound of stored values.
    pub hi: i64,
}

/// Result of Stage I → Stage II lowering.
#[derive(Debug, Clone)]
pub struct Stage2Func {
    /// The position-space function (multi-dimensional sparse buffer
    /// accesses; interpretable only after Stage III flattening).
    pub func: PrimFunc,
    /// Domain hints from auxiliary buffer materialization.
    pub domains: Vec<BufferDomain>,
}

/// Per-axis lowering state within one iteration.
struct AxisState {
    /// Loop variable holding the *local* position (within parent row).
    local: Expr,
    /// Flat position into the axis' position space.
    flat: Expr,
    /// Coordinate expression.
    coord: Expr,
}

/// Lower every sparse iteration of `program` to a single Stage II function.
///
/// # Errors
/// Fails when an iterated variable axis' parent is not itself iterated
/// earlier, or on unsupported fusion group shapes.
pub fn lower_to_stage2(program: &SpProgram) -> Result<Stage2Func, LowerError> {
    let mut used_names: HashSet<String> = HashSet::new();
    let mut domains = Vec::new();
    let mut aux: Vec<Buffer> = Vec::new();
    let mut aux_seen: HashSet<String> = HashSet::new();

    // Step 1: auxiliary buffer materialization.
    for axis in program.axes.all() {
        if let Some(indptr) = &axis.indptr {
            if aux_seen.insert(indptr.to_string()) {
                let parent_pos = axis.parent.as_ref().map_or(1, |p| program.axes.positions(p));
                aux.push(Buffer::global_i32(
                    indptr.clone(),
                    vec![Expr::i32(parent_pos as i64 + 1)],
                ));
                domains.push(BufferDomain {
                    buffer: indptr.to_string(),
                    lo: 0,
                    hi: axis.nnz as i64,
                });
            }
        }
        if let Some(indices) = &axis.indices {
            if aux_seen.insert(indices.to_string()) {
                let positions = program.axes.positions(&axis.name);
                aux.push(Buffer::global_i32(indices.clone(), vec![Expr::i32(positions as i64)]));
                domains.push(BufferDomain {
                    buffer: indices.to_string(),
                    lo: 0,
                    hi: axis.length as i64 - 1,
                });
            }
        }
    }

    let mut body = Stmt::nop();
    for it in &program.iterations {
        let stmt = lower_iteration(program, it, &mut used_names)?;
        body = body.then(stmt);
    }

    let mut buffers: Vec<Buffer> =
        program.buffers.iter().map(|b| b.coord_buffer(&program.axes)).collect();
    buffers.extend(program.extras.iter().cloned());
    buffers.extend(aux);
    Ok(Stage2Func { func: PrimFunc::new(program.name.clone(), vec![], buffers, body), domains })
}

fn fresh(used: &mut HashSet<String>, base: &str) -> String {
    if used.insert(base.to_string()) {
        return base.to_string();
    }
    for i in 0.. {
        let cand = format!("{base}_{i}");
        if used.insert(cand.clone()) {
            return cand;
        }
    }
    unreachable!()
}

fn indptr_buf(axes: &AxisStore, axis: &str) -> Buffer {
    let a = axes.get(axis).expect("axis registered");
    let parent_pos = a.parent.as_ref().map_or(1, |p| axes.positions(p));
    Buffer::global_i32(
        a.indptr.clone().expect("variable axis has indptr"),
        vec![Expr::i32(parent_pos as i64 + 1)],
    )
}

fn indices_buf(axes: &AxisStore, axis: &str) -> Buffer {
    let a = axes.get(axis).expect("axis registered");
    Buffer::global_i32(
        a.indices.clone().expect("sparse axis has indices"),
        vec![Expr::i32(axes.positions(axis) as i64)],
    )
}

/// Lower one sparse iteration: loop generation + coordinate translation +
/// region analysis, producing loops around a single block.
fn lower_iteration(
    program: &SpProgram,
    it: &SpIter,
    used: &mut HashSet<String>,
) -> Result<Stmt, LowerError> {
    let axes = &program.axes;
    // Loop structure description, built group by group (outer → inner).
    enum LoopDesc {
        Plain {
            var: Var,
            extent: Expr,
        },
        /// Fused [parent, variable child]: loop over total nnz with
        /// binary-search row recovery.
        FusedNnz {
            var: Var,
            extent: Expr,
            row: Var,
            local: Var,
            child: Rc<str>,
        },
    }
    let mut loops: Vec<LoopDesc> = Vec::new();
    let mut state: HashMap<Rc<str>, AxisState> = HashMap::new();

    for group in &it.fuse_groups {
        if group.len() == 1 {
            let idx = group[0];
            let axis_name = &it.axes[idx];
            let axis = axes
                .get(axis_name)
                .ok_or_else(|| LowerError::new(format!("axis `{axis_name}` not registered")))?;
            let lv = Var::i32(fresh(used, &axis_name.to_lowercase()));
            let local = Expr::var(&lv);
            let (extent, flat, coord) = match axis.kind {
                AxisKind::DenseFixed => {
                    let flat = match &axis.parent {
                        Some(p) => match state.get(p.as_ref()) {
                            Some(ps) => {
                                (ps.flat.clone() * axis.length as i64 + local.clone()).simplify()
                            }
                            None => local.clone(),
                        },
                        None => local.clone(),
                    };
                    (Expr::i32(axis.length as i64), flat, local.clone())
                }
                AxisKind::SparseFixed => {
                    let w = axis.nnz_cols.unwrap_or(0) as i64;
                    let parent = axis.parent.as_ref().expect("sparse_fixed has parent");
                    let ps = state.get(parent.as_ref()).ok_or_else(|| {
                        LowerError::new(format!(
                            "axis `{axis_name}` iterated before its parent `{parent}`"
                        ))
                    })?;
                    let flat = (ps.flat.clone() * w + local.clone()).simplify();
                    let coord = indices_buf(axes, axis_name).load(vec![flat.clone()]);
                    (Expr::i32(w), flat, coord)
                }
                AxisKind::DenseVariable | AxisKind::SparseVariable => {
                    let parent = axis.parent.as_ref().expect("variable axis has parent");
                    let ps = state.get(parent.as_ref()).ok_or_else(|| {
                        LowerError::new(format!(
                            "axis `{axis_name}` iterated before its parent `{parent}`"
                        ))
                    })?;
                    let ip = indptr_buf(axes, axis_name);
                    let start = ip.load(vec![ps.flat.clone()]);
                    let stop = ip.load(vec![(ps.flat.clone() + 1).simplify()]);
                    let extent = stop - start.clone();
                    let flat = (start + local.clone()).simplify();
                    let coord = if axis.kind == AxisKind::SparseVariable {
                        indices_buf(axes, axis_name).load(vec![flat.clone()])
                    } else {
                        local.clone()
                    };
                    (extent, flat, coord)
                }
            };
            loops.push(LoopDesc::Plain { var: lv, extent });
            state.insert(axis_name.clone(), AxisState { local, flat, coord });
        } else if group.len() == 2 {
            // Fused [parent, variable child] (the sparse_fuse of SDDMM) or
            // a dense-fixed pair.
            let pa = &it.axes[group[0]];
            let ca = &it.axes[group[1]];
            let parent = axes
                .get(pa)
                .ok_or_else(|| LowerError::new(format!("axis `{pa}` not registered")))?;
            let child = axes
                .get(ca)
                .ok_or_else(|| LowerError::new(format!("axis `{ca}` not registered")))?;
            if child.kind.is_variable() && child.parent.as_deref() == Some(&**pa) {
                let f =
                    Var::i32(fresh(used, &format!("{}{}", pa.to_lowercase(), ca.to_lowercase())));
                let row = Var::i32(fresh(used, &format!("{}_row", pa.to_lowercase())));
                let local = Var::i32(fresh(used, &format!("{}_loc", ca.to_lowercase())));
                let extent = Expr::i32(child.nnz as i64);
                let coord_p = Expr::var(&row);
                let coord_c = if child.kind.is_sparse() {
                    indices_buf(axes, ca).load(vec![Expr::var(&f)])
                } else {
                    Expr::var(&local)
                };
                state.insert(
                    pa.clone(),
                    AxisState { local: Expr::var(&row), flat: Expr::var(&row), coord: coord_p },
                );
                state.insert(
                    ca.clone(),
                    AxisState { local: Expr::var(&local), flat: Expr::var(&f), coord: coord_c },
                );
                loops.push(LoopDesc::FusedNnz { var: f, extent, row, local, child: ca.clone() });
            } else if parent.kind == AxisKind::DenseFixed && child.kind == AxisKind::DenseFixed {
                let f =
                    Var::i32(fresh(used, &format!("{}{}", pa.to_lowercase(), ca.to_lowercase())));
                let pl = child.length as i64;
                let pv = (Expr::var(&f) / pl).simplify();
                let cv = (Expr::var(&f) % pl).simplify();
                state.insert(
                    pa.clone(),
                    AxisState { local: pv.clone(), flat: pv.clone(), coord: pv },
                );
                state.insert(
                    ca.clone(),
                    AxisState { local: cv.clone(), flat: cv.clone(), coord: cv },
                );
                loops
                    .push(LoopDesc::Plain { var: f, extent: Expr::i32(parent.length as i64 * pl) });
            } else {
                return Err(LowerError::new(format!("unsupported fusion group [{pa}, {ca}]")));
            }
        } else {
            return Err(LowerError::new("fusion groups of >2 axes are not supported"));
        }
    }

    // Step 3: coordinate translation of the body.
    let translate_store = |st: &SpStore| -> Result<Stmt, LowerError> {
        let value = translate_expr(program, it, &state, &st.value)?;
        let buf = program
            .buffer(&st.buffer)
            .ok_or_else(|| LowerError::new(format!("unknown buffer `{}`", st.buffer)))?;
        let indices = translate_indices(program, it, &state, buf, &st.indices)?;
        Ok(Stmt::BufferStore { buffer: buf.coord_buffer(axes), indices, value })
    };
    let mut body_stmt = Stmt::nop();
    for st in &it.body {
        body_stmt = body_stmt.then(translate_store(st)?);
    }
    let init_stmt = if it.init.is_empty() {
        None
    } else {
        let mut s = Stmt::nop();
        for st in &it.init {
            s = s.then(translate_store(st)?);
        }
        Some(Box::new(s))
    };

    // Block iterator variables: stage I vars bound to coordinates (for the
    // body) plus, per reduction axis, a position-bound reduce var driving
    // the init predicate.
    let mut iter_vars: Vec<IterVar> = Vec::new();
    for (i, axis_name) in it.axes.iter().enumerate() {
        let st = &state[axis_name];
        iter_vars.push(IterVar {
            var: it.vars[i].clone(),
            kind: IterKind::Spatial,
            binding: st.coord.clone(),
        });
        if it.kinds[i] == IterKind::Reduce {
            iter_vars.push(IterVar {
                var: Var::i32(format!("{}_pos", it.vars[i].name)),
                kind: IterKind::Reduce,
                binding: st.local.clone(),
            });
        }
    }

    // Step 4: read/write region analysis.
    let mut reads: Vec<BufferRegion> = Vec::new();
    let mut writes: Vec<BufferRegion> = Vec::new();
    let collect_stmt = |s: &Stmt, reads: &mut Vec<BufferRegion>, writes: &mut Vec<BufferRegion>| {
        s.walk(&mut |st| {
            if let Stmt::BufferStore { buffer, indices, value } = st {
                writes.push(BufferRegion::point(buffer, indices));
                let mut add_reads = |e: &Expr| {
                    collect_load_regions(e, reads);
                };
                add_reads(value);
                for i in indices {
                    collect_load_regions(i, reads);
                }
            }
        });
    };
    collect_stmt(&body_stmt, &mut reads, &mut writes);

    let block = Stmt::Block(Block {
        name: it.name.clone(),
        iter_vars,
        reads,
        writes,
        init: init_stmt,
        body: Box::new(body_stmt),
    });

    // Step 2 (finish): wrap the block in the generated loops, inner → outer,
    // emitting one boundary block per loop level as in Figure 8.
    let mut stmt = block;
    for (level, desc) in loops.iter().enumerate().rev() {
        match desc {
            LoopDesc::Plain { var, extent } => {
                stmt = Stmt::For {
                    var: var.clone(),
                    extent: extent.clone(),
                    kind: ForKind::Serial,
                    body: Box::new(stmt),
                };
            }
            LoopDesc::FusedNnz { var, extent, row, local, child } => {
                let ip = indptr_buf(&program.axes, child);
                let parent_axis = program
                    .axes
                    .get(child)
                    .and_then(|a| a.parent.clone())
                    .expect("fused child has parent");
                let plen = program.axes.positions(&parent_axis) as i64;
                // row = upper_bound(indptr, f) - 1 over indptr[0..plen+1].
                let search = Expr::Call {
                    intrin: Intrinsic::BinarySearch,
                    args: vec![
                        ip.load(vec![Expr::i32(0)]),
                        Expr::i32(0),
                        Expr::i32(plen + 1),
                        Expr::var(var) + 1,
                    ],
                };
                let inner = Stmt::Let {
                    var: row.clone(),
                    value: (search - 1).simplify(),
                    body: Box::new(Stmt::Let {
                        var: local.clone(),
                        value: (Expr::var(var) - ip.load(vec![Expr::var(row)])).simplify(),
                        body: Box::new(stmt),
                    }),
                };
                stmt = Stmt::For {
                    var: var.clone(),
                    extent: extent.clone(),
                    kind: ForKind::Serial,
                    body: Box::new(inner),
                };
            }
        }
        // Boundary blocks between loop levels (Figure 8): wrap all levels
        // but the outermost in a nameless pass-through block.
        if level > 0 {
            stmt = Stmt::Block(Block {
                name: format!("{}_{}", it.name, level - 1).into(),
                iter_vars: vec![],
                reads: vec![],
                writes: vec![],
                init: None,
                body: Box::new(stmt),
            });
        }
    }
    Ok(stmt)
}

fn collect_load_regions(e: &Expr, out: &mut Vec<BufferRegion>) {
    match e {
        Expr::BufferLoad { buffer, indices } => {
            out.push(BufferRegion::point(buffer, indices));
            for i in indices {
                collect_load_regions(i, out);
            }
        }
        Expr::Binary { lhs, rhs, .. } => {
            collect_load_regions(lhs, out);
            collect_load_regions(rhs, out);
        }
        Expr::Select { cond, then, otherwise } => {
            collect_load_regions(cond, out);
            collect_load_regions(then, out);
            collect_load_regions(otherwise, out);
        }
        Expr::Cast { value, .. } => collect_load_regions(value, out),
        Expr::Call { args, .. } => {
            for a in args {
                collect_load_regions(a, out);
            }
        }
        _ => {}
    }
}

/// Coordinate translation for the index list of one buffer access
/// (the iterative algorithm of eq. 1).
fn translate_indices(
    program: &SpProgram,
    it: &SpIter,
    state: &HashMap<Rc<str>, AxisState>,
    buf: &crate::stage1::SpBuffer,
    indices: &[Expr],
) -> Result<Vec<Expr>, LowerError> {
    if indices.len() != buf.axes.len() {
        return Err(LowerError::new(format!(
            "buffer `{}` accessed with {} indices, has {} axes",
            buf.name,
            indices.len(),
            buf.axes.len()
        )));
    }
    let axes = &program.axes;
    let mut out: Vec<Expr> = Vec::with_capacity(indices.len());
    for (j, (idx, axis_name)) in indices.iter().zip(&buf.axes).enumerate() {
        let axis = axes
            .get(axis_name)
            .ok_or_else(|| LowerError::new(format!("axis `{axis_name}` not registered")))?;
        if !axis.kind.is_sparse() {
            // Dense axis: coordinate == position; translate nested loads.
            out.push(translate_expr(program, it, state, idx)?);
            continue;
        }
        // Fast path (f⁻¹ short-circuit): the index is exactly the iterator
        // variable whose iteration axis is this buffer axis.
        let fast = match idx {
            Expr::Var(v) => it
                .axes
                .iter()
                .position(|a| it.var_of(a) == Some(v))
                .map(|pos| &it.axes[pos])
                .filter(|a| ***a == **axis_name),
            _ => None,
        };
        if fast.is_some() {
            out.push(state[axis_name].local.clone());
            continue;
        }
        // Slow path: binary search of the translated coordinate within the
        // parent row's sorted indices segment (eq. 4's `find`).
        let target = translate_expr(program, it, state, idx)?;
        let parent_flat = flatten_prefix(axes, &buf.axes[..j], &out)?;
        let (lo, hi) = match axis.kind {
            AxisKind::SparseFixed => {
                let w = axis.nnz_cols.unwrap_or(0) as i64;
                let lo = (parent_flat * w).simplify();
                let hi = (lo.clone() + w).simplify();
                (lo, hi)
            }
            AxisKind::SparseVariable => {
                let ip = indptr_buf(axes, axis_name);
                (ip.load(vec![parent_flat.clone()]), ip.load(vec![(parent_flat + 1).simplify()]))
            }
            _ => unreachable!("sparse kinds only"),
        };
        let search = Expr::Call {
            intrin: Intrinsic::BinarySearch,
            args: vec![indices_buf(axes, axis_name).load(vec![Expr::i32(0)]), lo, hi, target],
        };
        out.push(search);
    }
    Ok(out)
}

/// Flat position of the already-translated position prefix `q[..j]` of a
/// buffer's axes (the offset recursion of eq. 7, used to bound searches).
fn flatten_prefix(
    axes: &AxisStore,
    prefix_axes: &[Rc<str>],
    q: &[Expr],
) -> Result<Expr, LowerError> {
    let mut off = Expr::i32(0);
    for (axis_name, pos) in prefix_axes.iter().zip(q) {
        let axis = axes
            .get(axis_name)
            .ok_or_else(|| LowerError::new(format!("axis `{axis_name}` not registered")))?;
        off = match axis.kind {
            AxisKind::DenseFixed => (off * axis.length as i64 + pos.clone()).simplify(),
            AxisKind::SparseFixed => {
                (off * axis.nnz_cols.unwrap_or(0) as i64 + pos.clone()).simplify()
            }
            AxisKind::DenseVariable | AxisKind::SparseVariable => {
                let ip = indptr_buf(axes, axis_name);
                (ip.load(vec![off]) + pos.clone()).simplify()
            }
        };
    }
    Ok(off)
}

/// Translate an expression: rewrite sparse-buffer loads into position space
/// (recursively), leaving iterator variables intact (they are bound to
/// coordinates by the enclosing block).
fn translate_expr(
    program: &SpProgram,
    it: &SpIter,
    state: &HashMap<Rc<str>, AxisState>,
    e: &Expr,
) -> Result<Expr, LowerError> {
    Ok(match e {
        Expr::BufferLoad { buffer, indices } => {
            match program.buffer(&buffer.name) {
                Some(sb) => {
                    let idx = translate_indices(program, it, state, sb, indices)?;
                    Expr::BufferLoad { buffer: buffer.clone(), indices: idx }
                }
                None => {
                    // Non-sparse (auxiliary/external) buffer: translate
                    // nested index expressions only.
                    let idx = indices
                        .iter()
                        .map(|i| translate_expr(program, it, state, i))
                        .collect::<Result<_, _>>()?;
                    Expr::BufferLoad { buffer: buffer.clone(), indices: idx }
                }
            }
        }
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: *op,
            lhs: Box::new(translate_expr(program, it, state, lhs)?),
            rhs: Box::new(translate_expr(program, it, state, rhs)?),
        },
        Expr::Select { cond, then, otherwise } => Expr::Select {
            cond: Box::new(translate_expr(program, it, state, cond)?),
            then: Box::new(translate_expr(program, it, state, then)?),
            otherwise: Box::new(translate_expr(program, it, state, otherwise)?),
        },
        Expr::Cast { dtype, value } => Expr::Cast {
            dtype: *dtype,
            value: Box::new(translate_expr(program, it, state, value)?),
        },
        Expr::Call { intrin, args } => Expr::Call {
            intrin: *intrin,
            args: args
                .iter()
                .map(|a| translate_expr(program, it, state, a))
                .collect::<Result<_, _>>()?,
        },
        _ => e.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule1::sparse_fuse;
    use crate::stage1::{sddmm_program, spmm_program};

    #[test]
    fn spmm_lowering_structure_matches_figure9() {
        let p = spmm_program(4, 5, 7, 3);
        let lowered = lower_to_stage2(&p).unwrap();
        let txt = print_func(&lowered.func);
        // Outer dense loop over I, variable extent from indptr, dense K.
        assert!(txt.contains("for i in range(4):"), "{txt}");
        assert!(txt.contains("(J_indptr[(i + 1)] - J_indptr[i])"), "{txt}");
        assert!(txt.contains("for k in range(3):"), "{txt}");
        // Coordinate of J materialized through indices.
        assert!(txt.contains("J_indices[(J_indptr[i] + j)]"), "{txt}");
        // Block named after the iteration.
        assert!(txt.contains("block(\"spmm\")"), "{txt}");
    }

    #[test]
    fn aux_materialization_creates_buffers_and_domains() {
        let p = spmm_program(4, 5, 7, 3);
        let lowered = lower_to_stage2(&p).unwrap();
        let f = &lowered.func;
        let ip = f.buffer("J_indptr").expect("indptr materialized");
        assert_eq!(ip.shape[0].as_const_int(), Some(5)); // rows + 1
        let ix = f.buffer("J_indices").expect("indices materialized");
        assert_eq!(ix.shape[0].as_const_int(), Some(7)); // nnz
        assert!(lowered.domains.iter().any(|d| d.buffer == "J_indptr" && d.hi == 7));
        assert!(lowered.domains.iter().any(|d| d.buffer == "J_indices" && d.hi == 4));
    }

    #[test]
    fn fast_path_avoids_binary_search_in_spmm() {
        let p = spmm_program(4, 5, 7, 3);
        let lowered = lower_to_stage2(&p).unwrap();
        let txt = print_func(&lowered.func);
        assert!(!txt.contains("binary_search"), "{txt}");
    }

    #[test]
    fn fused_sddmm_emits_single_nnz_loop_with_search() {
        let mut p = sddmm_program(4, 5, 7, 3);
        sparse_fuse(&mut p, "sddmm", &["I", "J"]).unwrap();
        let lowered = lower_to_stage2(&p).unwrap();
        let txt = print_func(&lowered.func);
        // One loop over nnz (Figure 8 bottom).
        assert!(txt.contains("for ij in range(7):"), "{txt}");
        // Row recovered by binary search over indptr.
        assert!(txt.contains("binary_search(J_indptr"), "{txt}");
    }

    #[test]
    fn init_predicate_uses_reduction_position() {
        let p = spmm_program(4, 5, 7, 3);
        let lowered = lower_to_stage2(&p).unwrap();
        let blk = lowered.func.body.find_block("spmm").expect("block exists");
        let reduce_vars: Vec<_> =
            blk.iter_vars.iter().filter(|iv| iv.kind == IterKind::Reduce).collect();
        assert_eq!(reduce_vars.len(), 1);
        // The reduce var must bind to the *position* (plain loop var), not
        // the coordinate (an indices load).
        assert!(matches!(reduce_vars[0].binding, Expr::Var(_)));
        assert!(blk.init.is_some());
    }

    #[test]
    fn region_analysis_collects_reads_and_writes() {
        let p = spmm_program(4, 5, 7, 3);
        let lowered = lower_to_stage2(&p).unwrap();
        let blk = lowered.func.body.find_block("spmm").unwrap();
        assert!(blk.writes.iter().any(|r| &*r.buffer.name == "C"));
        assert!(blk.reads.iter().any(|r| &*r.buffer.name == "A"));
        assert!(blk.reads.iter().any(|r| &*r.buffer.name == "B"));
    }

    #[test]
    fn iterating_child_before_parent_errors() {
        use crate::stage1::ProgramBuilder;
        let mut b = ProgramBuilder::new("bad");
        b.dense_fixed("I", 4);
        b.sparse_variable("J", "I", 4, 4, "ip", "ix");
        b.sparse_buffer("A", &["I", "J"], DType::F32);
        b.sp_iter("it", &["J"], "S", |_| (vec![], vec![]));
        let p = b.finish();
        assert!(lower_to_stage2(&p).is_err());
    }
}
