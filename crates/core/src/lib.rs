//! # sparsetir-core
//!
//! The paper's primary contribution: SparseTIR's Stage I IR (axes, sparse
//! buffers, sparse iterations — §3.1/§3.2), composable-format
//! decomposition (§3.2.1), Stage I schedules (§3.2.2), sparse iteration
//! lowering to position space (§3.3.1, eqs. 1–5), sparse buffer lowering
//! to flat loop-level IR (§3.4.1, eqs. 6–8) and horizontal fusion (§3.5).
//!
//! The lowering pipeline targets `sparsetir-ir` (the TensorIR-equivalent
//! substrate), whose interpreter defines the functional semantics used to
//! validate every pass: a Stage I program interpreted with *dense*
//! coordinate-space bindings must agree with its lowered Stage III form
//! interpreted with *compressed* bindings.
//!
//! ```
//! use sparsetir_core::prelude::*;
//! use sparsetir_ir::prelude::*;
//!
//! // The paper's Figure 3 SpMM, lowered end to end.
//! let program = spmm_program(4, 4, 6, 8);
//! let stage3 = lower(&program)?;
//! assert!(print_func(&stage3).contains("J_indptr"));
//! # Ok::<(), sparsetir_core::lower::LowerError>(())
//! ```

#![warn(missing_docs)]

pub mod axis;
pub mod data;
pub mod flatten;
pub mod fused;
pub mod hfuse;
pub mod lower;
pub mod rewrite;
pub mod schedule1;
pub mod stage1;
pub mod validate;

/// Common imports.
pub mod prelude {
    pub use crate::axis::{Axis, AxisKind, AxisStore};
    pub use crate::data::{
        bind_bsr, bind_bucket, bind_csr, bind_dense, bind_ell, bind_zeros, bytes_copied_on_thread,
        count_bytes_copied, read_dense, take_dense, take_values, Bindings,
    };
    pub use crate::flatten::{aux_buffer_names, flat_size, flatten_access, lower, lower_to_stage3};
    pub use crate::fused::{
        attention_aggregate_program, attention_score_program, edge_softmax_program,
        fused_attention_program, fused_sage_program, sage_gather_program, sage_matmul_program,
    };
    pub use crate::hfuse::horizontal_fuse;
    pub use crate::lower::{lower_to_stage2, BufferDomain, LowerError, Stage2Func};
    pub use crate::rewrite::{decompose_format, FormatRewriteRule, RewriteError};
    pub use crate::schedule1::{sparse_fuse, sparse_reorder, Stage1Error};
    pub use crate::stage1::{
        batched_sddmm_program, sddmm_program, spmm_program, ProgramBuilder, SpBuffer, SpIter,
        SpProgram, SpStore,
    };
    pub use crate::validate::{validate, ValidateError};
}
