//! End-to-end lowering pipeline tests: a Stage I program lowered through
//! sparse iteration lowering (I→II) and sparse buffer lowering (II→III)
//! must compute the same result on compressed storage as the `smat`
//! reference routines — across formats, schedules and decompositions.

use sparsetir_core::prelude::*;
use sparsetir_ir::prelude::*;
use sparsetir_smat::prelude::*;
use std::collections::HashMap;

fn run_stage3(func: &PrimFunc, bindings: &mut Bindings) {
    exec_func(func, &HashMap::new(), bindings).expect("stage III executes");
}

#[test]
fn spmm_stage3_matches_csr_reference() {
    let mut rng = gen::rng(101);
    for (rows, cols, density, feat) in
        [(8usize, 8usize, 0.25f64, 4usize), (16, 12, 0.15, 3), (5, 20, 0.3, 8)]
    {
        let a = gen::random_csr(rows, cols, density, &mut rng);
        let x = gen::random_dense(cols, feat, &mut rng);
        let program = spmm_program(rows, cols, a.nnz(), feat);
        let f = lower(&program).expect("lowers");
        let mut b = Bindings::new();
        bind_csr(&mut b, "A", "J", &a);
        bind_dense(&mut b, "B", &x);
        bind_zeros(&mut b, "C", rows * feat);
        run_stage3(&f, &mut b);
        let got = read_dense(&b, "C", rows, feat);
        let expect = a.spmm(&x).unwrap();
        assert!(
            got.approx_eq(&expect, 1e-4),
            "spmm mismatch for {rows}x{cols} d={density}: {}",
            got.max_abs_diff(&expect)
        );
    }
}

#[test]
fn spmm_stage1_dense_semantics_agree_with_stage3() {
    let mut rng = gen::rng(7);
    let (rows, cols, feat) = (10usize, 9usize, 5usize);
    let a = gen::random_csr(rows, cols, 0.2, &mut rng);
    let x = gen::random_dense(cols, feat, &mut rng);
    let program = spmm_program(rows, cols, a.nnz(), feat);

    // Stage I reference: dense coordinate-space interpretation.
    let dense_f = program.to_dense_func();
    let mut db = Bindings::new();
    db.insert("A".into(), TensorData::from(a.to_dense().data().to_vec()));
    bind_dense(&mut db, "B", &x);
    bind_zeros(&mut db, "C", rows * feat);
    exec_func(&dense_f, &HashMap::new(), &mut db).unwrap();
    let stage1_result = read_dense(&db, "C", rows, feat);

    // Stage III compressed interpretation.
    let f = lower(&program).unwrap();
    let mut cb = Bindings::new();
    bind_csr(&mut cb, "A", "J", &a);
    bind_dense(&mut cb, "B", &x);
    bind_zeros(&mut cb, "C", rows * feat);
    run_stage3(&f, &mut cb);
    let stage3_result = read_dense(&cb, "C", rows, feat);

    assert!(stage1_result.approx_eq(&stage3_result, 1e-4));
}

#[test]
fn sddmm_fused_stage3_matches_reference() {
    let mut rng = gen::rng(23);
    let (rows, cols, feat) = (12usize, 10usize, 6usize);
    let a = gen::random_csr(rows, cols, 0.2, &mut rng);
    let x = gen::random_dense(rows, feat, &mut rng);
    let y = gen::random_dense(feat, cols, &mut rng);

    let mut program = sddmm_program(rows, cols, a.nnz(), feat);
    // The paper's schedule: iterate non-zeros directly with one fused loop.
    sparse_fuse(&mut program, "sddmm", &["I", "J"]).unwrap();
    let f = lower(&program).unwrap();

    let mut b = Bindings::new();
    bind_csr(&mut b, "A", "J", &a);
    bind_dense(&mut b, "X", &x);
    bind_dense(&mut b, "Y", &y);
    b.insert("Bout".into(), TensorData::from(vec![0.0f32; a.nnz()]));
    run_stage3(&f, &mut b);

    let expect = a.sddmm(&x, &y).unwrap();
    let got = b["Bout"].as_f32();
    for (g, e) in got.iter().zip(expect.values()) {
        assert!((g - e).abs() < 1e-3, "sddmm value mismatch: {g} vs {e}");
    }
}

#[test]
fn sddmm_unfused_also_matches() {
    let mut rng = gen::rng(29);
    let (rows, cols, feat) = (9usize, 11usize, 4usize);
    let a = gen::random_csr(rows, cols, 0.25, &mut rng);
    let x = gen::random_dense(rows, feat, &mut rng);
    let y = gen::random_dense(feat, cols, &mut rng);
    let program = sddmm_program(rows, cols, a.nnz(), feat);
    let f = lower(&program).unwrap();
    let mut b = Bindings::new();
    bind_csr(&mut b, "A", "J", &a);
    bind_dense(&mut b, "X", &x);
    bind_dense(&mut b, "Y", &y);
    b.insert("Bout".into(), TensorData::from(vec![0.0f32; a.nnz()]));
    run_stage3(&f, &mut b);
    let expect = a.sddmm(&x, &y).unwrap();
    for (g, e) in b["Bout"].as_f32().iter().zip(expect.values()) {
        assert!((g - e).abs() < 1e-3);
    }
}

/// Split a CSR's non-zeros into a block-friendly part and a remainder, so
/// `A = A_blocks + A_rest` (the pre-processing partition that accompanies
/// a [BSR, ELL] decomposition).
fn split_for_bsr(a: &Csr, block: usize) -> (Csr, Csr) {
    let mut blocks = Coo::new(a.rows(), a.cols());
    let mut rest = Coo::new(a.rows(), a.cols());
    // A block goes to the BSR part when it holds ≥ 2 non-zeros.
    let bsr = Bsr::from_csr(a, block).unwrap();
    let bb = block * block;
    let mut dense_blocks: std::collections::HashSet<(usize, usize)> =
        std::collections::HashSet::new();
    for br in 0..bsr.block_rows() {
        for p in bsr.indptr()[br]..bsr.indptr()[br + 1] {
            let bc = bsr.indices()[p] as usize;
            let nnz_in_block =
                bsr.values()[p * bb..(p + 1) * bb].iter().filter(|&&v| v != 0.0).count();
            if nnz_in_block >= 2 {
                dense_blocks.insert((br, bc));
            }
        }
    }
    for r in 0..a.rows() {
        let (cols, vals) = a.row(r);
        for (&c, &v) in cols.iter().zip(vals) {
            if dense_blocks.contains(&(r / block, c as usize / block)) {
                blocks.push(r as u32, c, v);
            } else {
                rest.push(r as u32, c, v);
            }
        }
    }
    (Csr::from_coo(&blocks), Csr::from_coo(&rest))
}

#[test]
fn decomposed_bsr_plus_ell_spmm_matches_reference() {
    let mut rng = gen::rng(47);
    let (rows, cols, feat, block) = (16usize, 16usize, 4usize, 2usize);
    let a = gen::random_csr(rows, cols, 0.2, &mut rng);
    let x = gen::random_dense(cols, feat, &mut rng);

    let (a_blocks, a_rest) = split_for_bsr(&a, block);
    let bsr = Bsr::from_csr(&a_blocks, block).unwrap();
    let max_rest = a_rest.row_lengths().into_iter().max().unwrap_or(0).max(1);
    let ell = Ell::from_csr(&a_rest, max_rest).unwrap();

    let program = spmm_program(rows, cols, a.nnz(), feat);
    let rules = vec![
        FormatRewriteRule::bsr("A", block, bsr.block_rows(), bsr.block_cols(), bsr.nblocks()),
        FormatRewriteRule::ell("A", max_rest, rows, cols),
    ];
    let decomposed = decompose_format(&program, &rules).unwrap().strip_copies();
    let f = lower(&decomposed).unwrap();

    let mut b = Bindings::new();
    bind_bsr(&mut b, &format!("A_bsr_{block}"), &format!("bsr_{block}"), &bsr);
    bind_ell(&mut b, &format!("A_ell_{max_rest}"), &format!("ell_{max_rest}"), &ell);
    bind_dense(&mut b, "B", &x);
    bind_zeros(&mut b, "C", rows * feat);
    // The original CSR aux arrays are still parameters of the function
    // signature (A itself no longer participates in compute after
    // decomposition, but the copy-stripped program retains the buffer).
    bind_csr(&mut b, "A", "J", &a);
    run_stage3(&f, &mut b);

    let got = read_dense(&b, "C", rows, feat);
    let expect = a.spmm(&x).unwrap();
    assert!(
        got.approx_eq(&expect, 1e-3),
        "decomposed spmm mismatch: {}",
        got.max_abs_diff(&expect)
    );
}

#[test]
fn decomposed_bucket_ell_spmm_matches_reference() {
    // Full hyb(c, k) pipeline: every bucket of every column partition
    // becomes one bucket_ell rule; their accumulated SpMM must equal the
    // CSR reference.
    let mut rng = gen::rng(53);
    let (rows, cols, feat) = (24usize, 24usize, 3usize);
    let a = gen::random_csr(rows, cols, 0.15, &mut rng);
    let x = gen::random_dense(cols, feat, &mut rng);
    let hyb = Hyb::from_csr(&a, 2, 2).unwrap();

    let program = spmm_program(rows, cols, a.nnz(), feat);
    let mut rules = Vec::new();
    let mut tags = Vec::new();
    for (pi, part) in hyb.partitions().iter().enumerate() {
        for bucket in &part.buckets {
            if bucket.is_empty() {
                continue;
            }
            let tag = format!("p{pi}_w{}", bucket.width);
            rules.push(FormatRewriteRule::bucket_ell("A", &tag, bucket.width, bucket.len(), cols));
            tags.push((tag, bucket.clone()));
        }
    }
    let decomposed = decompose_format(&program, &rules).unwrap().strip_copies();
    let f = lower(&decomposed).unwrap();

    let mut b = Bindings::new();
    for (tag, bucket) in &tags {
        bind_bucket(&mut b, &format!("A_hyb_{tag}"), &format!("hyb_{tag}"), bucket);
    }
    bind_csr(&mut b, "A", "J", &a);
    bind_dense(&mut b, "B", &x);
    bind_zeros(&mut b, "C", rows * feat);
    run_stage3(&f, &mut b);

    let got = read_dense(&b, "C", rows, feat);
    let expect = a.spmm(&x).unwrap();
    assert!(
        got.approx_eq(&expect, 1e-3),
        "hyb-decomposed spmm mismatch: {}",
        got.max_abs_diff(&expect)
    );
}

#[test]
fn stage2_schedules_preserve_stage3_semantics() {
    // Lower SpMM, then split + bind the feature loop (a GE-SpMM-style
    // schedule) and check the scheduled kernel still matches.
    let mut rng = gen::rng(61);
    let (rows, cols, feat) = (12usize, 12usize, 8usize);
    let a = gen::random_csr(rows, cols, 0.25, &mut rng);
    let x = gen::random_dense(cols, feat, &mut rng);
    let program = spmm_program(rows, cols, a.nnz(), feat);
    let f = lower(&program).unwrap();

    let mut sch = Schedule::new(f);
    let (ko, ki) = sch.split("k", 4).unwrap();
    sch.bind("i", ThreadAxis::BlockIdxX).unwrap();
    sch.bind(&ki, ThreadAxis::ThreadIdxX).unwrap();
    sch.unroll(&ko).unwrap();
    let scheduled = sch.into_func();

    let mut b = Bindings::new();
    bind_csr(&mut b, "A", "J", &a);
    bind_dense(&mut b, "B", &x);
    bind_zeros(&mut b, "C", rows * feat);
    run_stage3(&scheduled, &mut b);
    let got = read_dense(&b, "C", rows, feat);
    assert!(got.approx_eq(&a.spmm(&x).unwrap(), 1e-4));
}

#[test]
fn reordered_spmm_still_matches() {
    let mut rng = gen::rng(67);
    let (rows, cols, feat) = (8usize, 10usize, 4usize);
    let a = gen::random_csr(rows, cols, 0.3, &mut rng);
    let x = gen::random_dense(cols, feat, &mut rng);
    let mut program = spmm_program(rows, cols, a.nnz(), feat);
    // K-outermost order (Figure 6's reorder example).
    sparse_reorder(&mut program, "spmm", &["K", "I", "J"]).unwrap();
    let f = lower(&program).unwrap();
    let mut b = Bindings::new();
    bind_csr(&mut b, "A", "J", &a);
    bind_dense(&mut b, "B", &x);
    bind_zeros(&mut b, "C", rows * feat);
    run_stage3(&f, &mut b);
    let got = read_dense(&b, "C", rows, feat);
    assert!(got.approx_eq(&a.spmm(&x).unwrap(), 1e-4));
}

#[test]
fn codegen_emits_cuda_for_lowered_spmm() {
    let program = spmm_program(8, 8, 12, 4);
    let f = lower(&program).unwrap();
    let mut sch = Schedule::new(f);
    sch.bind("i", ThreadAxis::BlockIdxX).unwrap();
    sch.bind("k", ThreadAxis::ThreadIdxX).unwrap();
    let src = codegen_cuda(sch.func());
    assert!(src.contains("__global__ void spmm"), "{src}");
    assert!(src.contains("blockIdx.x"), "{src}");
    assert!(src.contains("J_indptr"), "{src}");
}
