//! Golden tests reproducing the IR transformations shown in the paper's
//! figures: the printed form of each stage matches the structures the
//! figures illustrate.

use sparsetir_core::prelude::*;
use sparsetir_ir::prelude::*;

/// Figure 3: language constructs of the SpMM operator.
#[test]
fn figure3_spmm_constructs() {
    let p = spmm_program(64, 64, 256, 32);
    let script = p.script();
    // Axis declarations: dense_fixed I, sparse_variable J with (indptr,
    // indices), dense_fixed K.
    assert!(script.contains("I = dense_fixed(len=64)"), "{script}");
    assert!(script.contains("J = sparse_variable(len=64, parent=I, nnz=256)"), "{script}");
    assert!(script.contains("K = dense_fixed(len=32)"), "{script}");
    // Buffer declarations bind axis compositions.
    assert!(script.contains("A = match_sparse_buffer((I, J), \"float32\")"), "{script}");
    assert!(script.contains("C = match_sparse_buffer((I, K), \"float32\")"), "{script}");
    // The sparse iteration with SRS kinds and init.
    assert!(script.contains("sp_iter([I, J, K], \"SRS\", \"spmm\")"), "{script}");
    assert!(script.contains("with init():"), "{script}");
}

/// Figure 5: format decomposition into BSR(2) + ELL(2) generates copy
/// iterations, new axes/buffers and per-format computations.
#[test]
fn figure5_format_decomposition() {
    let p = spmm_program(8, 8, 20, 4);
    let rules = vec![FormatRewriteRule::bsr("A", 2, 4, 4, 6), FormatRewriteRule::ell("A", 2, 8, 8)];
    let d = decompose_format(&p, &rules).unwrap();
    let script = d.script();
    // Generated axes for BSR(2): IO dense_fixed, JO sparse_variable,
    // II/JI dense_fixed(2) — and for ELL(2): sparse_fixed with width 2.
    assert!(script.contains("dense_fixed(len=4)"), "{script}");
    assert!(script.contains("nnz_cols=2"), "{script}");
    // Generated sparse iterations: copies and computations per format.
    assert!(script.contains("\"copy_bsr_2\""), "{script}");
    assert!(script.contains("\"copy_ell_2\""), "{script}");
    assert!(script.contains("spmm_bsr_2"), "{script}");
    assert!(script.contains("spmm_ell_2"), "{script}");
    // BSR compute remaps the output row to io·2+ii.
    assert!(script.contains("* 2)"), "{script}");
}

/// Figure 6: stage I schedules — reorder SpMM to [K, I, J] ("SSR"), fuse
/// SDDMM's (I, J).
#[test]
fn figure6_stage1_schedules() {
    let mut spmm = spmm_program(8, 8, 16, 4);
    sparse_reorder(&mut spmm, "spmm", &["K", "I", "J"]).unwrap();
    let it = spmm.iteration("spmm").unwrap();
    assert_eq!(it.kind_string(), "SSR");

    let mut sddmm = sddmm_program(8, 8, 16, 4);
    sparse_reorder(&mut sddmm, "sddmm", &["K", "I", "J"]).unwrap();
    sparse_fuse(&mut sddmm, "sddmm", &["I", "J"]).unwrap();
    let script = sddmm.script();
    assert!(script.contains("sp_iter([K, fuse(I, J)], \"RSS\", \"sddmm\")"), "{script}");
}

/// Figure 7: auxiliary buffer materialization creates explicit indptr /
/// indices buffers with domain hints.
#[test]
fn figure7_aux_materialization() {
    let p = spmm_program(16, 16, 40, 4);
    let lowered = lower_to_stage2(&p).unwrap();
    let ip = lowered.func.buffer("J_indptr").expect("J_indptr materialized");
    assert_eq!(ip.dtype, DType::I32);
    assert_eq!(ip.shape[0].as_const_int(), Some(17));
    let ix = lowered.func.buffer("J_indices").expect("J_indices materialized");
    assert_eq!(ix.shape[0].as_const_int(), Some(40));
    // assume_buffer_domain hints: indptr values in [0, nnz], indices in
    // [0, n−1].
    let ip_dom = lowered.domains.iter().find(|d| d.buffer == "J_indptr").unwrap();
    assert_eq!((ip_dom.lo, ip_dom.hi), (0, 40));
    let ix_dom = lowered.domains.iter().find(|d| d.buffer == "J_indices").unwrap();
    assert_eq!((ix_dom.lo, ix_dom.hi), (0, 15));
}

/// Figure 8: nested loop generation — one loop per axis without fusion,
/// a single nnz loop with fusion.
#[test]
fn figure8_nested_loop_generation() {
    // Without fusion: loops i then j (variable extent) then k, separated
    // by blocks.
    let spmm = spmm_program(8, 8, 24, 4);
    let txt = print_func(&lower_to_stage2(&spmm).unwrap().func);
    assert!(txt.contains("for i in range(8):"), "{txt}");
    assert!(txt.contains("for j in range((J_indptr[(i + 1)] - J_indptr[i])):"), "{txt}");
    assert!(txt.contains("block(\"spmm_0\")"), "{txt}");

    // With fusion of I and J: a single loop over nnz.
    let mut sddmm = sddmm_program(8, 8, 24, 4);
    sparse_fuse(&mut sddmm, "sddmm", &["I", "J"]).unwrap();
    let txt = print_func(&lower_to_stage2(&sddmm).unwrap().func);
    assert!(txt.contains("for ij in range(24):"), "{txt}");
}

/// Figure 9: coordinate translation rewrites accesses into position space:
/// `B` is indexed by the `J` coordinate from the indices array.
#[test]
fn figure9_coordinate_translation() {
    let p = spmm_program(8, 8, 24, 4);
    let txt = print_func(&lower_to_stage2(&p).unwrap().func);
    // The block binds v_j to the decompressed coordinate.
    assert!(txt.contains("v_j = J_indices[(J_indptr[i] + j)]"), "{txt}");
    // Init zeroes C at the spatial point.
    assert!(txt.contains("with init():"), "{txt}");
}

/// Figure 10: sparse buffer lowering flattens every access to 1-D —
/// `A[i, j] → A[J_indptr[i] + j]` and `C[i, k] → C[i·feat + k]`.
#[test]
fn figure10_sparse_buffer_lowering() {
    let p = spmm_program(8, 8, 24, 4);
    let f = lower(&p).unwrap();
    for b in &f.buffers {
        assert_eq!(b.ndim(), 1, "{} must be flat", b.name);
    }
    let txt = print_func(&f);
    assert!(txt.contains("A[(J_indptr[v_i] + j)]"), "{txt}");
    assert!(txt.contains("C[((v_i * 4) + v_k)]"), "{txt}");
    verify(&f).expect("stage III is well-formed");
}

/// Appendix A: composing BSR(2) and ELL(2) rewrite rules as in the
/// programming-interface listing (`decompose_format(spmm, [BSR(2),
/// ELL(2)])`).
#[test]
fn appendix_a_programming_interface() {
    let spmm = spmm_program(16, 16, 48, 8);
    let composable_format =
        vec![FormatRewriteRule::bsr("A", 2, 8, 8, 12), FormatRewriteRule::ell("A", 2, 16, 16)];
    let spmm_hybrid = decompose_format(&spmm, &composable_format).unwrap();
    // Format conversion is the 1-rule special case.
    let conversion = decompose_format(&spmm, &[FormatRewriteRule::ell("A", 4, 16, 16)]).unwrap();
    assert!(spmm_hybrid.iterations.len() > conversion.iterations.len());
    assert!(conversion.buffer("A_ell_4").is_some());
    // Both still lower end to end.
    lower(&spmm_hybrid.strip_copies()).unwrap();
    lower(&conversion.strip_copies()).unwrap();
}
