//! Property-based tests of the lowering pipeline: for arbitrary sparse
//! structures, the lowered Stage III kernel must agree with the reference
//! routines — the compiler-correctness invariant behind every experiment.

use proptest::prelude::*;
use sparsetir_core::prelude::*;
use sparsetir_ir::prelude::*;
use sparsetir_smat::prelude::*;
use std::collections::HashMap;

fn arb_csr(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = Csr> {
    (2..=max_dim, 2..=max_dim).prop_flat_map(move |(rows, cols)| {
        proptest::collection::vec((0..rows as u32, 0..cols as u32, 0.1f32..2.0f32), 1..max_nnz)
            .prop_map(move |entries| {
                let coo = Coo::from_entries(rows, cols, entries).expect("in-bounds");
                Csr::from_coo(&coo)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Lowered SpMM == reference SpMM for arbitrary structures.
    #[test]
    fn lowered_spmm_matches_reference(a in arb_csr(14, 40), feat in 1usize..6) {
        let program = spmm_program(a.rows(), a.cols(), a.nnz(), feat);
        let func = lower(&program).expect("lowers");
        verify(&func).expect("well-formed IR");

        let mut rng = gen::rng(1);
        let x = gen::random_dense(a.cols(), feat, &mut rng);
        let mut b = Bindings::new();
        bind_csr(&mut b, "A", "J", &a);
        bind_dense(&mut b, "B", &x);
        bind_zeros(&mut b, "C", a.rows() * feat);
        exec_func(&func, &HashMap::new(), &mut b).expect("executes");
        let got = read_dense(&b, "C", a.rows(), feat);
        prop_assert!(got.approx_eq(&a.spmm(&x).unwrap(), 1e-3));
    }

    /// Lowered fused SDDMM == reference for arbitrary structures.
    #[test]
    fn lowered_fused_sddmm_matches_reference(a in arb_csr(12, 30), feat in 1usize..5) {
        let mut program = sddmm_program(a.rows(), a.cols(), a.nnz(), feat);
        sparse_fuse(&mut program, "sddmm", &["I", "J"]).expect("fuses");
        let func = lower(&program).expect("lowers");
        verify(&func).expect("well-formed IR");

        let mut rng = gen::rng(2);
        let x = gen::random_dense(a.rows(), feat, &mut rng);
        let y = gen::random_dense(feat, a.cols(), &mut rng);
        let mut b = Bindings::new();
        bind_csr(&mut b, "A", "J", &a);
        bind_dense(&mut b, "X", &x);
        bind_dense(&mut b, "Y", &y);
        b.insert("Bout".into(), TensorData::from(vec![0.0f32; a.nnz()]));
        exec_func(&func, &HashMap::new(), &mut b).expect("executes");
        let expect = a.sddmm(&x, &y).unwrap();
        for (g, e) in b["Bout"].as_f32().iter().zip(expect.values()) {
            prop_assert!((g - e).abs() < 1e-3, "{g} vs {e}");
        }
    }

    /// Decomposing into hyb bucket rules preserves SpMM semantics for
    /// arbitrary structures and (c, k).
    #[test]
    fn decomposed_hyb_matches_reference(
        a in arb_csr(12, 40),
        c in 1usize..4,
        k in 0u32..3,
        feat in 1usize..4,
    ) {
        let hyb = Hyb::from_csr(&a, c, k).expect("valid params");
        let program = spmm_program(a.rows(), a.cols(), a.nnz(), feat);
        let mut rules = Vec::new();
        let mut buckets = Vec::new();
        for (pi, part) in hyb.partitions().iter().enumerate() {
            for bucket in &part.buckets {
                if bucket.is_empty() {
                    continue;
                }
                let tag = format!("p{pi}_w{}", bucket.width);
                rules.push(FormatRewriteRule::bucket_ell(
                    "A", &tag, bucket.width, bucket.len(), a.cols(),
                ));
                buckets.push((tag, bucket.clone()));
            }
        }
        if rules.is_empty() {
            // Empty matrix: nothing to check.
            return Ok(());
        }
        let decomposed = decompose_format(&program, &rules).expect("decomposes").strip_copies();
        let func = lower(&decomposed).expect("lowers");
        verify(&func).expect("well-formed IR");

        let mut rng = gen::rng(3);
        let x = gen::random_dense(a.cols(), feat, &mut rng);
        let mut b = Bindings::new();
        for (tag, bucket) in &buckets {
            bind_bucket(&mut b, &format!("A_hyb_{tag}"), &format!("hyb_{tag}"), bucket);
        }
        bind_csr(&mut b, "A", "J", &a);
        bind_dense(&mut b, "B", &x);
        bind_zeros(&mut b, "C", a.rows() * feat);
        exec_func(&func, &HashMap::new(), &mut b).expect("executes");
        let got = read_dense(&b, "C", a.rows(), feat);
        prop_assert!(got.approx_eq(&a.spmm(&x).unwrap(), 1e-3));
    }

    /// Split/bind/unroll schedules never change results for arbitrary
    /// structures and split factors.
    #[test]
    fn schedules_preserve_semantics(a in arb_csr(10, 30), factor in 1i64..9) {
        let feat = 8usize;
        let program = spmm_program(a.rows(), a.cols(), a.nnz(), feat);
        let func = lower(&program).expect("lowers");

        let run = |f: &PrimFunc| {
            let mut rng = gen::rng(4);
            let x = gen::random_dense(a.cols(), feat, &mut rng);
            let mut b = Bindings::new();
            bind_csr(&mut b, "A", "J", &a);
            bind_dense(&mut b, "B", &x);
            bind_zeros(&mut b, "C", a.rows() * feat);
            exec_func(f, &HashMap::new(), &mut b).expect("executes");
            read_dense(&b, "C", a.rows(), feat)
        };
        let before = run(&func);

        let mut sch = Schedule::new(func);
        let (ko, ki) = sch.split("k", factor).expect("splits");
        sch.unroll(&ko).expect("unrolls");
        sch.bind("i", ThreadAxis::BlockIdxX).expect("binds block");
        sch.bind(&ki, ThreadAxis::ThreadIdxX).expect("binds thread");
        let scheduled = sch.into_func();
        verify(&scheduled).expect("well-formed after scheduling");
        let after = run(&scheduled);
        prop_assert!(before.approx_eq(&after, 1e-5));
    }

    /// The interpreted FLOP count of lowered SpMM is exactly 2·nnz·feat.
    #[test]
    fn flop_count_is_exact(a in arb_csr(10, 30), feat in 1usize..5) {
        let program = spmm_program(a.rows(), a.cols(), a.nnz(), feat);
        let func = lower(&program).expect("lowers");
        let mut rng = gen::rng(5);
        let x = gen::random_dense(a.cols(), feat, &mut rng);
        let mut b = Bindings::new();
        bind_csr(&mut b, "A", "J", &a);
        bind_dense(&mut b, "B", &x);
        bind_zeros(&mut b, "C", a.rows() * feat);
        let counts = count_ops(&func, &HashMap::new(), &b).expect("counts");
        prop_assert!((counts.flops - 2.0 * (a.nnz() * feat) as f64).abs() < 1e-9);
    }
}
