//! Figure 18: SR-BCRS(t, g) expressed natively in SparseTIR axes — the
//! paper states "sparse matrices in SR-BCRS format can be composed by 4
//! axes in SparseTIR" (dense_fixed tile-rows → dense_variable groups →
//! sparse_fixed tiles → dense_fixed in-tile rows). This test builds that
//! axis tree, checks the flattening matches `sparsetir-smat`'s SR-BCRS
//! layout bit-for-bit, and runs a full SpMM on it through the lowering
//! pipeline.

use sparsetir_core::prelude::*;
use sparsetir_ir::prelude::*;
use sparsetir_smat::prelude::*;
use std::collections::HashMap;

/// Build the Stage I SpMM program over an SR-BCRS(t, g) weight.
fn srbcrs_spmm_program(s: &SrBcrs, feat: usize) -> (SpProgram, SpBuffer) {
    let total_groups = *s.group_indptr().last().expect("nonempty indptr");
    let mut b = ProgramBuilder::new("srbcrs_spmm");
    b.dense_fixed("TR", s.tile_rows());
    b.dense_variable("G", "TR", total_groups, total_groups, "sr_indptr");
    b.sparse_fixed("TL", "G", s.cols(), s.g(), "sr_indices");
    b.dense_fixed("II", s.t());
    b.dense_fixed("J_", s.cols());
    b.dense_fixed("K", feat);
    let w = b.sparse_buffer("W", &["TR", "G", "TL", "II"], DType::F32);
    let x = b.sparse_buffer("X", &["J_", "K"], DType::F32);
    // Output has t·tile_rows rows (covers the logical rows, padded).
    b.dense_fixed("IY", s.tile_rows() * s.t());
    let y = b.sparse_buffer("Y", &["IY", "K"], DType::F32);
    let axes = b.axes().clone();
    let t = s.t() as i64;
    let (wc, xc, yc) = (w.clone(), x.clone(), y.clone());
    b.sp_iter("spmm", &["TR", "G", "TL", "II", "K"], "SRRSS", |vars| {
        let (tr, g, tl, ii, k) = (&vars[0], &vars[1], &vars[2], &vars[3], &vars[4]);
        let out_row = Expr::var(tr) * t + Expr::var(ii);
        let init = vec![SpStore {
            buffer: yc.name.clone(),
            indices: vec![out_row.clone(), Expr::var(k)],
            value: Expr::f32(0.0),
        }];
        let body = vec![SpStore {
            buffer: yc.name.clone(),
            indices: vec![out_row.clone(), Expr::var(k)],
            value: yc.load(&axes, vec![out_row, Expr::var(k)])
                + wc.load(&axes, vec![Expr::var(tr), Expr::var(g), Expr::var(tl), Expr::var(ii)])
                    * xc.load(&axes, vec![Expr::var(tl), Expr::var(k)]),
        }];
        (init, body)
    });
    (b.finish(), w)
}

#[test]
fn srbcrs_flattening_matches_smat_layout() {
    let mut rng = gen::rng(180);
    let a = gen::random_csr(16, 16, 0.15, &mut rng);
    let s = SrBcrs::from_csr(&a, 4, 2).unwrap();
    let (program, w) = srbcrs_spmm_program(&s, 2);
    // flat(W[tr, g, tl, ii]) = ((indptr[tr]+g)·g_size + tl)·t + ii.
    let vars: Vec<Expr> =
        ["tr", "g", "tl", "ii"].iter().map(|n| Expr::var(&Var::i32(*n))).collect();
    let flat = flatten_access(&program.axes, &w, &vars).unwrap();
    let txt = print_expr(&flat);
    assert!(txt.contains("sr_indptr[tr]"), "{txt}");
    assert_eq!(flat_size(&program.axes, &w), s.stored());
}

#[test]
fn srbcrs_spmm_lowered_matches_reference() {
    let mut rng = gen::rng(181);
    // Dimensions divisible by t so the padded output equals the original.
    let a = gen::random_csr(24, 20, 0.2, &mut rng);
    let t = 4usize;
    let g = 2usize;
    let s = SrBcrs::from_csr(&a, t, g).unwrap();
    let feat = 3usize;
    let (program, _) = srbcrs_spmm_program(&s, feat);
    let func = lower(&program).expect("lowers");
    verify(&func).expect("well-formed");

    let x = gen::random_dense(a.cols(), feat, &mut rng);
    let mut b = Bindings::new();
    b.insert(
        "sr_indptr".into(),
        TensorData::from(s.group_indptr().iter().map(|&v| v as i32).collect::<Vec<_>>()),
    );
    b.insert(
        "sr_indices".into(),
        TensorData::from(s.tile_cols().iter().map(|&v| v as i32).collect::<Vec<_>>()),
    );
    b.insert("W".into(), TensorData::from(s.values().to_vec()));
    bind_dense(&mut b, "X", &x);
    bind_zeros(&mut b, "Y", s.tile_rows() * t * feat);
    exec_func(&func, &HashMap::new(), &mut b).expect("executes");
    let got = read_dense(&b, "Y", s.tile_rows() * t, feat);

    let expect = a.spmm(&x).unwrap();
    for r in 0..a.rows() {
        for c in 0..feat {
            assert!(
                (got.get(r, c) - expect.get(r, c)).abs() < 1e-3,
                "({r},{c}): {} vs {}",
                got.get(r, c),
                expect.get(r, c)
            );
        }
    }
}

#[test]
fn srbcrs_program_prints_figure18_axes() {
    let mut rng = gen::rng(182);
    let a = gen::random_csr(8, 8, 0.3, &mut rng);
    let s = SrBcrs::from_csr(&a, 2, 2).unwrap();
    let (program, _) = srbcrs_spmm_program(&s, 2);
    let script = program.script();
    // The four axes of Figure 18's annotation.
    assert!(script.contains("TR = dense_fixed"), "{script}");
    assert!(script.contains("G = dense_variable"), "{script}");
    assert!(script.contains("TL = sparse_fixed"), "{script}");
    assert!(script.contains("II = dense_fixed(len=2)"), "{script}");
}
