//! Offline shim for the subset of the `rand` crate API this workspace uses.
//!
//! The build environment has no network access, so instead of the real
//! `rand` crate the workspace vendors this deterministic stand-in. It
//! provides [`rngs::SmallRng`] (an xorshift64*-based generator seeded via
//! [`SeedableRng::seed_from_u64`]) and the [`Rng`] trait with `gen_range`
//! over half-open ranges plus `gen_bool`. The statistical quality is far
//! below the real crate's but entirely sufficient for synthetic workload
//! generation and randomized tests.

use std::ops::Range;

/// Seeding constructor trait (shim of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw a value in `[lo, hi)` using `bits` as the entropy source.
    fn sample_from(bits: u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_from(bits: u64, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let off = (bits as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_from(bits: u64, lo: Self, hi: Self) -> Self {
        let unit = (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_from(bits: u64, lo: Self, hi: Self) -> Self {
        f64::sample_from(bits, f64::from(lo), f64::from(hi)) as f32
    }
}

/// Random-number-generation methods (shim of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 bits of entropy.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from the half-open range `[range.start, range.end)`.
    ///
    /// # Panics
    /// Panics on an empty range, like the real `rand` crate.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "cannot sample empty range");
        T::sample_from(self.next_u64(), range.start, range.end)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Small, fast, deterministic generator (xorshift64* variant).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // splitmix64 step so that small seeds (0, 1, 2, …) diverge.
            let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            SmallRng { state: (z ^ (z >> 31)) | 1 }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let f = r.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(9);
        assert!(!(0..64).any(|_| r.gen_bool(0.0)));
        assert!((0..64).all(|_| r.gen_bool(1.0)));
    }
}
