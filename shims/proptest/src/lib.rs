//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! The build environment has no network access, so the property tests in
//! this workspace run against this vendored stand-in instead of the real
//! `proptest` crate. It implements:
//!
//! * the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`,
//! * range, tuple, [`strategy::Just`] and [`collection::vec`] strategies,
//! * the [`prop_oneof!`] union combinator,
//! * the [`proptest!`] test macro with `#![proptest_config(..)]` support,
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! There is **no shrinking**: a failing case reports its case number (the
//! per-case RNG is derived deterministically from that number, so failures
//! replay exactly).

/// Test-runner configuration and deterministic per-case RNG.
pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::{Rng, SampleUniform, SeedableRng};
    use std::fmt;

    /// Shim of `proptest::test_runner::Config`: only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic RNG handed to strategies while sampling one case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: SmallRng,
    }

    impl TestRng {
        /// RNG for case number `case`; the mapping is deterministic so a
        /// reported failing case number replays identically.
        #[must_use]
        pub fn for_case(case: u64) -> Self {
            TestRng { inner: SmallRng::seed_from_u64(0x5eed_0000_0000 ^ case) }
        }

        /// Uniform draw from `[lo, hi)`; panics when empty (like `rand`).
        pub fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
            self.inner.gen_range(range)
        }

        /// Raw entropy.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }

    /// Failure raised by `prop_assert*` macros inside a property body.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Build a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::SampleUniform;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// Shim of `proptest::strategy::Strategy`: a recipe for producing
    /// random values. Sampling is stateless given the RNG, so strategies
    /// are freely shareable.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform produced values with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Produce a dependent strategy from each value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erase into a [`BoxedStrategy`].
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.sample(rng)))
        }
    }

    /// Strategy always producing a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Type-erased strategy (shim of `proptest::strategy::BoxedStrategy`).
    #[derive(Clone)]
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Union over the given (non-empty) alternatives.
        #[must_use]
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.arms.len());
            self.arms[idx].sample(rng)
        }
    }

    impl<T: SampleUniform> Strategy for Range<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.start..self.end)
        }
    }

    macro_rules! impl_inclusive_range {
        ($($t:ty),*) => {$(
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    rng.gen_range(lo..hi.saturating_add(1))
                }
            }
        )*};
    }

    impl_inclusive_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s of values from `elem`, with length drawn
    /// from `len` (shim of `proptest::collection::vec`).
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.start..self.len.end);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// One-import surface matching `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Shim of `proptest!`: expands each `fn name(pat in strategy, ..) { .. }`
/// into a test running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ @cfg($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_tests {
    (@cfg($cfg:expr) $( $(#[$attr:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config = $cfg;
                let __strategies = ($($strat,)+);
                for __case in 0..u64::from(__config.cases) {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::sample(&__strategies, &mut __rng);
                    let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            { $body };
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = __result {
                        panic!("proptest case #{__case} failed: {e}");
                    }
                }
            }
        )*
    };
}

/// Shim of `prop_oneof!`: uniform choice between the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Shim of `prop_assert!`: fail the current case if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Shim of `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($lhs),
                " == ",
                stringify!($rhs),
            )));
        }
    }};
}

/// Shim of `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if *__l == *__r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($lhs),
                " != ",
                stringify!($rhs),
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3i64..9, y in 1usize..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn map_and_vec_compose(
            v in crate::collection::vec((0u32..5).prop_map(|x| x * 2), 0..6),
        ) {
            prop_assert!(v.len() < 6);
            prop_assert!(v.iter().all(|x| x % 2 == 0 && *x < 10));
        }

        #[test]
        fn oneof_picks_all_arms(x in prop_oneof![Just(1i32), Just(2i32), 5i32..8]) {
            prop_assert!(x == 1 || x == 2 || (5..8).contains(&x));
        }

        #[test]
        fn flat_map_sees_outer_value(pair in (1usize..5).prop_flat_map(|n| (Just(n), 0..n))) {
            let (n, k) = pair;
            prop_assert!(k < n);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let s = (0u32..1000, 0u32..1000);
        let a: Vec<_> =
            (0..8).map(|c| s.sample(&mut crate::test_runner::TestRng::for_case(c))).collect();
        let b: Vec<_> =
            (0..8).map(|c| s.sample(&mut crate::test_runner::TestRng::for_case(c))).collect();
        assert_eq!(a, b);
    }
}
