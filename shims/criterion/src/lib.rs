//! Offline shim for the subset of the `criterion` API this workspace uses.
//!
//! The build environment has no network access, so the `[[bench]]`
//! targets (declared with `harness = false`) run against this vendored
//! stand-in instead of the real `criterion` crate. It performs a real
//! measurement — warmup followed by `sample_size` timed samples per
//! benchmark — and prints the median, min and max per-iteration time in
//! a `group/id  time: […]` format loosely matching criterion's output.
//!
//! Honour `SPARSETIR_BENCH_SMOKE=1` to run each benchmark exactly once
//! (used by CI to keep bench compilation honest without paying for
//! statistics).

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion-style.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{name}/{parameter}") }
    }
}

/// Anything accepted as a benchmark identifier.
pub trait IntoBenchmarkId {
    /// The printable label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Measurement driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    smoke: bool,
    last: Vec<Duration>,
}

impl Bencher {
    /// Time the closure: a short warmup, then one timed run per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        self.last.clear();
        if self.smoke {
            std_black_box(f());
            self.last.push(Duration::ZERO);
            return;
        }
        // Warmup + calibration: find an iteration count that lasts long
        // enough for the clock to resolve.
        let mut iters = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                std_black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_micros(200) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                std_black_box(f());
            }
            self.last.push(t0.elapsed() / u32::try_from(iters).unwrap_or(u32::MAX));
        }
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    smoke: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    fn run(&mut self, label: String, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher { samples: self.samples, smoke: self.smoke, last: Vec::new() };
        f(&mut b);
        if self.smoke {
            println!("{}/{label}  time: [smoke]", self.name);
            return;
        }
        b.last.sort_unstable();
        let (min, max) = (b.last.first(), b.last.last());
        let median = b.last.get(b.last.len() / 2);
        match (min, median, max) {
            (Some(lo), Some(med), Some(hi)) => println!(
                "{}/{label}  time: [{} {} {}]",
                self.name,
                fmt_duration(*lo),
                fmt_duration(*med),
                fmt_duration(*hi)
            ),
            _ => println!("{}/{label}  time: [no samples]", self.name),
        }
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let label = id.into_label();
        self.run(label, f);
        self
    }

    /// Benchmark a closure parameterized by an input.
    pub fn bench_with_input<I, F>(&mut self, id: impl IntoBenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let label = id.into_label();
        self.run(label, |b| f(b, input));
        self
    }

    /// End the group (printing already happened per-benchmark).
    pub fn finish(&mut self) {}
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Top-level benchmark context (shim of `criterion::Criterion`).
pub struct Criterion {
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { smoke: std::env::var_os("SPARSETIR_BENCH_SMOKE").is_some() }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        let smoke = self.smoke;
        BenchmarkGroup { name: name.to_string(), samples: 10, smoke, _criterion: self }
    }
}

/// Shim of `criterion_group!`: bundle benchmark functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Shim of `criterion_main!`: produce `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion { smoke: false };
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut ran = 0u64;
        group.bench_function("counts", |b| b.iter(|| ran = ran.wrapping_add(1)));
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion { smoke: true };
        let mut group = c.benchmark_group("shim");
        let mut ran = 0u64;
        group.bench_function(BenchmarkId::new("smoke", 1), |b| b.iter(|| ran += 1));
        assert_eq!(ran, 1);
    }
}
