//! Workspace-level integration tests: the full pipeline from dataset
//! generation through Stage I construction, format decomposition, both
//! lowering passes, interpretation, scheduling, codegen and simulation —
//! crossing every crate boundary.

use sparsetir::prelude::*;
use std::collections::HashMap;

#[test]
fn cora_spmm_through_the_whole_stack() {
    // Dataset → Stage I → Stage III → interpret → compare to smat.
    let spec = graph_by_name("cora").expect("registered");
    let g = spec.generate();
    // Keep interpretation fast: a slice of the graph.
    let rows: Vec<u32> = (0..256).collect();
    let g = g.select_rows(&rows);
    let feat = 8;
    let program = spmm_program(g.rows(), g.cols(), g.nnz(), feat);
    let func = lower(&program).expect("lowers");

    let mut rng = gen::rng(1);
    let x = gen::random_dense(g.cols(), feat, &mut rng);
    let mut b = Bindings::new();
    bind_csr(&mut b, "A", "J", &g);
    bind_dense(&mut b, "B", &x);
    bind_zeros(&mut b, "C", g.rows() * feat);
    exec_func(&func, &HashMap::new(), &mut b).expect("executes");
    let got = read_dense(&b, "C", g.rows(), feat);
    assert!(got.approx_eq(&g.spmm(&x).unwrap(), 1e-3));
}

#[test]
fn decomposed_hyb_pipeline_on_real_graph_slice() {
    let spec = graph_by_name("citeseer").expect("registered");
    let g = spec.generate();
    let rows: Vec<u32> = (0..200).collect();
    let g = g.select_rows(&rows);
    let feat = 4;
    let hyb = Hyb::with_default_k(&g, 2).expect("valid");

    let program = spmm_program(g.rows(), g.cols(), g.nnz(), feat);
    let mut rules = Vec::new();
    let mut buckets = Vec::new();
    for (pi, part) in hyb.partitions().iter().enumerate() {
        for bucket in &part.buckets {
            if bucket.is_empty() {
                continue;
            }
            let tag = format!("p{pi}_w{}", bucket.width);
            rules.push(FormatRewriteRule::bucket_ell(
                "A",
                &tag,
                bucket.width,
                bucket.len(),
                g.cols(),
            ));
            buckets.push((tag, bucket.clone()));
        }
    }
    let decomposed = decompose_format(&program, &rules).expect("decomposes").strip_copies();
    let func = lower(&decomposed).expect("lowers");

    let mut rng = gen::rng(2);
    let x = gen::random_dense(g.cols(), feat, &mut rng);
    let mut b = Bindings::new();
    for (tag, bucket) in &buckets {
        bind_bucket(&mut b, &format!("A_hyb_{tag}"), &format!("hyb_{tag}"), bucket);
    }
    bind_csr(&mut b, "A", "J", &g);
    bind_dense(&mut b, "B", &x);
    bind_zeros(&mut b, "C", g.rows() * feat);
    exec_func(&func, &HashMap::new(), &mut b).expect("executes");
    let got = read_dense(&b, "C", g.rows(), feat);
    assert!(got.approx_eq(&g.spmm(&x).unwrap(), 1e-3));
}

#[test]
fn scheduled_and_fused_kernels_stay_correct() {
    // Horizontal fusion of two scheduled kernels (zero-init + SpMM) still
    // interprets correctly.
    let mut rng = gen::rng(3);
    let a = gen::random_csr(32, 32, 0.15, &mut rng);
    let x = gen::random_dense(32, 8, &mut rng);
    let program = spmm_program(a.rows(), a.cols(), a.nnz(), 8);
    let f = lower(&program).unwrap();
    let mut sch = Schedule::new(f);
    sch.bind("i", ThreadAxis::BlockIdxX).unwrap();
    sch.bind("k", ThreadAxis::ThreadIdxX).unwrap();
    let spmm_kernel = sch.into_func();

    // A standalone zero-init kernel over C, blockIdx-bound.
    let c_buf = spmm_kernel.buffer("C").unwrap().clone();
    let i = Var::i32("zi");
    let k = Var::i32("zk");
    let zero = PrimFunc::new(
        "zero_c",
        vec![],
        vec![c_buf.clone()],
        Stmt::For {
            var: i.clone(),
            extent: Expr::i32(32),
            kind: ForKind::ThreadBinding(ThreadAxis::BlockIdxX),
            body: Box::new(Stmt::for_serial(
                k.clone(),
                8,
                Stmt::BufferStore {
                    buffer: c_buf.clone(),
                    indices: vec![Expr::var(&i) * 8 + Expr::var(&k)],
                    value: Expr::f32(0.0),
                },
            )),
        },
    );
    let fused = horizontal_fuse(&[zero, spmm_kernel], "zero_then_spmm").unwrap();

    let mut b = Bindings::new();
    bind_csr(&mut b, "A", "J", &a);
    bind_dense(&mut b, "B", &x);
    // Poison C to prove the fused zero-init runs first.
    b.insert("C".into(), TensorData::from(vec![777.0f32; 32 * 8]));
    exec_func(&fused, &HashMap::new(), &mut b).unwrap();
    let got = read_dense(&b, "C", 32, 8);
    assert!(got.approx_eq(&a.spmm(&x).unwrap(), 1e-3));
}

#[test]
fn codegen_compiles_lowered_attention_mask_kernel() {
    let mask = band_mask(64, 8);
    let program = spmm_program(mask.rows(), mask.cols(), mask.nnz(), 16);
    let f = lower(&program).unwrap();
    let src = codegen_cuda(&f);
    assert!(src.contains("__global__ void spmm"));
    assert!(src.contains("J_indptr"));
    // The emitted kernel binds no threads yet (pre-schedule form).
    assert!(launch_config(&f).grid[0].is_none());
}

#[test]
fn simulator_effects_cross_check_figures() {
    // One compact cross-check per headline figure claim, on small inputs.
    let gpu = GpuSpec::v100();
    let mut rng = gen::rng(4);

    // Fig 13: hyb ≥ vendor on skewed graphs.
    let skew = {
        use rand::Rng;
        gen::random_csr_with_row_lengths(
            1200,
            1200,
            |r| {
                let u: f64 = r.gen_range(0.0..1.0);
                ((1.5 / (u + 0.004)) as usize).clamp(1, 600)
            },
            &mut rng,
        )
    };
    let vendor = simulate_kernel(&gpu, &cusparse_spmm_plan(&skew, 64)).time_ms;
    let tuned = tune_spmm(&gpu, &skew, 64).report.time_ms;
    assert!(tuned < vendor, "tuned {tuned} vs vendor {vendor}");

    // Fig 16: BSR tensor cores ≥ CSR on block masks.
    let mask = band_mask(512, 64);
    let bsr = Bsr::from_csr(&mask, 32).unwrap();
    let t_bsr =
        simulate_kernel(&gpu, &batched_bsr_spmm_plan(&bsr, 64, 4, SPARSETIR_BSR_EFFICIENCY, "b"))
            .time_ms;
    let t_csr = simulate_kernel(&gpu, &batched_csr_spmm_plan(&mask, 64, 4, "c")).time_ms;
    assert!(t_bsr < t_csr);

    // Fig 17: DBSR ≥ BSR with zero rows.
    let w = block_pruned_weight(512, 512, 1.0 / 32.0, 9);
    let wb = Bsr::from_csr(&w, 32).unwrap();
    let wd = Dbsr::from_bsr(&wb);
    let tb =
        simulate_kernel(&gpu, &bsr_weight_spmm_plan(&wb, 128, PRUNE_TC_EFFICIENCY, "b")).time_ms;
    let td = simulate_kernel(&gpu, &dbsr_weight_spmm_plan(&wd, 512, 128, PRUNE_TC_EFFICIENCY, "d"))
        .time_ms;
    assert!(td <= tb * 1.05, "dbsr {td} vs bsr {tb}");
}

#[test]
fn sddmm_fused_ir_on_dataset_slice() {
    let spec = graph_by_name("pubmed").expect("registered");
    let g = spec.generate().select_rows(&(0..128).collect::<Vec<u32>>());
    let mut rng = gen::rng(5);
    let feat = 8;
    let x = gen::random_dense(g.rows(), feat, &mut rng);
    let y = gen::random_dense(feat, g.cols(), &mut rng);
    let got = sddmm_execute(&g, &x, &y).expect("executes");
    let expect = g.sddmm(&x, &y).unwrap();
    for (gv, ev) in got.iter().zip(expect.values()) {
        assert!((gv - ev).abs() < 1e-3);
    }
}

#[test]
fn rgcn_functional_path_on_hetero_slice() {
    let spec = hetero_by_name("AIFB").expect("registered");
    let rels: Vec<Csr> = spec
        .generate()
        .into_iter()
        .take(6)
        .map(|r| r.select_rows(&(0..64).collect::<Vec<u32>>()))
        .collect();
    // select_rows keeps all columns; rebuild as square 64-col slices.
    let rels: Vec<Csr> = rels
        .iter()
        .map(|r| {
            let mut coo = Coo::new(64, 64);
            for row in 0..r.rows() {
                let (cols, vals) = r.row(row);
                for (&c, &v) in cols.iter().zip(vals) {
                    if (c as usize) < 64 {
                        coo.push(row as u32, c, v);
                    }
                }
            }
            Csr::from_coo(&coo)
        })
        .collect();
    let layer = RgcnLayer::new(rels, 16, 6);
    let mut rng = gen::rng(7);
    let x = gen::random_dense(64, 16, &mut rng);
    let out = layer.infer(&x).expect("infers");
    let manual = rgms_reference(&layer.workload.relations, &x, &layer.weights).unwrap().relu();
    assert!(out.approx_eq(&manual, 1e-4));
}
